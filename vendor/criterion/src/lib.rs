//! Offline stand-in for the crates.io `criterion` crate.
//!
//! This build environment has no network access and no pre-populated cargo
//! registry, so the real `criterion` cannot be fetched. This crate implements
//! the API subset the workspace's five bench targets use — `Criterion`,
//! `BenchmarkGroup` (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros — with a simple wall-clock measurement loop instead of the real
//! statistical machinery.
//!
//! Each benchmark is calibrated by doubling the iteration count until the
//! measured window exceeds ~`50ms` (tunable via `CRITERION_STUB_MS`), then
//! the mean ns/iter is printed. Results are indicative, not rigorous; the
//! point is that `cargo bench` runs and reports comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring the real API shape.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().0, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's calibration loop does not
    /// use discrete samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used to report derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id.0),
            self.throughput,
            &bencher,
        );
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    report(label, throughput, &bencher);
}

fn report(label: &str, throughput: Option<Throughput>, bencher: &Bencher) {
    let Some((iters, elapsed)) = bencher.measurement else {
        println!("{label:<48} (no measurement: Bencher::iter never called)");
        return;
    };
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let mbps = b as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            format!("  ({mbps:.1} MiB/s)")
        }
        Some(Throughput::Elements(e)) => {
            let eps = e as f64 / (ns / 1e9);
            format!("  ({eps:.0} elem/s)")
        }
        None => String::new(),
    };
    println!("{label:<48} {ns:>14.1} ns/iter  [{iters} iters]{rate}");
}

/// Measures one closure; created by the driver, used via [`Bencher::iter`].
#[derive(Default)]
pub struct Bencher {
    measurement: Option<(u64, Duration)>,
}

impl Bencher {
    /// Calibrates and times `f`, recording total iterations and elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let target = target_window();
        let started = Instant::now();
        let mut total_iters = 0u64;
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            total_iters += batch;
            let elapsed = started.elapsed();
            if elapsed >= target || total_iters >= (1 << 24) {
                self.measurement = Some((total_iters, elapsed));
                return;
            }
            batch = batch.saturating_mul(2);
        }
    }
}

fn target_window() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    Duration::from_millis(ms)
}

/// A benchmark identifier: function name and/or parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units for derived-rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Declares a group function invoking each target with a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group. CLI arguments (e.g. the filter and
/// `--bench` that `cargo bench` passes) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod self_tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("CRITERION_STUB_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("self");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * x)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1u64 + 1));
    }
}
