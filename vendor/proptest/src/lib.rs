//! Offline stand-in for the crates.io `proptest` crate.
//!
//! This build environment has no network access and no pre-populated cargo
//! registry, so the real `proptest` cannot be fetched. This crate implements
//! exactly the API subset the workspace's property suites use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_recursive`
//!   and `boxed`;
//! * strategies for integer ranges, `Just`, tuples, `&'static str` character
//!   class patterns (`"[a-z0-9]{1,10}"`), [`collection::vec`],
//!   [`collection::btree_set`], [`option::of`] and [`sample::Index`];
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!   and `prop_oneof!` macros;
//! * [`ProptestConfig`] (`with_cases`, `PROPTEST_CASES` env override) and a
//!   deterministic runner.
//!
//! Differences from the real crate: no shrinking (failures report the case
//! number and seed instead of a minimal counterexample), and string patterns
//! support only a single `[class]{m,n}` term rather than full regex syntax.
//! Case generation is fully deterministic per test name, so failures are
//! reproducible run-to-run.

use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// Default number of cases per property when neither `PROPTEST_CASES` nor
/// `ProptestConfig::with_cases` overrides it. Smaller than the real crate's
/// 256 so full-workspace `cargo test` stays fast; CI can lower it further.
pub const DEFAULT_CASES: u32 = 64;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// `below` for `usize` bounds.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of test values. Unlike the real crate there is no value tree
/// or shrinking; `generate` directly produces a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating up to a bound,
    /// then keeping the last value rather than aborting the case).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf; `recurse` maps a
    /// strategy for depth-`d` values to one for depth-`d+1` values. The
    /// `_desired_size` / `_expected_branch_size` hints are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = recurse(s).boxed();
        }
        s
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&last) {
                return last;
            }
            last = self.inner.generate(rng);
        }
        let _ = self.whence;
        last
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges -------------------------------------------------------------

/// Integers samplable from range strategies and `any::<T>()`.
pub trait SampleInt: Copy {
    /// Uniform value in `[lo, hi)`; `lo` if the range is empty.
    fn sample(lo: Self, hi_exclusive: Self, rng: &mut TestRng) -> Self;
    /// Uniform value over the whole type.
    fn sample_full(rng: &mut TestRng) -> Self;
    /// `self + 1` saturating, for inclusive ranges.
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleInt for $t {
            fn sample(lo: $t, hi_exclusive: $t, rng: &mut TestRng) -> $t {
                if hi_exclusive <= lo {
                    lo
                } else {
                    let span = (hi_exclusive - lo) as u64;
                    lo + (rng.below(span) as $t)
                }
            }
            fn sample_full(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn saturating_succ(self) -> $t {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl<T: SampleInt> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(self.start, self.end, rng)
    }
}

impl<T: SampleInt> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(*self.start(), self.end().saturating_succ(), rng)
    }
}

// String patterns ------------------------------------------------------------

/// `&'static str` acts as a string strategy for patterns of the form
/// `[class]{m,n}` (e.g. `"[a-z0-9]{1,10}"`, `"[ -~]{0,12}"`). Character
/// classes support literal chars and `a-z` ranges. Anything unparsable is
/// produced literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    if bytes.first() != Some(&b'[') {
        return pattern.to_string();
    }
    let Some(close) = pattern.find(']') else {
        return pattern.to_string();
    };
    let class = &pattern[1..close];
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    chars.push(c);
                }
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return String::new();
    }
    // Parse `{m,n}` or `{n}`; default one repetition.
    let rest = &pattern[close + 1..];
    let (lo, hi) = if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(1)),
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    } else {
        (1usize, 1usize)
    };
    let len = lo + rng.below_usize(hi.saturating_sub(lo) + 1);
    (0..len)
        .map(|_| chars[rng.below_usize(chars.len())])
        .collect()
}

// Tuples ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

// Union (prop_oneof!) --------------------------------------------------------

/// Weighted union of same-valued strategies; backs the `prop_oneof!` macro.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a nonzero total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

// any ------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                <$t as SampleInt>::sample_full(rng)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T` (the real crate's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Modules mirroring the real crate's paths
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification: inclusive `[lo, hi]` element count.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below_usize(self.hi_inclusive - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: (*r.end()).max(*r.start()),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s; duplicates generated within a draw are
    /// merged, so the final set may be smaller than the drawn size.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` roughly a quarter of the time, otherwise `Some` of the inner
    /// strategy (matching the real crate's default bias toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of not-yet-known size: stores raw entropy
    /// and projects it onto `[0, len)` on demand.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`. Panics if `len == 0`, like the real crate.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index called with an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// A property failure (no shrinking information, just the message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail<M: fmt::Display>(msg: M) -> Self {
        TestCaseError(msg.to_string())
    }

    /// The real crate distinguishes rejection from failure; here both abort
    /// the case with a message.
    pub fn reject<M: fmt::Display>(msg: M) -> Self {
        TestCaseError(format!("rejected: {msg}"))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Shorthand used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running exactly `cases` cases (capped by `PROPTEST_CASES`
    /// when that is set lower, so CI can globally bound suite cost).
    pub fn with_cases(cases: u32) -> Self {
        let capped = match env_cases() {
            Some(env) => cases.min(env),
            None => cases,
        };
        ProptestConfig { cases: capped }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(DEFAULT_CASES),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Drives one property: `body` is invoked once per case with a per-case
/// deterministic RNG; an `Err` aborts the test with a panic naming the case
/// and seed (reproducible, since seeding depends only on the test name and
/// case number).
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        let seed = fnv1a(test_name.as_bytes()) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(err) = body(&mut rng) {
            panic!(
                "proptest case {case}/{} of `{test_name}` failed (seed {seed:#018x}): {err}",
                config.cases
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports the subset of the real syntax used in
/// this workspace: an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), __l, __r
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Weighted or unweighted choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_patterns_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()) && s.chars().all(|c| ('a'..='c').contains(&c)));
            let w = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(w.len() <= 12 && w.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_level_round_trip(v in crate::collection::vec(0u64..50, 0..20), b in any::<bool>()) {
            prop_assert!(v.len() < 20);
            prop_assert_eq!(v.iter().filter(|&&x| x < 50).count(), v.len());
            let _ = b;
        }
    }
}
