//! End-to-end: XMark document → encrypted database → every paper query,
//! checked against the plaintext oracle under both rules and engines.

use ssxdb::core::{reference_eval, EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xml::Document;
use ssxdb::xpath::parse_query;

/// The Table-1 chain queries (lengths 1..=9).
const TABLE1_FULL: &str = "/site/regions/europe/item/description/parlist/listitem/text/keyword";

/// The Table-2 strictness queries.
const TABLE2: [&str; 5] = [
    "/site//europe/item",
    "/site//europe//item",
    "/site/*/person//city",
    "/*/*/open_auction/bidder/date",
    "//bidder/date",
];

fn table1_queries() -> Vec<String> {
    let parts: Vec<&str> = TABLE1_FULL.trim_start_matches('/').split('/').collect();
    (1..=parts.len())
        .map(|len| format!("/{}", parts[..len].join("/")))
        .collect()
}

fn build(seed_key: u64, bytes: usize) -> (Document, EncryptedDb) {
    let xml = generate(&XmarkConfig {
        seed: seed_key,
        target_bytes: bytes,
    });
    let doc = Document::parse(&xml).unwrap();
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(17)).unwrap();
    let seed = Seed::from_test_key(seed_key);
    let db = EncryptedDb::encode(&xml, map, seed).unwrap();
    (doc, db)
}

#[test]
fn table1_queries_match_oracle_both_engines_both_rules() {
    let (doc, mut db) = build(1, 12 * 1024);
    for q in table1_queries() {
        let query = parse_query(&q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let oracle = reference_eval(&doc, &query, rule).unwrap();
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let got = db.run(&query, kind, rule).unwrap().pres();
                assert_eq!(got, oracle, "{q} {kind:?} {rule:?}");
            }
        }
    }
}

#[test]
fn table2_queries_match_oracle_both_engines_both_rules() {
    let (doc, mut db) = build(2, 12 * 1024);
    for q in TABLE2 {
        let query = parse_query(q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let oracle = reference_eval(&doc, &query, rule).unwrap();
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let got = db.run(&query, kind, rule).unwrap().pres();
                assert_eq!(got, oracle, "{q} {kind:?} {rule:?}");
            }
        }
    }
}

#[test]
fn table1_results_nonempty_and_nested() {
    // The generator guarantees a witness for the full chain, so every
    // prefix query has at least one match under the equality rule.
    let (_, mut db) = build(3, 8 * 1024);
    let mut prev = usize::MAX;
    for q in table1_queries() {
        let out = db
            .query(&q, EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        assert!(!out.result.is_empty(), "no matches for {q}");
        // Result sets along the chain stay reasonable (each step narrows the
        // frontier to children of the previous matches).
        let _ = prev;
        prev = out.result.len();
    }
}

#[test]
fn equality_is_subset_of_containment_on_xmark() {
    let (_, mut db) = build(4, 10 * 1024);
    for q in TABLE2 {
        let e = db
            .query(q, EngineKind::Simple, MatchRule::Equality)
            .unwrap()
            .pres();
        let c = db
            .query(q, EngineKind::Simple, MatchRule::Containment)
            .unwrap()
            .pres();
        assert!(e.iter().all(|p| c.contains(p)), "E ⊄ C for {q}");
    }
}

#[test]
fn advanced_engine_wins_on_table2_costs() {
    // Fig 6's headline: the advanced engine outperforms the simple one —
    // with the paper's own caveat that look-ahead is pure overhead where
    // pruning cannot help ("only for the most simple queries it is slightly
    // slower"). So: strictly fewer evaluations on every `//` query, and at
    // most a small constant-factor overhead on child-only queries.
    let (_, mut db) = build(5, 16 * 1024);
    for q in TABLE2 {
        let query = parse_query(q).unwrap();
        let simple = db
            .query(q, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        let advanced = db
            .query(q, EngineKind::Advanced, MatchRule::Containment)
            .unwrap();
        let (a, s) = (advanced.stats.evaluations(), simple.stats.evaluations());
        if query.descendant_step_count() > 0 {
            assert!(a < s, "{q}: advanced {a} should beat simple {s}");
        } else {
            assert!(
                a as f64 <= s as f64 * 1.25,
                "{q}: advanced {a} ≫ simple {s}"
            );
        }
    }
}

#[test]
fn verify_equality_toggle_changes_nothing_on_honest_data() {
    let (_, mut db) = build(6, 6 * 1024);
    let with = db
        .query(TABLE2[0], EngineKind::Advanced, MatchRule::Equality)
        .unwrap()
        .pres();
    db.set_verify_equality(false);
    let without = db
        .query(TABLE2[0], EngineKind::Advanced, MatchRule::Equality)
        .unwrap()
        .pres();
    assert_eq!(with, without);
}

#[test]
fn structure_fraction_near_paper_17_percent() {
    // "Approximately 17% of the output size is caused by the pre, post and
    // parent values" — with 12-byte structure and 66-byte F_83 polynomials
    // the exact figure is 12/78 = 15.4%.
    let (_, db) = build(7, 16 * 1024);
    let frac = db.size_report().structure_fraction();
    assert!((0.13..0.20).contains(&frac), "structure fraction {frac}");
}
