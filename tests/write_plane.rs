//! The write plane end to end, over real sockets: an insert racing an
//! open cursor must surface the epoch fence through the mux TCP transport
//! (never a silently wrong merge), and a 3-server (t = 2) TCP fleet must
//! accept interleaved inserts and deletes while queries run, with every
//! answer bit-identical to a freshly encoded store of the same final
//! document set at the same offsets — the PR-9 acceptance criteria.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, encode_document_at, encode_document_fleet, party_server, serve_tcp_mux,
    serve_tcp_sharded, ClientFilter, EncryptedDb, EngineKind, FleetSpec, MapFile, MatchRule,
    MuxPool, PartyStore, RemoteFleetDb, RemoteMuxDb, ShardRouter, ShardedServer, TcpTransport,
};
use ssxdb::poly::RingCtx;
use ssxdb::prg::Seed;
use std::net::{SocketAddr, TcpListener};

const DOC_A: &str = "<site><a><b/></a><c/></site>"; // pres 1..=4
const DOC_B: &str = "<site><a><b/><b/></a></site>"; // pres 5..=8 when inserted
const DOC_C: &str = "<site><b><c/></b></site>"; // pres 9..=11 after doc_b

fn secrets() -> (MapFile, Seed) {
    (
        MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap(),
        Seed::from_test_key(0x9_2005),
    )
}

fn stop_host(addr: SocketAddr) {
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
}

/// An insert landing between a cursor's open and its next pull must fence
/// the cursor with an explicit epoch error — through the mux TCP
/// transport, where the reader and the writer share one socket per shard.
/// A reopened cursor then walks the store, and the grown forest is
/// visible to the same reader connection.
#[test]
fn insert_fences_an_open_cursor_over_mux_tcp() {
    let (map, seed) = secrets();
    let out = encode_document(DOC_A, &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let host = std::thread::spawn(move || serve_tcp_mux(listener, server, 0).unwrap());

    let pool = MuxPool::connect(addr, 2).unwrap();
    let mut reader = ClientFilter::new(ShardRouter::mux(&pool), map.clone(), seed.clone()).unwrap();
    let cursor = reader.open_children_cursor(vec![1]).unwrap();
    assert_eq!(reader.next_node(cursor).unwrap().map(|l| l.pre), Some(2));

    // A second facade client on the *same* pool inserts a document.
    let mut writer = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone()).unwrap();
    let ins = writer.insert_document(DOC_B).unwrap();
    assert_eq!(ins.root_pre, 5);

    // The pre-write cursor is fenced, not silently wrong.
    let err = reader.next_node(cursor).unwrap_err();
    assert!(err.to_string().contains("epoch"), "{err}");

    // A fresh cursor walks the current store; the forest has both roots.
    assert_eq!(
        reader
            .roots()
            .unwrap()
            .iter()
            .map(|l| l.pre)
            .collect::<Vec<_>>(),
        vec![1, 5]
    );
    let cursor = reader.open_children_cursor(vec![1, 5]).unwrap();
    let mut walked = Vec::new();
    while let Some(l) = reader.next_node(cursor).unwrap() {
        walked.push(l.pre);
    }
    assert_eq!(walked, vec![2, 4, 6], "children of both roots, pre order");

    stop_host(addr);
    host.join().unwrap();
}

fn spawn_party(
    party: PartyStore,
    ring: &RingCtx,
) -> (SocketAddr, std::thread::JoinHandle<ShardedServer>) {
    let server = party_server(party.data, party.mac, ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());
    (addr, handle)
}

/// The headline acceptance: a 3-server (t = 2) TCP fleet accepts
/// interleaved inserts and deletes while queries run between every
/// mutation, and the final store answers bit-identically — results *and*
/// wave counts — to a freshly encoded store of the same final document
/// set at the same offsets (`doc_a` at 0, `doc_c` at 8: `doc_b` lived and
/// died in pres 5..=8, and the high-water mark never reuses them).
#[test]
fn tcp_fleet_ingests_interleaved_writes_while_queries_run() {
    let (map, seed) = secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet_out = encode_document_fleet(DOC_A, &map, &seed, spec).unwrap();
    let ring = fleet_out.ring.clone();
    let hosts: Vec<_> = fleet_out
        .parties
        .into_iter()
        .map(|p| spawn_party(p, &ring))
        .collect();
    let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();
    let mut fleet = RemoteFleetDb::connect_fleet(&addrs, 2, map.clone(), seed.clone()).unwrap();

    let b_pres = |db: &mut RemoteFleetDb| {
        db.query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap()
            .pres()
    };
    assert_eq!(b_pres(&mut fleet), vec![3]);
    let ins_b = fleet.insert_document(DOC_B).unwrap();
    assert_eq!((ins_b.root_pre, ins_b.rows), (5, 4));
    assert_eq!(b_pres(&mut fleet), vec![3, 7, 8]);
    let ins_c = fleet.insert_document(DOC_C).unwrap();
    assert_eq!((ins_c.root_pre, ins_c.rows), (9, 3));
    assert_eq!(b_pres(&mut fleet), vec![3, 7, 8, 10]);
    assert_eq!(fleet.delete_document(ins_b.root_pre).unwrap(), 4);
    assert_eq!(b_pres(&mut fleet), vec![3, 10]);

    // Fresh encode of the final document set at the final offsets: the
    // mutated fleet must be indistinguishable from never having mutated.
    let mut out_a = encode_document(DOC_A, &map, &seed).unwrap();
    let out_c = encode_document_at(DOC_C, &map, &seed, 8).unwrap();
    for row in out_c.table.into_rows() {
        out_a.table.insert(row).unwrap();
    }
    let mut fresh = EncryptedDb::from_encode_output(out_a, map.clone(), seed.clone(), 1).unwrap();

    for q in ["/site", "//b", "//c", "/site/a/b", "/site/b/c"] {
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let want = fresh.query(q, kind, rule).unwrap();
                let got = fleet.query(q, kind, rule).unwrap();
                assert_eq!(want.pres(), got.pres(), "{q} {kind:?} {rule:?}: results");
                assert_eq!(
                    want.stats.round_trips, got.stats.round_trips,
                    "{q} {kind:?} {rule:?}: wave count"
                );
            }
        }
    }

    // The hosts join per-connection threads on shutdown: close the fleet's
    // leg sockets first.
    drop(fleet);
    for (a, _) in &hosts {
        stop_host(*a);
    }
    for (_, h) in hosts {
        h.join().unwrap();
    }
}
