//! Workspace bring-up smoke test: exercises the end-to-end encode → query
//! path through every facade re-export, across both engines and both match
//! rules, so a manifest or feature change that silently drops a crate from
//! the build (or a re-export from the facade) fails here rather than only
//! in deeper suites.

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::Seed;

const XML: &str = "<library>\
       <shelf><book><title/></book><book/></shelf>\
       <shelf><book/></shelf>\
       <office><book/></office>\
     </library>";

fn build() -> EncryptedDb {
    let map = MapFile::sequential(83, 1, &["library", "shelf", "book", "title", "office"])
        .expect("map file");
    EncryptedDb::encode(XML, map, Seed::from_test_key(7)).expect("encode")
}

#[test]
fn every_engine_and_rule_combination_answers_correctly() {
    let mut db = build();
    // (query, expected hits) — exact under Equality; Containment may
    // over-approximate but never under-approximate (E ⊆ C).
    let cases: [(&str, usize); 4] = [
        ("/library/shelf/book", 3),
        ("/library//book", 4),
        ("//book/title", 1),
        ("//office//book", 1),
    ];
    for kind in [EngineKind::Simple, EngineKind::Advanced] {
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            for (query, expect) in cases {
                let out = db.query(query, kind, rule).expect("query");
                if rule == MatchRule::Equality {
                    assert_eq!(out.result.len(), expect, "{query} under {kind:?}/{rule:?}");
                } else {
                    assert!(
                        out.result.len() >= expect,
                        "{query} under {kind:?}/{rule:?}: containment returned \
                         {} < {expect} (must over-approximate, never drop hits)",
                        out.result.len()
                    );
                }
            }
        }
    }
}

#[test]
fn engines_agree_per_rule() {
    let mut db = build();
    for rule in [MatchRule::Containment, MatchRule::Equality] {
        for (query, _) in [
            ("/library/shelf/book", 0),
            ("/library//book", 0),
            ("//book", 0),
            ("/library/*/book", 0),
        ] {
            let simple = db
                .query(query, EngineKind::Simple, rule)
                .expect("simple")
                .pres();
            let advanced = db
                .query(query, EngineKind::Advanced, rule)
                .expect("advanced")
                .pres();
            assert_eq!(simple, advanced, "{query} under {rule:?}");
        }
    }
}

/// Touches each re-exported crate once, pinning the facade's crate map: a
/// workspace edit that drops a member from the dependency graph breaks this
/// file at compile time.
#[test]
fn facade_reexports_cover_all_crates() {
    let field = ssxdb::field::FieldCtx::new(83, 1).expect("field");
    assert_eq!(field.order(), 83);

    let ring = ssxdb::poly::RingCtx::new(5, 1).expect("ring");
    assert_eq!(ring.field().order(), 5);

    let mut prg = ssxdb::prg::Prg::from_u64(9);
    let _ = prg.next_u64();

    let doc = ssxdb::xml::Document::parse("<a><b/></a>").expect("xml");
    assert_eq!(doc.element_count(), 2);

    let q = ssxdb::xpath::parse_query("/a//b").expect("xpath");
    assert_eq!(q.len(), 2);

    let trie = ssxdb::trie::Trie::from_words(&["ab".to_string(), "ac".to_string()]);
    assert_eq!(trie.terminal_count(), 2);

    let tree = ssxdb::store::BTree::new();
    assert_eq!(tree.len(), 0);

    assert_eq!(ssxdb::xmark::DTD_ELEMENTS.len(), 77);

    let hits = build()
        .query("/library", EngineKind::Advanced, MatchRule::Equality)
        .expect("core query");
    assert_eq!(hits.result.len(), 1);
}
