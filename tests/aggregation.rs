//! The aggregation plane end to end, pinning the PR-10 acceptance
//! criteria: COUNT/SUM/AVG (with and without a numeric range predicate)
//! must be bit-identical to the plaintext oracle over the in-process
//! plane, a sharded TCP host, a multiplexed TCP host, and a 3-process
//! t = 2 fleet with one party killed mid-run — and the closing share-sum
//! must cost exactly one wave beyond the predicate walk (two with a
//! range), on every transport.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, run_aggregate, serve_tcp_mux, serve_tcp_sharded, AggOp, AggregateSpec,
    ClientFilter, CoreError, EncryptedDb, EngineKind, MapFile, MatchRule, MuxPool, RemoteDb,
    ShardRouter, ShardedServer, TcpTransport,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xml::Document;
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    (map, Seed::from_test_key(77))
}

/// XMark auction data carries plenty of digit-only leaves (quantities,
/// amounts), so these queries exercise real numeric rows.
const CASES: [(&str, Option<(u64, u64)>); 4] = [
    ("//item/quantity", None),
    ("//item/quantity", Some((1, 1))),
    ("/site/regions/europe/item", None),
    ("//person", Some((0, u64::MAX))),
];

/// One aggregate, over whichever stack, reduced to the comparable triple
/// plus its wave cost.
fn run_on<T: Transport>(
    client: &mut ClientFilter<T>,
    q: &str,
    op: AggOp,
    range: Option<(u64, u64)>,
) -> (u64, u64, u128, u64) {
    let spec = AggregateSpec {
        query: parse_query(q).unwrap().expand_text_predicates(),
        op,
        range,
    };
    let out = run_aggregate(client, EngineKind::Advanced, MatchRule::Equality, &spec).unwrap();
    assert_eq!(out.retries, 0, "{q}: nothing raced this store");
    (out.count, out.contributing, out.sum, out.closing_waves)
}

/// The dedicated zero-extra-waves + transport-matrix test: local,
/// sharded-TCP and mux-TCP stacks answer every case with the oracle's
/// exact numbers, and the close costs one wave (two with a range) on all
/// of them.
#[test]
fn aggregates_are_transport_invariant_and_cost_one_closing_wave() {
    let xml = generate(&XmarkConfig {
        seed: 11,
        target_bytes: 8 * 1024,
    });
    let (map, seed) = secrets();
    let doc = Document::parse(&xml).unwrap();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let ring_len = out.ring.len();

    // Three stacks over the same rows: in-process (S=2), thread-per-
    // connection TCP (S=2), multiplexed TCP (S=2).
    let mut local = EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), 2).unwrap();

    let tcp_server = ShardedServer::from_table(out.table.clone(), out.ring.clone(), 2).unwrap();
    let tcp_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let tcp_addr = tcp_listener.local_addr().unwrap();
    let tcp_handle = std::thread::spawn(move || serve_tcp_sharded(tcp_listener, tcp_server));

    let mux_server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let mux_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mux_addr = mux_listener.local_addr().unwrap();
    let mux_handle = std::thread::spawn(move || serve_tcp_mux(mux_listener, mux_server, 0));

    let mut tcp_client = ClientFilter::new(
        ShardRouter::connect(tcp_addr, 2).unwrap(),
        map.clone(),
        seed.clone(),
    )
    .unwrap();
    let pool = MuxPool::connect(mux_addr, 2).unwrap();
    let mut mux_client =
        ClientFilter::new(ShardRouter::mux(&pool), map.clone(), seed.clone()).unwrap();

    for (q, range) in CASES {
        let query = parse_query(q).unwrap().expand_text_predicates();
        let oracle =
            ssxdb::core::reference_aggregate(&doc, &query, MatchRule::Equality, ring_len, range)
                .unwrap();
        let expect_waves = if range.is_some() { 2 } else { 1 };
        for op in [AggOp::Count, AggOp::Sum, AggOp::Avg] {
            let want = match op {
                AggOp::Count => (oracle.count, 0, 0),
                AggOp::Sum | AggOp::Avg => (oracle.count, oracle.contributing, oracle.sum),
            };
            let spec = AggregateSpec {
                query: query.clone(),
                op,
                range,
            };
            let l = local
                .run_aggregate(&spec, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            assert_eq!((l.count, l.contributing, l.sum), want, "local {q} {op:?}");
            assert_eq!(l.closing_waves, expect_waves, "local {q} {op:?}");

            let t = run_on(&mut tcp_client, q, op, range);
            assert_eq!(t, (want.0, want.1, want.2, expect_waves), "tcp {q} {op:?}");
            let m = run_on(&mut mux_client, q, op, range);
            assert_eq!(m, (want.0, want.1, want.2, expect_waves), "mux {q} {op:?}");
        }
    }

    // Thread-per-connection hosts only wind down once every client socket
    // is gone; mux hosts shed live connections themselves.
    tcp_client.transport_mut().call(&Request::Shutdown).unwrap();
    drop(tcp_client);
    tcp_handle.join().unwrap().unwrap();
    let mut closer = TcpTransport::connect(mux_addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
    drop(mux_client);
    drop(pool);
    mux_handle.join().unwrap().unwrap();
}

/// A writer racing an aggregate over TCP: the stale closing wave is a
/// *typed* epoch conflict (never a silently mixed answer), and the retry
/// loop converges on the post-write state.
#[test]
fn aggregate_racing_a_remote_writer_is_typed_and_converges() {
    let (map, seed) = secrets();
    let xml = "<site>\
        <item><price>10</price></item>\
        <item><price>25</price></item>\
        <item><price>7</price></item>\
        </site>";
    let out = encode_document(xml, &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server));

    // Reader and writer are independent connections to the same store.
    let mut reader = ClientFilter::new(
        ShardRouter::connect(addr, 1).unwrap(),
        map.clone(),
        seed.clone(),
    )
    .unwrap();
    let mut writer = RemoteDb::connect(addr, 1, map, seed).unwrap();

    // Reader takes its snapshot…
    let (_roots, epochs) = reader.roots_with_epochs().unwrap();
    // …the writer lands a whole document in between…
    writer
        .insert_document("<site><item><price>100</price></item></site>")
        .unwrap();
    // …so the reader's closing wave must fail with the typed conflict.
    let err = reader
        .agg_wave(vec![Request::Agg {
            op: ssxdb::core::protocol::AGG_CHECK,
            pres: vec![1],
            expect_epoch: epochs[0],
        }])
        .unwrap_err();
    assert!(
        matches!(err, CoreError::EpochConflict(_)),
        "stale fence must be typed, got: {err}"
    );

    // A full run from a fresh snapshot sees both documents exactly.
    let spec = AggregateSpec {
        query: parse_query("//price").unwrap(),
        op: AggOp::Sum,
        range: None,
    };
    let sum = run_aggregate(&mut reader, EngineKind::Simple, MatchRule::Equality, &spec).unwrap();
    assert_eq!(sum.sum, 142, "10 + 25 + 7 + the raced-in 100");
    assert_eq!(sum.contributing, 4);
    assert_eq!(sum.closing_waves, 1);

    drop(writer);
    reader.transport_mut().call(&Request::Shutdown).unwrap();
    drop(reader);
    handle.join().unwrap().unwrap();
}

/// The 3-process t = 2 fleet (real `ssxdb` OS processes): `agg --fleet`
/// answers exactly like the single-store `agg`, both before and after one
/// party is killed outright (SIGKILL, no wind-down).
#[test]
fn three_process_fleet_aggregates_survive_a_killed_party() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_ssxdb");
    let dir = std::env::temp_dir().join("ssxdb_agg_fleet_cli");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run = |args: &[&str]| {
        let out = Command::new(bin)
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spawn ssxdb");
        assert!(
            out.status.success(),
            "ssxdb {args:?} failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    run(&["keygen", "seed.hex"]);
    run(&["xmark", "--bytes", "4000", "--seed", "5", "doc.xml"]);
    run(&["genmap", "--p", "83", "--doc", "doc.xml", "map.properties"]);
    run(&[
        "encode",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "doc.xml",
        "db.ssxdb",
    ]);
    run(&[
        "encode",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "--servers",
        "3",
        "--threshold",
        "2",
        "doc.xml",
        "db.ssxdb",
    ]);

    // Ground truth from the single-store CLI (same binary, same secrets).
    let agg_args = |tail: &[&str]| {
        let mut v = vec![
            "agg",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--op",
            "sum",
        ];
        v.extend_from_slice(tail);
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    let expected_sum = run(&agg_args(&["db.ssxdb", "//item/quantity"])
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>());
    let expected_ranged = run(
        &agg_args(&["--range", "1..1", "db.ssxdb", "//item/quantity"])
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for i in 1..=3u32 {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let child = Command::new(bin)
            .args([
                "serve",
                "--p",
                "83",
                "--e",
                "1",
                "--addr",
                &addr,
                "--party",
                &i.to_string(),
                &format!("db.party{i}.ssxdb"),
            ])
            .current_dir(&dir)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        servers.push(child);
        addrs.push(addr);
    }
    for addr in &addrs {
        let mut up = false;
        for _ in 0..50 {
            if std::net::TcpStream::connect(addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        assert!(up, "party host {addr} did not come up");
    }
    let fleet = addrs.join(",");
    let fleet_tail = [
        "--fleet",
        fleet.as_str(),
        "--threshold",
        "2",
        "//item/quantity",
    ];
    let fleet_args: Vec<String> = agg_args(&fleet_tail);
    let fleet_out = run(&fleet_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert_eq!(
        fleet_out, expected_sum,
        "3-process fleet SUM answers exactly like the single store"
    );

    // Kill party 3 outright — no Shutdown request, no socket wind-down —
    // and aggregate again: any 2 of 3 still reconstruct the exact answer.
    servers[2].kill().unwrap();
    servers[2].wait().unwrap();
    let fleet_out = run(&fleet_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert_eq!(
        fleet_out, expected_sum,
        "SUM survives a SIGKILLed party bit-for-bit"
    );
    let ranged_tail = [
        "--range",
        "1..1",
        "--fleet",
        fleet.as_str(),
        "--threshold",
        "2",
        "//item/quantity",
    ];
    let ranged_args: Vec<String> = agg_args(&ranged_tail);
    let ranged_out = run(&ranged_args.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    assert_eq!(
        ranged_out, expected_ranged,
        "ranged aggregate survives a SIGKILLed party bit-for-bit"
    );

    for addr in addrs.iter().take(2) {
        let mut t = TcpTransport::connect(addr.as_str()).unwrap();
        t.call(&Request::Shutdown).unwrap();
    }
    for (i, mut child) in servers.into_iter().enumerate() {
        if i < 2 {
            assert!(child.wait().unwrap().success());
        }
    }
}
