//! Integration tests for the `ssxdb` command-line tool: the full
//! keygen → genmap → encode → info/query/serve/remote workflow.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ssxdb")
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ssxdb_cli_tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn ssxdb");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_ok(args: &[&str], cwd: &Path) -> String {
    let (ok, stdout, stderr) = run(args, cwd);
    assert!(
        ok,
        "ssxdb {args:?} failed:\nstdout: {stdout}\nstderr: {stderr}"
    );
    stdout
}

/// Builds the standard fixture: seed, doc, map, encoded db. Returns cwd.
fn fixture(name: &str) -> PathBuf {
    let dir = workdir(name);
    assert_ok(&["keygen", "seed.hex"], &dir);
    assert_ok(
        &["xmark", "--bytes", "6000", "--seed", "5", "doc.xml"],
        &dir,
    );
    assert_ok(
        &["genmap", "--p", "83", "--doc", "doc.xml", "map.properties"],
        &dir,
    );
    assert_ok(
        &[
            "encode",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "doc.xml",
            "db.ssxdb",
        ],
        &dir,
    );
    dir
}

#[test]
fn full_workflow_and_query() {
    let dir = fixture("workflow");
    let info = assert_ok(&["info", "db.ssxdb"], &dir);
    assert!(info.contains("rows (elements)"), "{info}");

    let out = assert_ok(
        &[
            "query",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--engine",
            "advanced",
            "--rule",
            "equality",
            "--stats",
            "db.ssxdb",
            "/site/regions/europe/item",
        ],
        &dir,
    );
    assert!(out.contains("match(es)"), "{out}");
    assert!(out.contains("round trips"), "{out}");
    // The generator guarantees at least one europe item.
    let first = out.lines().next().unwrap();
    let n: usize = first
        .split(':')
        .nth(1)
        .and_then(|s| s.trim().split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(n >= 1, "expected matches, got {first}");
}

#[test]
fn engines_agree_via_cli() {
    let dir = fixture("engines");
    let base = [
        "query",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "--rule",
        "equality",
    ];
    let q = "//bidder/date";
    let simple = {
        let mut a = base.to_vec();
        a.extend(["--engine", "simple", "db.ssxdb", q]);
        assert_ok(&a, &dir)
    };
    let advanced = {
        let mut a = base.to_vec();
        a.extend(["--engine", "advanced", "db.ssxdb", q]);
        assert_ok(&a, &dir)
    };
    let nodes = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.trim_start().starts_with("node pre="))
            .map(String::from)
            .collect()
    };
    assert_eq!(nodes(&simple), nodes(&advanced));
    assert!(!nodes(&simple).is_empty());
}

#[test]
fn trie_encode_and_contains_query() {
    let dir = workdir("trie");
    std::fs::write(
        dir.join("doc.xml"),
        "<people><person><name>Joan Johnson</name></person></people>",
    )
    .unwrap();
    assert_ok(&["keygen", "seed.hex"], &dir);
    assert_ok(
        &[
            "genmap",
            "--p",
            "131",
            "--doc",
            "doc.xml",
            "--trie-alphabet",
            "map.properties",
        ],
        &dir,
    );
    assert_ok(
        &[
            "encode",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--trie",
            "compressed",
            "doc.xml",
            "db.ssxdb",
        ],
        &dir,
    );
    let out = assert_ok(
        &[
            "query",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "db.ssxdb",
            r#"//name[contains(text(), "Joan")]"#,
        ],
        &dir,
    );
    assert!(out.contains("1 match(es)"), "{out}");
    let miss = assert_ok(
        &[
            "query",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "db.ssxdb",
            r#"//name[contains(text(), "zebra")]"#,
        ],
        &dir,
    );
    assert!(miss.contains("0 match(es)"), "{miss}");
}

#[test]
fn serve_and_remote_query() {
    let dir = fixture("serve");
    // Pick a free port by binding and releasing.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut server = Command::new(bin())
        .args([
            "serve", "--p", "83", "--e", "1", "--addr", &addr, "db.ssxdb",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Wait for the listener.
    let mut connected = false;
    for _ in 0..50 {
        if std::net::TcpStream::connect(&addr).is_ok() {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(connected, "server did not come up");

    let out = assert_ok(
        &[
            "remote",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--addr",
            &addr,
            "--stats",
            "/site/regions/europe/item",
        ],
        &dir,
    );
    assert!(out.contains("match(es)"), "{out}");

    // Shut the server down via the protocol.
    use ssxdb::core::protocol::Request;
    use ssxdb::core::{TcpTransport, Transport};
    let mut t = TcpTransport::connect(&addr).unwrap();
    t.call(&Request::Shutdown).unwrap();
    let status = server.wait().unwrap();
    assert!(status.success());
}

/// The multiplexed plane over the CLI: `serve --mux` hosts the same
/// database behind the fixed thread pool, `remote --mux` queries it through
/// the correlation envelope, and a legacy (non-mux) `remote` against the
/// same host still answers — identically.
#[test]
fn mux_serve_and_remote_via_cli() {
    let dir = fixture("mux_serve");
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut server = Command::new(bin())
        .args([
            "serve", "--p", "83", "--e", "1", "--addr", &addr, "--shards", "2", "--mux", "db.ssxdb",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut connected = false;
    for _ in 0..50 {
        if std::net::TcpStream::connect(&addr).is_ok() {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(connected, "mux server did not come up");

    let common = [
        "remote",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "--addr",
        &addr,
        "--shards",
        "2",
    ];
    let mut mux_args: Vec<&str> = common.to_vec();
    mux_args.extend([
        "--mux",
        "--speculate",
        "--stats",
        "/site/regions/europe/item",
    ]);
    let muxed = assert_ok(&mux_args, &dir);
    assert!(muxed.contains("match(es)"), "{muxed}");

    let mut legacy_args: Vec<&str> = common.to_vec();
    legacy_args.push("/site/regions/europe/item");
    let legacy = assert_ok(&legacy_args, &dir);
    let matches = |s: &String| {
        s.lines()
            .find(|l| l.contains("match(es)"))
            .map(str::to_string)
    };
    assert_eq!(
        matches(&muxed),
        matches(&legacy),
        "mux and legacy clients must agree"
    );

    use ssxdb::core::protocol::Request;
    use ssxdb::core::{TcpTransport, Transport};
    let mut t = TcpTransport::connect(&addr).unwrap();
    t.call(&Request::Shutdown).unwrap();
    let status = server.wait().unwrap();
    assert!(status.success());
}

/// The online re-sharding workflow over the CLI: a sharded host comes up
/// with S = 2, `ssxdb reshard` repartitions it to 3 while it runs, and a
/// speculative `remote` client under the new count gets the same answer.
#[test]
fn reshard_and_speculative_remote_via_cli() {
    let dir = fixture("reshard");
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut server = Command::new(bin())
        .args([
            "serve", "--p", "83", "--e", "1", "--addr", &addr, "--shards", "2", "db.ssxdb",
        ])
        .current_dir(&dir)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut connected = false;
    for _ in 0..50 {
        if std::net::TcpStream::connect(&addr).is_ok() {
            connected = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(connected, "server did not come up");

    let before = assert_ok(
        &[
            "remote",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--addr",
            &addr,
            "--shards",
            "2",
            "/site/regions/europe/item",
        ],
        &dir,
    );

    let out = assert_ok(&["reshard", "--addr", &addr, "--shards", "3"], &dir);
    assert!(out.contains("3 shard(s)"), "{out}");

    // The old shard count is refused; the new one answers identically —
    // with speculation on.
    let (ok, _, err) = run(
        &[
            "remote",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--addr",
            &addr,
            "--shards",
            "2",
            "/site/regions/europe/item",
        ],
        &dir,
    );
    assert!(!ok, "stale shard count must be refused");
    assert!(err.contains("shard"), "{err}");
    let after = assert_ok(
        &[
            "remote",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--addr",
            &addr,
            "--shards",
            "3",
            "--speculate",
            "--stats",
            "/site/regions/europe/item",
        ],
        &dir,
    );
    let matches = |s: &String| {
        s.lines()
            .find(|l| l.contains("match(es)"))
            .map(str::to_string)
    };
    assert_eq!(matches(&before), matches(&after), "answers must survive");

    use ssxdb::core::protocol::Request;
    use ssxdb::core::{TcpTransport, Transport};
    let mut t = TcpTransport::connect(&addr).unwrap();
    t.call(&Request::Shutdown).unwrap();
    let status = server.wait().unwrap();
    assert!(status.success());
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = workdir("errors");
    // Unknown command.
    let (ok, _, err) = run(&["frobnicate"], &dir);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
    // Missing file.
    let (ok, _, err) = run(&["info", "nope.ssxdb"], &dir);
    assert!(!ok);
    assert!(err.contains("error"), "{err}");
    // Bad query on a real db.
    let dir = fixture("badquery");
    let (ok, _, err) = run(
        &[
            "query",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "db.ssxdb",
            "site",
        ],
        &dir,
    );
    assert!(!ok);
    assert!(err.contains("error"), "{err}");
    // Wrong rule keyword.
    let (ok, _, err) = run(
        &[
            "query",
            "--map",
            "map.properties",
            "--seed",
            "seed.hex",
            "--rule",
            "bogus",
            "db.ssxdb",
            "/site",
        ],
        &dir,
    );
    assert!(!ok);
    assert!(err.contains("unknown rule"), "{err}");
}

#[test]
fn help_prints_usage() {
    let dir = workdir("help");
    let out = assert_ok(&["help"], &dir);
    assert!(out.contains("keygen"));
    assert!(out.contains("serve"));
}
