//! Online re-sharding end to end: for every query family and every
//! `S → S'` transition in {1, 2, 4}², results are identical before and
//! after `reshard` — over the in-process plane and over TCP — and the
//! persisted bytes round-trip bit-identically.

use ssxdb::core::protocol::{Request, Response};
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp_sharded, serve_tcp_sharded_auto, ClientFilter, EncryptedDb, Engine,
    EngineKind, MapFile, MatchRule, ShardRouter, ShardedServer, TcpTransport,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    (map, Seed::from_test_key(77))
}

const QUERIES: [&str; 4] = [
    "/site//europe/item",
    "//bidder/date",
    "/site/*/person//city",
    "/site/open_auctions/open_auction/../closed_auctions",
];

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// Every engine × rule × query combination returns the same result set
/// after any `S → S'` repartition of the in-process plane.
#[test]
fn reshard_is_invisible_to_every_query_family() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 6 * 1024,
    });
    let (map, seed) = secrets();
    // Baseline: fresh single-shard database.
    let mut baseline_db = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
    let mut baseline = Vec::new();
    for q in QUERIES {
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                baseline.push(baseline_db.query(q, kind, rule).unwrap().pres());
            }
        }
    }
    for from in SHARD_COUNTS {
        for to in SHARD_COUNTS {
            let mut db =
                EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), from).unwrap();
            db.reshard(to).unwrap();
            assert_eq!(db.shards(), to);
            let mut i = 0;
            for q in QUERIES {
                for kind in [EngineKind::Simple, EngineKind::Advanced] {
                    for rule in [MatchRule::Containment, MatchRule::Equality] {
                        let out = db.query(q, kind, rule).unwrap();
                        assert_eq!(
                            out.pres(),
                            baseline[i],
                            "{q} {kind:?} {rule:?} S={from}→{to}"
                        );
                        i += 1;
                    }
                }
            }
        }
    }
}

/// The low-level fetch families (children / descendants / locs_of /
/// equality) answer identically across a repartition.
#[test]
fn reshard_preserves_every_fetch_family() {
    let xml = generate(&XmarkConfig {
        seed: 11,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let mut db = EncryptedDb::encode_sharded(&xml, map, seed, 2).unwrap();
    let client = db.client_mut();
    let root = client.root().unwrap().unwrap();
    let all: Vec<_> = {
        let mut v = vec![root];
        v.extend(client.descendants(root).unwrap());
        v
    };
    let pres: Vec<u32> = all.iter().map(|l| l.pre).collect();
    let value = client.value_of("item").unwrap();
    let children = client.children_many(&pres).unwrap();
    let descendants = client.descendants_many(&all).unwrap();
    let locs = client.locs_of_many(&pres).unwrap();
    let equality = client.equality_many(&all, value).unwrap();
    let containment = client.containment_many(&all, value).unwrap();
    for to in SHARD_COUNTS {
        db.reshard(to).unwrap();
        let client = db.client_mut();
        assert_eq!(client.children_many(&pres).unwrap(), children, "S'={to}");
        assert_eq!(
            client.descendants_many(&all).unwrap(),
            descendants,
            "S'={to}"
        );
        assert_eq!(client.locs_of_many(&pres).unwrap(), locs, "S'={to}");
        assert_eq!(
            client.equality_many(&all, value).unwrap(),
            equality,
            "S'={to}"
        );
        assert_eq!(
            client.containment_many(&all, value).unwrap(),
            containment,
            "S'={to}"
        );
    }
}

/// `S → S' → S` must persist bit-identical bytes: the partition moves rows,
/// never rewrites them.
#[test]
fn reshard_round_trip_saves_bit_identical_bytes() {
    let xml = generate(&XmarkConfig {
        seed: 12,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let dir = std::env::temp_dir().join("ssxdb_resharding_tests");
    std::fs::create_dir_all(&dir).unwrap();
    for from in SHARD_COUNTS {
        for to in SHARD_COUNTS {
            let mut db =
                EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), from).unwrap();
            let before = dir.join(format!("before_{from}_{to}.ssxdb"));
            let after = dir.join(format!("after_{from}_{to}.ssxdb"));
            db.save(&before).unwrap();
            db.reshard(to).unwrap();
            db.reshard(from).unwrap();
            db.save(&after).unwrap();
            assert_eq!(
                std::fs::read(&before).unwrap(),
                std::fs::read(&after).unwrap(),
                "S={from}→{to}→{from} changed the persisted bytes"
            );
            std::fs::remove_file(&before).ok();
            std::fs::remove_file(&after).ok();
        }
    }
}

/// Online re-shard over TCP: a live sharded host repartitions on a
/// `Reshard` frame; fresh clients (with the new shard count) get identical
/// answers, stale clients are refused by the handshake, and the host
/// returns the re-sharded fleet on shutdown.
#[test]
fn tcp_host_reshards_online() {
    let xml = generate(&XmarkConfig {
        seed: 13,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let rows = out.table.len();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let query = parse_query("//bidder/date").unwrap();
    let expected = {
        let mut c = ClientFilter::new(
            ShardRouter::connect(addr, 2).unwrap(),
            map.clone(),
            seed.clone(),
        )
        .unwrap();
        Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c)
            .unwrap()
            .pres()
    };

    // Repartition the live host: 2 → 3.
    let mut admin = TcpTransport::connect(addr).unwrap();
    assert_eq!(
        admin.call(&Request::Reshard { shards: 3 }).unwrap(),
        Response::Ok
    );
    assert_eq!(
        admin.call(&Request::ShardCount).unwrap(),
        Response::Count(3)
    );

    // The host's scope drains every connection on shutdown; release the
    // admin connection so join() below can finish.
    drop(admin);

    // A stale client (old shard count) is refused at connect.
    assert!(ShardRouter::connect(addr, 2).is_err());

    // A fresh client under the new partition gets identical answers.
    let mut c = ClientFilter::new(ShardRouter::connect(addr, 3).unwrap(), map, seed).unwrap();
    let out = Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c).unwrap();
    assert_eq!(out.pres(), expected, "answers survive the online reshard");

    c.transport_mut().call(&Request::Shutdown).unwrap();
    let server = handle.join().unwrap();
    assert_eq!(server.spec().shards(), 3, "host kept the new partition");
    assert_eq!(server.total_rows(), rows, "no row lost in flight");
    for f in server.filters() {
        assert_eq!(f.open_cursors(), 0);
    }
}

/// Concurrent queries keep answering correctly while another connection
/// re-shards the host under them: stale-partition requests surface as
/// errors or correct answers, never wrong answers, and a reconnect with
/// the new count always succeeds.
#[test]
fn tcp_reshard_races_with_live_queries_safely() {
    let xml = generate(&XmarkConfig {
        seed: 14,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let query = parse_query("//bidder/date").unwrap();
    let expected = {
        let mut c = ClientFilter::new(
            ShardRouter::connect(addr, 1).unwrap(),
            map.clone(),
            seed.clone(),
        )
        .unwrap();
        Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c)
            .unwrap()
            .pres()
    };

    let workers: Vec<_> = (0..3)
        .map(|_| {
            let map = map.clone();
            let seed = seed.clone();
            let query = query.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..6 {
                    // The host may repartition at any moment; connect fresh
                    // each round with whatever count it reports.
                    let mut probe = match TcpTransport::connect(addr) {
                        Ok(t) => t,
                        Err(_) => continue,
                    };
                    let shards = match probe.call(&Request::ShardCount) {
                        Ok(Response::Count(n)) => n as u32,
                        _ => continue,
                    };
                    let Ok(router) = ShardRouter::connect(addr, shards) else {
                        continue; // count changed between probe and connect
                    };
                    let mut c = ClientFilter::new(router, map.clone(), seed.clone()).unwrap();
                    // The invariant: a *completed* query is exactly correct;
                    // a reshard mid-query surfaces as an error, which is fine.
                    if let Ok(out) =
                        Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c)
                    {
                        assert_eq!(out.pres(), expected);
                    }
                }
            })
        })
        .collect();

    let mut admin = TcpTransport::connect(addr).unwrap();
    for shards in [2u32, 4, 3, 1, 2] {
        assert_eq!(
            admin.call(&Request::Reshard { shards }).unwrap(),
            Response::Ok
        );
    }
    for w in workers {
        w.join().unwrap();
    }
    drop(admin);
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
    let server = handle.join().unwrap();
    assert_eq!(server.spec().shards(), 2);
}

/// `serve --auto-reshard-target BYTES`: the host's own ticker sizes the
/// fleet from *stored* bytes. Starting at 1 shard with a target that
/// argues for several, the count must converge to `⌈total/target⌉`, stay
/// there (the suggestion is a fixed point of the repartition), and a
/// client connected under the converged count must see exactly the
/// single-shard answers.
#[test]
fn auto_reshard_converges_and_never_changes_results() {
    let xml = generate(&XmarkConfig {
        seed: 17,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let total = out.table.size_report().data_bytes() as u64;
    // A target that asks for a handful of shards; the fixed point is
    // exactly ⌈total/target⌉ whatever the count the host starts at.
    let target = total.div_ceil(4);
    let expected_shards = total.div_ceil(target) as u32;
    assert!(expected_shards > 1, "test needs a growth-inducing target");
    let server = ShardedServer::from_table(out.table, out.ring, 1).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle =
        std::thread::spawn(move || serve_tcp_sharded_auto(listener, server, Some(target)).unwrap());

    let query = parse_query("//bidder/date").unwrap();
    let expected = {
        let mut db = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
        db.run(&query, EngineKind::Simple, MatchRule::Containment)
            .unwrap()
            .pres()
    };

    // Convergence: the live count reaches the fixed point…
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let mut probe = TcpTransport::connect(addr).unwrap();
        match probe.call(&Request::ShardCount).unwrap() {
            Response::Count(n) if n as u32 == expected_shards => break,
            Response::Count(_) => {}
            other => panic!("unexpected probe response {other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "auto-reshard did not converge to {expected_shards} shards"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // …and stays there: several tick periods later nothing has moved.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut probe = TcpTransport::connect(addr).unwrap();
    assert_eq!(
        probe.call(&Request::ShardCount).unwrap(),
        Response::Count(expected_shards as u64),
        "converged count must be a fixed point"
    );
    drop(probe);

    // Results under the converged partition are the single-shard answers.
    let mut c = ClientFilter::new(
        ShardRouter::connect(addr, expected_shards).unwrap(),
        map,
        seed,
    )
    .unwrap();
    let out = Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c).unwrap();
    assert_eq!(out.pres(), expected, "auto-reshard never changes results");

    c.transport_mut().call(&Request::Shutdown).unwrap();
    let server = handle.join().unwrap();
    assert_eq!(server.spec().shards(), expected_shards);
}

/// A legacy unsharded `serve_tcp` endpoint refuses the new frame cleanly.
#[test]
fn legacy_server_refuses_reshard() {
    let (map, seed) = secrets();
    let out = encode_document(
        &generate(&XmarkConfig {
            seed: 15,
            target_bytes: 2 * 1024,
        }),
        &map,
        &seed,
    )
    .unwrap();
    let server = ssxdb::core::ServerFilter::new(out.table, out.ring);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || ssxdb::core::serve_tcp(listener, server).unwrap());
    let mut t = TcpTransport::connect(addr).unwrap();
    assert!(matches!(
        t.call(&Request::Reshard { shards: 2 }).unwrap(),
        Response::Err(_)
    ));
    t.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
