//! The sharded, batched query plane end to end: identical results for
//! `S ∈ {1, 2, 4}` over both transports, concurrent TCP serving, and the
//! round-trip economics the plane exists for.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp_sharded, ClientFilter, EncryptedDb, Engine, EngineKind, FetchMode,
    MapFile, MatchRule, ShardRouter, ShardedServer, SimpleEngine,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    (map, Seed::from_test_key(77))
}

const QUERIES: [&str; 5] = [
    "/site//europe/item",
    "//bidder/date",
    "/site/*/person//city",
    "/site/regions/europe/item/description",
    "/site/open_auctions/open_auction/../closed_auctions",
];

/// Results and logical round trips are invariant in the shard count, over
/// the in-process router.
#[test]
fn shard_count_is_invisible_in_results() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 8 * 1024,
    });
    let (map, seed) = secrets();

    let mut baseline: Vec<Vec<u32>> = Vec::new();
    for (i, shards) in [1u32, 2, 4].into_iter().enumerate() {
        let mut db = EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        assert_eq!(db.shards(), shards);
        for (qi, q) in QUERIES.iter().enumerate() {
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                for rule in [MatchRule::Containment, MatchRule::Equality] {
                    let out = db.query(q, kind, rule).unwrap();
                    if i == 0 && kind == EngineKind::Simple && rule == MatchRule::Containment {
                        baseline.push(out.pres());
                    }
                    if kind == EngineKind::Simple && rule == MatchRule::Containment {
                        assert_eq!(out.pres(), baseline[qi], "{q} S={shards}");
                    }
                }
            }
        }
    }
}

/// The full plane over real sockets: a concurrent sharded host, one
/// connection per shard, tagged frames — same answers as the in-process
/// single-shard plane, work spread across every shard.
#[test]
fn sharded_tcp_serving_matches_local() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 6 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let shards = 3u32;
    let tcp_server =
        ShardedServer::from_table(out.table.clone(), out.ring.clone(), shards).unwrap();
    let local_server = ShardedServer::from_table(out.table, out.ring, 1).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, tcp_server).unwrap());

    let mut local_client =
        ClientFilter::new(ShardRouter::local(local_server), map.clone(), seed.clone()).unwrap();
    let mut tcp_client =
        ClientFilter::new(ShardRouter::connect(addr, shards).unwrap(), map, seed).unwrap();

    for q in [
        "/site//europe/item",
        "//bidder/date",
        "/site/*/person//city",
    ] {
        let query = parse_query(q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let a = Engine::run(kind, rule, &query, &mut local_client).unwrap();
                let b = Engine::run(kind, rule, &query, &mut tcp_client).unwrap();
                assert_eq!(a.pres(), b.pres(), "{q} {kind:?} {rule:?}");
                assert_eq!(
                    a.stats.round_trips, b.stats.round_trips,
                    "same logical waves: {q} {kind:?} {rule:?}"
                );
            }
        }
    }

    tcp_client.transport_mut().call(&Request::Shutdown).unwrap();
    let server = handle.join().unwrap();
    // Every shard did real work and kept its own counters.
    for (i, f) in server.filters().iter().enumerate() {
        assert!(f.stats().requests > 0, "shard {i} idle");
        assert!(!f.table().is_empty(), "shard {i} empty");
    }
    // No abandoned cursors anywhere after clean query runs.
    for f in server.filters() {
        assert_eq!(f.open_cursors(), 0);
    }
}

/// Two clients on the concurrent host at once, interleaving queries.
#[test]
fn concurrent_clients_share_the_sharded_host() {
    let xml = generate(&XmarkConfig {
        seed: 11,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let query = parse_query("//bidder/date").unwrap();
    let expected = {
        let mut c = ClientFilter::new(
            ShardRouter::connect(addr, 2).unwrap(),
            map.clone(),
            seed.clone(),
        )
        .unwrap();
        Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c)
            .unwrap()
            .pres()
    };
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let map = map.clone();
            let seed = seed.clone();
            let query = query.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c =
                    ClientFilter::new(ShardRouter::connect(addr, 2).unwrap(), map, seed).unwrap();
                for _ in 0..3 {
                    let out =
                        Engine::run(EngineKind::Simple, MatchRule::Containment, &query, &mut c)
                            .unwrap();
                    assert_eq!(out.pres(), expected);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let mut closer = ShardRouter::connect(addr, 2).unwrap();
    closer.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

/// The acceptance criterion: batching on (whole-frontier batches) must cut
/// measured round trips by ≥5× against the unbatched path — batch limit 1,
/// the one-request-per-round-trip wire shape — at identical results, for
/// every shard count. The §5.2 pipelined cursor mode is more extreme still.
#[test]
fn batching_cuts_round_trips_5x_at_identical_results() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 32 * 1024,
    });
    let (map, seed) = secrets();
    for query in ["/site/regions/europe/item/description", "//bidder/date"] {
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            for shards in [1u32, 2, 4] {
                let mut batched =
                    EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
                let mut unbatched =
                    EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
                unbatched.set_batch_limit(Some(1));

                let a = batched.query(query, EngineKind::Simple, rule).unwrap();
                let b = unbatched.query(query, EngineKind::Simple, rule).unwrap();
                assert_eq!(a.pres(), b.pres(), "batching must not change results");
                assert_eq!(a.stats.evaluations(), b.stats.evaluations());
                assert!(
                    b.stats.round_trips >= 5 * a.stats.round_trips,
                    "{query} {rule:?} S={shards}: unbatched {} vs batched {} round trips",
                    b.stats.round_trips,
                    a.stats.round_trips
                );
                assert!(a.stats.batches > 0, "frontiers actually batched");
                assert!(a.stats.batched_requests > a.stats.batches);
            }
        }
    }
}

/// Pipelined (cursor) fetching still agrees with bulk over shards, and its
/// per-node round trips dwarf the batched plane's.
#[test]
fn pipelined_mode_agrees_over_shards() {
    let xml = generate(&XmarkConfig {
        seed: 12,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    for shards in [1u32, 2, 4] {
        let mut db = EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        let query = parse_query("//bidder/date").unwrap();
        let bulk = SimpleEngine::run_with_mode(
            &query,
            MatchRule::Containment,
            db.client_mut(),
            FetchMode::Bulk,
        )
        .unwrap();
        let piped = SimpleEngine::run_with_mode(
            &query,
            MatchRule::Containment,
            db.client_mut(),
            FetchMode::Pipelined,
        )
        .unwrap();
        assert_eq!(bulk.pres(), piped.pres(), "S={shards}");
        assert!(
            piped.stats.round_trips > 5 * bulk.stats.round_trips,
            "S={shards}: pipelined {} vs bulk {}",
            piped.stats.round_trips,
            bulk.stats.round_trips
        );
    }
}
