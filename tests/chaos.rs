//! The resilience plane end to end: the party health machine's full
//! `Live → Suspect → Quarantined → Probation → Live` lifecycle including a
//! failed re-admission probe and its doubled cooldown, hedged t-first
//! waves that stop waiting for a slow party while still crediting its
//! straggler answers, and a chaos-proxy soak whose whole fault schedule
//! replays from a printed seed (`SSXDB_CHAOS_SEED`).

use ssxdb::core::protocol::{Request, Response};
use ssxdb::core::transport::TransportStats;
use ssxdb::core::{
    encode_document_fleet, fleet_mac_key, party_server, serve_tcp_sharded, ChaosConfig, ChaosProxy,
    ChaosTransport, ClientFilter, CoreError, Dialer, EncryptedDb, Engine, EngineKind, FleetLeg,
    FleetSpec, FleetTransport, LocalPartyTransport, MapFile, MatchRule, PartyHealth,
    ResilienceConfig, ShardRouter, ShardSpec, TcpTransport, Transport,
};
use ssxdb::prg::Seed;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const XML: &str = "<site><a><b/><b/></a><c><a><b/></a></c></site>";

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    (map, Seed::from_test_key(21))
}

/// A party leg whose availability is a shared switch: while `down` it
/// refuses every call (and every re-dial), exactly like an unreachable
/// host, but can be flipped back up to model recovery.
struct FlakyTransport {
    inner: LocalPartyTransport,
    down: Arc<AtomicBool>,
}

impl Transport for FlakyTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(CoreError::Transport("party host unreachable (test)".into()));
        }
        self.inner.call(req)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

/// A 3-party t=2 pipe whose party 3 can be switched off and back on; its
/// dialer honors the same switch, so re-admission probes fail while the
/// party is down and pass once it recovers.
fn flaky_pipe() -> (FleetTransport<FlakyTransport>, Arc<AtomicBool>) {
    let (map, seed) = secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    let packer = fleet.packer.clone();
    let alpha = fleet_mac_key(&seed, &ring);
    let switch = Arc::new(AtomicBool::new(false));
    let legs = fleet
        .parties
        .into_iter()
        .map(|p| {
            let party = p.party;
            let host = Arc::new(Mutex::new(party_server(p.data, p.mac, &ring, 1).unwrap()));
            let down = if party == 3 {
                Arc::clone(&switch)
            } else {
                Arc::new(AtomicBool::new(false))
            };
            let dial: Dialer<FlakyTransport> = {
                let host = Arc::clone(&host);
                let down = Arc::clone(&down);
                Arc::new(move |_budget| {
                    if down.load(Ordering::SeqCst) {
                        Err(CoreError::Transport("party host unreachable (test)".into()))
                    } else {
                        Ok(FlakyTransport {
                            inner: LocalPartyTransport::new(Arc::clone(&host)),
                            down: Arc::clone(&down),
                        })
                    }
                })
            };
            FleetLeg::up(
                party,
                FlakyTransport {
                    inner: LocalPartyTransport::new(Arc::clone(&host)),
                    down: Arc::clone(&down),
                },
            )
            .at(format!("party{party}.test:0"))
            .with_dialer(dial)
        })
        .collect();
    let mut pipe = FleetTransport::new(legs, 2, 1, 0, ring, packer, alpha, false);
    pipe.set_resilience(ResilienceConfig {
        retries: 0,
        cooldown_waves: 2,
        ..Default::default()
    });
    (pipe, switch)
}

/// The whole health lifecycle, one wave at a time: two strikes quarantine
/// a failing party; a re-admission probe against a still-dead party fails
/// and doubles the cooldown; once the party recovers, the next probe
/// passes, the leg re-enters on probation, and its first successful wave
/// promotes it back to `Live` — after which it serves waves again.
#[test]
fn quarantined_party_recovers_probation_then_live() {
    let (mut pipe, down) = flaky_pipe();
    let health =
        |pipe: &FleetTransport<FlakyTransport>, p: usize| pipe.party_status()[p - 1].health;

    // Wave 1: everyone up.
    let reference = pipe.call(&Request::Count).unwrap();
    assert_eq!(health(&pipe, 3), PartyHealth::Live);

    // Waves 2–3: party 3 is down. First strike demotes, second quarantines
    // (cooldown 2); the honest quorum keeps answering bit-identically.
    down.store(true, Ordering::SeqCst);
    assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
    assert_eq!(health(&pipe, 3), PartyHealth::Suspect);
    assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
    assert_eq!(health(&pipe, 3), PartyHealth::Quarantined);
    assert_eq!(pipe.live_parties(), vec![1, 2]);

    // Waves 4–5 tick the cooldown down; wave 6 probes — the party is still
    // dead, so the probe fails and the cooldown doubles to 4.
    for _ in 0..3 {
        assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
    }
    let st = pipe.party_status().remove(2);
    assert_eq!(st.health, PartyHealth::Quarantined);
    assert!(
        st.fault
            .as_deref()
            .unwrap()
            .contains("re-admission probe failed"),
        "{:?}",
        st.fault
    );

    // The party recovers. Waves 7–10 sit out the doubled cooldown...
    down.store(false, Ordering::SeqCst);
    for _ in 0..4 {
        assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
        assert_eq!(health(&pipe, 3), PartyHealth::Quarantined);
    }
    // ...wave 11 probes successfully, re-admits the leg on probation, and
    // its answer in that same wave promotes it to Live with a clean record.
    assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
    let st = pipe.party_status().remove(2);
    assert_eq!(st.health, PartyHealth::Live, "fault: {:?}", st.fault);
    assert!(st.fault.is_none());
    assert_eq!(pipe.live_parties(), vec![1, 2, 3]);

    // And it keeps serving: the next wave grows its success count.
    let before = st.waves_ok;
    assert_eq!(pipe.call(&Request::Count).unwrap(), reference);
    assert_eq!(pipe.party_status()[2].waves_ok, before + 1);
}

/// Hedged reconstruction: with one party fix-delayed 120 ms, a t-first
/// wave answers from the two fast parties without waiting, counts the
/// hedged win, and later harvests the straggler's answer — crediting both
/// the party (it stays `Live` with successful waves) and the saved wait.
#[test]
fn hedged_waves_answer_at_threshold_and_credit_stragglers() {
    let (map, seed) = secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    let packer = fleet.packer.clone();
    let alpha = fleet_mac_key(&seed, &ring);
    let legs = fleet
        .parties
        .into_iter()
        .map(|p| {
            let party = p.party;
            let host = Arc::new(Mutex::new(party_server(p.data, p.mac, &ring, 1).unwrap()));
            let cfg = if party == 3 {
                ChaosConfig::fixed_delay(7, Duration::from_millis(120))
            } else {
                ChaosConfig::quiet(7)
            };
            FleetLeg::up(
                party,
                ChaosTransport::new(LocalPartyTransport::new(host), cfg),
            )
        })
        .collect();
    let mut pipe = FleetTransport::new(legs, 2, 1, 0, ring, packer, alpha, false);
    pipe.set_resilience(ResilienceConfig {
        hedge: true,
        ..Default::default()
    });

    let t0 = Instant::now();
    let reference = pipe.call(&Request::Count).unwrap();
    let first = t0.elapsed();
    assert!(
        first < Duration::from_millis(80),
        "hedged wave waited for the slow party: {first:?}"
    );

    // Let the straggler finish, then run another wave: it harvests the
    // late answer (crediting the party and the skipped wait) and hedges
    // again.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(pipe.call(&Request::Count).unwrap(), reference);

    let stats = pipe.stats();
    assert!(stats.hedged_wins >= 1, "no hedged win was counted");
    assert!(
        stats.straggler_ms >= 100,
        "straggler lag not credited: {} ms",
        stats.straggler_ms
    );
    let st = pipe.party_status().remove(2);
    assert_eq!(st.health, PartyHealth::Live);
    assert!(st.waves_ok >= 1, "the straggler's answers must count");
}

/// A 3-party fleet queried through per-party seeded chaos proxies (delay,
/// drop, reset, reorder, bit flips). Every fault schedule derives from one
/// printed seed, so any failure replays exactly; rounds that survive the
/// chaos must be bit-identical to the clean single-party reference.
#[test]
fn chaos_proxy_soak_replays_from_a_printed_seed() {
    let seed_base: u64 = std::env::var("SSXDB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    println!("chaos soak: set SSXDB_CHAOS_SEED={seed_base} to replay this fault schedule");

    let (map, key) = secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(XML, &map, &key, spec).unwrap();
    let ring = fleet.ring.clone();
    let packer = fleet.packer.clone();
    let alpha = fleet_mac_key(&key, &ring);

    let expected = EncryptedDb::encode(XML, map.clone(), key.clone())
        .unwrap()
        .query("//a/b", EngineKind::Advanced, MatchRule::Equality)
        .unwrap()
        .result;

    // One host per party, each behind its own seeded chaos proxy.
    let mut hosts = Vec::new();
    let mut proxies = Vec::new();
    for p in fleet.parties {
        let party = p.party;
        let server = party_server(p.data, p.mac, &ring, 1).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());
        let cfg = ChaosConfig::soak(seed_base.wrapping_add(party as u64));
        proxies.push(ChaosProxy::spawn(addr, cfg).unwrap());
        hosts.push((addr, handle));
    }

    // Connect through the proxies with a hard per-call deadline, so even a
    // dropped frame can only cost the deadline, never a hang.
    let budget = Some(Duration::from_millis(400));
    let legs = proxies
        .iter()
        .enumerate()
        .map(|(j, proxy)| {
            let addr = proxy.addr().to_string();
            let dial: Dialer<TcpTransport> = {
                let addr = addr.clone();
                Arc::new(move |b| TcpTransport::connect_within(addr.as_str(), b))
            };
            let leg = match TcpTransport::connect_within(addr.as_str(), budget) {
                Ok(t) => FleetLeg::up(j + 1, t),
                Err(e) => FleetLeg::down(j + 1, e.to_string()),
            };
            leg.at(&addr).with_dialer(dial)
        })
        .collect();
    let mut pipe = FleetTransport::new(legs, 2, 1, 0, ring, packer, alpha, true);
    pipe.set_resilience(ResilienceConfig {
        deadline: budget,
        retries: 2,
        cooldown_waves: 1,
        ..Default::default()
    });
    let router = ShardRouter::new(ShardSpec::new(1), vec![pipe], false, true);
    let mut client = ClientFilter::new(router, map, key).unwrap();
    let query = ssxdb::xpath::parse_query("//a/b").unwrap();

    let mut ok = 0;
    for round in 0..6 {
        match Engine::run(
            EngineKind::Advanced,
            MatchRule::Equality,
            &query,
            &mut client,
        ) {
            Ok(out) => {
                assert_eq!(
                    out.result, expected,
                    "round {round} returned wrong results under chaos (seed {seed_base})"
                );
                ok += 1;
            }
            Err(e) => println!("round {round} failed under chaos (seed {seed_base}): {e}"),
        }
    }
    assert!(
        ok >= 1,
        "no round survived the chaos soak (seed {seed_base})"
    );

    drop(client);
    for proxy in &proxies {
        proxy.stop();
    }
    drop(proxies);
    for (addr, handle) in hosts {
        let mut closer = TcpTransport::connect(addr).unwrap();
        closer.call(&Request::Shutdown).unwrap();
        drop(closer);
        handle.join().unwrap();
    }
}
