//! The whole stack over a true extension field. The paper defines the
//! scheme for any prime power `p^e` but only evaluated `e = 1`; these tests
//! prove the implementation honours the general definition end to end
//! (map → encode → share → store → query → oracle agreement).

use ssxdb::core::{reference_eval, EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::Seed;
use ssxdb::xml::Document;
use ssxdb::xpath::parse_query;

const TAGS: [&str; 6] = ["site", "region", "item", "name", "price", "seller"];

const DOC: &str = "<site>\
    <region><item><name/><price/></item><item><name/><seller/></item></region>\
    <region><item><price/></item></region>\
    <seller><name/></seller>\
</site>";

fn db(p: u64, e: u32) -> EncryptedDb {
    let map = MapFile::sequential(p, e, &TAGS).unwrap();
    EncryptedDb::encode(DOC, map, Seed::from_test_key(81)).unwrap()
}

#[test]
fn gf_3_4_database_answers_correctly() {
    // F_81: ring length 80, element codes are base-3 digit packings.
    let mut db = db(3, 4);
    let doc = Document::parse(DOC).unwrap();
    for q in [
        "/site/region/item",
        "//name",
        "/site//price",
        "//item/../..",
        "/site/seller/name",
    ] {
        let query = parse_query(q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let oracle = reference_eval(&doc, &query, rule).unwrap();
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let got = db.run(&query, kind, rule).unwrap().pres();
                assert_eq!(got, oracle, "{q} {kind:?} {rule:?} over F_81");
            }
        }
    }
}

#[test]
fn gf_2_8_database_answers_correctly() {
    // F_256: the ring has 255 coefficients; packing is byte-aligned.
    let mut db = db(2, 8);
    let out = db
        .query("//item", EngineKind::Advanced, MatchRule::Equality)
        .unwrap();
    assert_eq!(out.result.len(), 3);
    let c = db
        .query("//item", EngineKind::Advanced, MatchRule::Containment)
        .unwrap();
    assert!(c.result.len() >= out.result.len());
}

#[test]
fn extension_field_row_sizes_follow_the_formula() {
    // F_81 polynomial: 80 coefficients * log2(81) bits = 507.4 -> 64 bytes.
    let db81 = db(3, 4);
    let report = db81.size_report();
    let expected = (80.0 * (81.0f64).log2() / 8.0).ceil() as usize;
    assert_eq!(report.poly_bytes / report.rows, expected);
    // F_256: exactly 255 bytes per row.
    let db256 = db(2, 8);
    assert_eq!(
        db256.size_report().poly_bytes / db256.size_report().rows,
        255
    );
}

#[test]
fn cross_field_results_agree() {
    // The same document and queries answered over three different fields
    // must produce identical result sets — the field is an implementation
    // parameter, not a semantic one.
    let mut a = db(83, 1);
    let mut b = db(3, 4);
    let mut c = db(2, 8);
    for q in ["/site/region/item", "//name", "/site//price"] {
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let ra = a.query(q, EngineKind::Advanced, rule).unwrap().pres();
            let rb = b.query(q, EngineKind::Advanced, rule).unwrap().pres();
            let rc = c.query(q, EngineKind::Advanced, rule).unwrap().pres();
            assert_eq!(ra, rb, "{q} {rule:?}: F_83 vs F_81");
            assert_eq!(ra, rc, "{q} {rule:?}: F_83 vs F_256");
        }
    }
}
