//! The encrypted table survives a round trip to disk and keeps answering
//! queries; damaged files are rejected, not silently misread.

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::{Prg, Seed};
use ssxdb::store::StoreError;
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};

fn workdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ssxdb_persistence_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn secrets() -> (MapFile, Seed) {
    (
        MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(12)).unwrap(),
        Seed::from_test_key(0xD15C),
    )
}

#[test]
fn save_load_query_equivalence() {
    let xml = generate(&XmarkConfig {
        seed: 31,
        target_bytes: 8 * 1024,
    });
    let (map, seed) = secrets();
    let mut db = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
    let before = db
        .query("//bidder/date", EngineKind::Advanced, MatchRule::Equality)
        .unwrap();

    let path = workdir().join("auction.ssxdb");
    db.save(&path).unwrap();
    let mut reloaded = EncryptedDb::load(&path, map, seed).unwrap();
    let after = reloaded
        .query("//bidder/date", EngineKind::Advanced, MatchRule::Equality)
        .unwrap();
    assert_eq!(before.pres(), after.pres());
    assert_eq!(db.node_count(), reloaded.node_count());
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_rejected() {
    let xml = generate(&XmarkConfig {
        seed: 32,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let db = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
    let path = workdir().join("truncated.ssxdb");
    db.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(EncryptedDb::load(&path, map, seed).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_bit_rejected() {
    let xml = generate(&XmarkConfig {
        seed: 33,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let db = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
    let path = workdir().join("bitflip.ssxdb");
    db.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let idx = bytes.len() / 3;
    bytes[idx] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();
    match ssxdb::store::load_table(&path) {
        Err(StoreError::Persist(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("expected checksum failure, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_db_with_wrong_seed_cannot_decrypt() {
    let xml = generate(&XmarkConfig {
        seed: 34,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let db = EncryptedDb::encode(&xml, map.clone(), seed).unwrap();
    let path = workdir().join("wrongseed.ssxdb");
    db.save(&path).unwrap();
    let mut stolen = EncryptedDb::load(&path, map, Seed::from_test_key(0xBAD)).unwrap();
    // The structure is public, so navigation works …
    assert!(stolen.node_count() > 0);
    // … but tag tests return garbage: /site never matches.
    let out = stolen
        .query("/site", EngineKind::Simple, MatchRule::Containment)
        .unwrap();
    assert!(out.result.is_empty(), "wrong seed must not answer queries");
    std::fs::remove_file(&path).ok();
}
