//! Speculative wave pipelining end to end: the fig5 chain query must
//! complete in strictly fewer round-trip waves than the PR-3 baseline (18)
//! at identical results; mis-speculation (frontiers that diverge from the
//! prediction) must be invisible in results and leak nothing.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp_sharded, ClientFilter, EncryptedDb, Engine, EngineKind, FetchMode,
    MapFile, MatchRule, ShardRouter, ShardedServer, SimpleEngine,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

/// The Table-1 chain and the bench harness's exact secrets/document, so the
/// measured baseline is the committed PR-3 figure.
const FIG5_CHAIN: &str = "/site/regions/europe/item/description/parlist/listitem/text/keyword";
/// PR 3's measured wave count for the chain (`BENCH_3.json`,
/// `EXPERIMENTS.md`): 1 root wave + 8 expansion waves + 9 test waves.
const PR3_BASELINE_WAVES: u64 = 18;

fn bench_secrets() -> (MapFile, Seed) {
    (
        MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(0x2005)).unwrap(),
        Seed::from_test_key(0x5D4_2005),
    )
}

fn bench_document() -> String {
    generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: 64 * 1024,
    })
}

/// The acceptance criterion: with speculation on, the fig5 chain costs
/// strictly fewer waves than PR 3's 18, with identical results, at every
/// shard count.
#[test]
fn fig5_chain_beats_the_pr3_wave_baseline() {
    let xml = bench_document();
    let (map, seed) = bench_secrets();
    for shards in [1u32, 2, 4] {
        let mut plain =
            EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        let mut spec =
            EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        spec.set_speculation(true);
        let a = plain
            .query(FIG5_CHAIN, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        let b = spec
            .query(FIG5_CHAIN, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert_eq!(a.pres(), b.pres(), "S={shards}: identical results");
        assert_eq!(
            a.stats.round_trips, PR3_BASELINE_WAVES,
            "S={shards}: the speculation-off plane is the PR-3 baseline"
        );
        assert!(
            b.stats.round_trips < PR3_BASELINE_WAVES,
            "S={shards}: speculative waves {} must beat the baseline {}",
            b.stats.round_trips,
            PR3_BASELINE_WAVES
        );
        assert!(b.stats.speculative_hits > 0, "S={shards}");
        assert_eq!(
            b.stats.evaluations(),
            a.stats.evaluations(),
            "S={shards}: speculation changes waves, not cryptographic work"
        );
    }
}

/// Speculation is invisible in results for every query shape, engine and
/// rule — including the mis-speculation paths: `..` steps (the frontier
/// climbs instead of descending), `//` steps (descendant expansion the
/// prediction does not cover) and look-ahead pruning.
#[test]
fn speculation_is_invisible_across_engines_and_rules() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 8 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    let seed = Seed::from_test_key(77);
    let queries = [
        "/site//europe/item",
        "//bidder/date",
        "/site/*/person//city",
        "/site/regions/europe/item/description",
        "/site/open_auctions/open_auction/../closed_auctions",
    ];
    for shards in [1u32, 2] {
        let mut plain =
            EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        let mut spec =
            EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        spec.set_speculation(true);
        for q in queries {
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                for rule in [MatchRule::Containment, MatchRule::Equality] {
                    let a = plain.query(q, kind, rule).unwrap();
                    let b = spec.query(q, kind, rule).unwrap();
                    assert_eq!(a.pres(), b.pres(), "{q} {kind:?} {rule:?} S={shards}");
                    assert!(
                        b.stats.round_trips <= a.stats.round_trips,
                        "{q} {kind:?} {rule:?} S={shards}: speculation must never add waves"
                    );
                }
            }
        }
    }
}

/// A diverging frontier (`..` climbs away from the predicted children)
/// wastes its prefetches and changes nothing else.
#[test]
fn mis_speculation_is_counted_and_harmless() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 8 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    let seed = Seed::from_test_key(77);
    let q = "/site/open_auctions/open_auction/../closed_auctions";
    let mut plain = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
    let mut spec = EncryptedDb::encode(&xml, map, seed).unwrap();
    spec.set_speculation(true);
    let a = plain
        .query(q, EngineKind::Simple, MatchRule::Containment)
        .unwrap();
    let b = spec
        .query(q, EngineKind::Simple, MatchRule::Containment)
        .unwrap();
    assert_eq!(a.pres(), b.pres());
    assert!(
        b.stats.speculative_wasted > 0,
        "the `..` step must strand prefetches: {:?}",
        b.stats
    );
}

/// The §5.2 cursor pipeline under speculation: identical streams, and no
/// cursor is leaked on any server — the `MAX_OPEN_CURSORS` budget stays
/// untouched after clean runs.
#[test]
fn speculation_leaves_cursor_hygiene_intact() {
    let xml = generate(&XmarkConfig {
        seed: 12,
        target_bytes: 4 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    let seed = Seed::from_test_key(77);
    for shards in [1u32, 2, 4] {
        let mut db = EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
        db.set_speculation(true);
        let query = parse_query("//bidder/date").unwrap();
        let bulk = SimpleEngine::run_with_mode(
            &query,
            MatchRule::Containment,
            db.client_mut(),
            FetchMode::Bulk,
        )
        .unwrap();
        let piped = SimpleEngine::run_with_mode(
            &query,
            MatchRule::Containment,
            db.client_mut(),
            FetchMode::Pipelined,
        )
        .unwrap();
        assert_eq!(bulk.pres(), piped.pres(), "S={shards}");
        for server in db.client_mut().transport().servers() {
            assert_eq!(server.open_cursors(), 0, "S={shards}: leaked cursor");
        }
        // Abandoning a cursor mid-stream while speculating still releases
        // every per-shard cursor on close.
        let client = db.client_mut();
        let cursor = client.open_children_cursor(vec![1]).unwrap();
        let _ = client.next_node(cursor).unwrap();
        client.close_cursor(cursor).unwrap();
        for server in db.client_mut().transport().servers() {
            assert_eq!(server.open_cursors(), 0, "S={shards}: close must release");
        }
    }
}

/// Speculation over real sockets: a sharded TCP host, tagged frames, same
/// answers, fewer waves. The speculative prefetches ride the same frames a
/// PR-3 host already understands — no server change is needed.
#[test]
fn speculation_over_tcp_matches_and_saves_waves() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 6 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    let seed = Seed::from_test_key(77);
    let out = encode_document(&xml, &map, &seed).unwrap();
    let shards = 3u32;
    let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let query = parse_query("/site/regions/europe/item").unwrap();
    let mut plain = ClientFilter::new(
        ShardRouter::connect(addr, shards).unwrap(),
        map.clone(),
        seed.clone(),
    )
    .unwrap();
    let mut router = ShardRouter::connect(addr, shards).unwrap();
    router.set_speculation(true);
    let mut spec = ClientFilter::new(router, map, seed).unwrap();

    let a = Engine::run(
        EngineKind::Simple,
        MatchRule::Containment,
        &query,
        &mut plain,
    )
    .unwrap();
    let b = Engine::run(
        EngineKind::Simple,
        MatchRule::Containment,
        &query,
        &mut spec,
    )
    .unwrap();
    assert_eq!(a.pres(), b.pres());
    assert!(
        b.stats.round_trips < a.stats.round_trips,
        "speculative {} vs plain {}",
        b.stats.round_trips,
        a.stats.round_trips
    );
    assert!(b.stats.speculative_hits > 0);

    // Release the idle router so the host's connection scope can drain.
    drop(plain);
    spec.transport_mut().call(&Request::Shutdown).unwrap();
    let server = handle.join().unwrap();
    for f in server.filters() {
        assert_eq!(f.open_cursors(), 0);
    }
}
