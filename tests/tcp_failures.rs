//! TCP failure paths must surface as typed `CoreError`s on the client and
//! must not take servers down: truncated frames, absurd length prefixes,
//! and mid-query disconnects.

use ssxdb::core::protocol::{encode_request, Request, Response};
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp, serve_tcp_mux, serve_tcp_sharded, CoreError, MapFile, MuxPool,
    ServerFilter, ShardRouter, ShardedServer, TcpTransport,
};
use ssxdb::prg::Seed;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn demo_server() -> ServerFilter {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    ServerFilter::new(out.table, out.ring)
}

/// A fake server that accepts one connection, runs `script` on it, and
/// drops it.
fn fake_server(script: impl FnOnce(TcpStream) + Send + 'static) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        script(stream);
    });
    addr
}

#[test]
fn oversized_length_prefix_is_refused_not_allocated() {
    let addr = fake_server(|mut stream| {
        // Read the request frame, answer with a 4 GiB length prefix.
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // Keep the socket open long enough for the client to read the prefix.
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("refused"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn truncated_response_frame_errors() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        // Promise 100 bytes, deliver 3, hang up.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("read"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn server_disconnect_mid_query_errors() {
    let addr = fake_server(drop);
    let mut t = TcpTransport::connect(addr).unwrap();
    // The server is gone: either the write fails or the read sees EOF —
    // both must be typed errors, never a panic.
    match t.call(&Request::Count) {
        Err(CoreError::Transport(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn malformed_client_frames_do_not_kill_serve_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

    // A client that promises 50 bytes and delivers 5, then vanishes.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&50u32.to_le_bytes()).unwrap();
        bad.write_all(&[9, 9, 9, 9, 9]).unwrap();
    }
    // A client that sends an oversized prefix.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
    }
    // The server must still answer a well-behaved client.
    let mut good = TcpTransport::connect(addr).unwrap();
    match good.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    good.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

/// A server dying in the middle of a *batch* response — the frame is
/// promised, half the multi-slot payload arrives, the socket drops — must
/// surface as a typed transport error on `call_batch`, exactly like the
/// single-request disconnects above (which were the only shape tested
/// before PR 5).
#[test]
fn mid_batch_disconnect_errors_cleanly_on_the_client() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 1024];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        // Promise a 400-byte batch response, deliver a plausible prefix
        // (the batch tag and a slot count), vanish mid-frame.
        stream.write_all(&400u32.to_le_bytes()).unwrap();
        stream.write_all(&[9u8]).unwrap();
        stream.write_all(&3u32.to_le_bytes()).unwrap();
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    let reqs = vec![Request::Count, Request::Root, Request::Count];
    match t.call_batch(&reqs) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("read"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

/// A complete frame that answers fewer slots than the batch asked for is a
/// *protocol* failure, not a silent truncation: every slot must be
/// accounted for or the whole batch errors.
#[test]
fn short_batch_response_is_an_error_not_a_truncation() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 1024];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        let payload = ssxdb::core::protocol::encode_response(&Response::Batch(vec![Response::Ok]));
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    let reqs = vec![Request::Count, Request::Root, Request::Count];
    match t.call_batch(&reqs) {
        Err(CoreError::Transport(msg)) => {
            assert!(msg.contains("1 of 3"), "{msg}");
        }
        other => panic!("expected a slot-count error, got {other:?}"),
    }
}

/// A client vanishing halfway through a *batch* frame (length prefix says
/// the whole batch, half the bytes arrive, the connection drops) must only
/// end that connection — on the thread-per-connection host AND on the mux
/// host, where the partial frame sits in the reader's reassembly buffer
/// when the socket dies.
#[test]
fn client_vanishing_mid_batch_leaves_both_hosts_serving() {
    let batch = encode_request(&Request::Batch(vec![
        Request::Count,
        Request::Children { pre: 1 },
        Request::EvalMany {
            pres: vec![1, 2, 3],
            point: 17,
        },
    ]));
    for mux_host in [false, true] {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            if mux_host {
                serve_tcp_mux(listener, server, 0).unwrap()
            } else {
                serve_tcp_sharded(listener, server).unwrap()
            }
        });

        // Legacy connection: full length prefix, half the batch, gone.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(&(batch.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&batch[..batch.len() / 2]).unwrap();
        }
        // On the mux host, also vanish mid-batch on an *upgraded*
        // connection: handshake, then a corr-framed batch cut in half.
        if mux_host {
            let mut bad = TcpStream::connect(addr).unwrap();
            let hello = encode_request(&Request::Hello { version: 1 });
            bad.write_all(&(hello.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&hello).unwrap();
            let mut ack = [0u8; 64];
            use std::io::Read;
            let _ = bad.read(&mut ack);
            let mut framed = 42u64.to_le_bytes().to_vec();
            framed.extend_from_slice(&batch);
            bad.write_all(&(framed.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&framed[..framed.len() / 2]).unwrap();
        }

        // A well-behaved batched client is unaffected.
        let mut router = ShardRouter::connect(addr, 2).unwrap();
        let resps = router
            .call_batch(&[Request::Count, Request::Children { pre: 1 }])
            .unwrap();
        assert!(
            matches!(resps[0], Response::Count(3)),
            "mux_host={mux_host}: {resps:?}"
        );
        if mux_host {
            let pool = MuxPool::connect(addr, 2).unwrap();
            let mut t = pool.transport(0);
            assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(2));
        }
        drop(router);
        let mut closer = TcpTransport::connect(addr).unwrap();
        closer.call(&Request::Shutdown).unwrap();
        drop(closer);
        handle.join().unwrap();
    }
}

#[test]
fn shard_count_mismatch_is_refused_at_connect() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 4).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // Too few shards would silently skip partitions; too many would route
    // to nonexistent ones. Both must be refused by the handshake.
    for wrong in [1u32, 2, 8] {
        match ShardRouter::connect(addr, wrong) {
            Err(CoreError::Transport(msg)) => {
                assert!(msg.contains("4 shard"), "{msg}");
            }
            Ok(_) => panic!("shard count {wrong} accepted against a 4-shard host"),
            Err(other) => panic!("{other:?}"),
        }
    }
    // The right count connects and works.
    let mut router = ShardRouter::connect(addr, 4).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_to_a_nonexistent_shard_does_not_stop_the_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // A raw mis-addressed Shutdown gets an error and must NOT stop the host.
    let mut raw = TcpTransport::connect(addr).unwrap();
    match raw
        .call(&Request::ToShard {
            shard: 99,
            req: Box::new(Request::Shutdown),
        })
        .unwrap()
    {
        ssxdb::core::protocol::Response::Err(msg) => assert!(msg.contains("no shard"), "{msg}"),
        other => panic!("{other:?}"),
    }
    // Still serving.
    let mut router = ShardRouter::connect(addr, 2).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    // Close every connection (the host joins its connection threads before
    // returning, so the raw socket must go first), then stop.
    drop(raw);
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_frames_only_drop_their_connection_on_sharded_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let mut router = ShardRouter::connect(addr, 2).unwrap();
    // Poison a separate connection mid-stream.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&33u32.to_le_bytes()).unwrap();
        bad.write_all(&[7; 4]).unwrap();
    }
    // The router's connections keep working.
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
