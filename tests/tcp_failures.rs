//! TCP failure paths must surface as typed `CoreError`s on the client and
//! must not take servers down: truncated frames, absurd length prefixes,
//! and mid-query disconnects.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp, serve_tcp_sharded, CoreError, MapFile, ServerFilter, ShardRouter,
    ShardedServer, TcpTransport,
};
use ssxdb::prg::Seed;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn demo_server() -> ServerFilter {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    ServerFilter::new(out.table, out.ring)
}

/// A fake server that accepts one connection, runs `script` on it, and
/// drops it.
fn fake_server(script: impl FnOnce(TcpStream) + Send + 'static) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        script(stream);
    });
    addr
}

#[test]
fn oversized_length_prefix_is_refused_not_allocated() {
    let addr = fake_server(|mut stream| {
        // Read the request frame, answer with a 4 GiB length prefix.
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // Keep the socket open long enough for the client to read the prefix.
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("refused"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn truncated_response_frame_errors() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        // Promise 100 bytes, deliver 3, hang up.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("read"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn server_disconnect_mid_query_errors() {
    let addr = fake_server(drop);
    let mut t = TcpTransport::connect(addr).unwrap();
    // The server is gone: either the write fails or the read sees EOF —
    // both must be typed errors, never a panic.
    match t.call(&Request::Count) {
        Err(CoreError::Transport(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn malformed_client_frames_do_not_kill_serve_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

    // A client that promises 50 bytes and delivers 5, then vanishes.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&50u32.to_le_bytes()).unwrap();
        bad.write_all(&[9, 9, 9, 9, 9]).unwrap();
    }
    // A client that sends an oversized prefix.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
    }
    // The server must still answer a well-behaved client.
    let mut good = TcpTransport::connect(addr).unwrap();
    match good.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    good.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn shard_count_mismatch_is_refused_at_connect() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 4).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // Too few shards would silently skip partitions; too many would route
    // to nonexistent ones. Both must be refused by the handshake.
    for wrong in [1u32, 2, 8] {
        match ShardRouter::connect(addr, wrong) {
            Err(CoreError::Transport(msg)) => {
                assert!(msg.contains("4 shard"), "{msg}");
            }
            Ok(_) => panic!("shard count {wrong} accepted against a 4-shard host"),
            Err(other) => panic!("{other:?}"),
        }
    }
    // The right count connects and works.
    let mut router = ShardRouter::connect(addr, 4).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_to_a_nonexistent_shard_does_not_stop_the_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // A raw mis-addressed Shutdown gets an error and must NOT stop the host.
    let mut raw = TcpTransport::connect(addr).unwrap();
    match raw
        .call(&Request::ToShard {
            shard: 99,
            req: Box::new(Request::Shutdown),
        })
        .unwrap()
    {
        ssxdb::core::protocol::Response::Err(msg) => assert!(msg.contains("no shard"), "{msg}"),
        other => panic!("{other:?}"),
    }
    // Still serving.
    let mut router = ShardRouter::connect(addr, 2).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    // Close every connection (the host joins its connection threads before
    // returning, so the raw socket must go first), then stop.
    drop(raw);
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_frames_only_drop_their_connection_on_sharded_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let mut router = ShardRouter::connect(addr, 2).unwrap();
    // Poison a separate connection mid-stream.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&33u32.to_le_bytes()).unwrap();
        bad.write_all(&[7; 4]).unwrap();
    }
    // The router's connections keep working.
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
