//! TCP failure paths must surface as typed `CoreError`s on the client and
//! must not take servers down: truncated frames, absurd length prefixes,
//! mid-query disconnects — and, since PR 6, the fleet plane's faults: a
//! party dead at connect, a party dying mid-stream, and a byzantine party
//! serving bit-flipped shares (detected and *named*, never wrong results).

use ssxdb::core::protocol::{encode_request, encode_response, Request, Response};
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, encode_document_fleet, party_server, serve_tcp, serve_tcp_mux,
    serve_tcp_mux_opts, serve_tcp_sharded, CoreError, EncryptedDb, EngineKind, FleetSpec, MapFile,
    MatchRule, MuxHostOptions, MuxPool, PartyHealth, PartyStore, RemoteFleetDb, RemoteMuxFleetDb,
    ResilienceConfig, ServerFilter, ShardRouter, ShardedServer, TcpTransport,
};
use ssxdb::poly::RingCtx;
use ssxdb::prg::Seed;
use ssxdb::store::{Row, Table};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn demo_server() -> ServerFilter {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    ServerFilter::new(out.table, out.ring)
}

/// A fake server that accepts one connection, runs `script` on it, and
/// drops it.
fn fake_server(script: impl FnOnce(TcpStream) + Send + 'static) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        script(stream);
    });
    addr
}

#[test]
fn oversized_length_prefix_is_refused_not_allocated() {
    let addr = fake_server(|mut stream| {
        // Read the request frame, answer with a 4 GiB length prefix.
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // Keep the socket open long enough for the client to read the prefix.
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("refused"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn truncated_response_frame_errors() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 256];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        // Promise 100 bytes, deliver 3, hang up.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[1, 2, 3]).unwrap();
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    match t.call(&Request::Count) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("read"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn server_disconnect_mid_query_errors() {
    let addr = fake_server(drop);
    let mut t = TcpTransport::connect(addr).unwrap();
    // The server is gone: either the write fails or the read sees EOF —
    // both must be typed errors, never a panic.
    match t.call(&Request::Count) {
        Err(CoreError::Transport(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn malformed_client_frames_do_not_kill_serve_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

    // A client that promises 50 bytes and delivers 5, then vanishes.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&50u32.to_le_bytes()).unwrap();
        bad.write_all(&[9, 9, 9, 9, 9]).unwrap();
    }
    // A client that sends an oversized prefix.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
    }
    // The server must still answer a well-behaved client.
    let mut good = TcpTransport::connect(addr).unwrap();
    match good.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    good.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

/// A server dying in the middle of a *batch* response — the frame is
/// promised, half the multi-slot payload arrives, the socket drops — must
/// surface as a typed transport error on `call_batch`, exactly like the
/// single-request disconnects above (which were the only shape tested
/// before PR 5).
#[test]
fn mid_batch_disconnect_errors_cleanly_on_the_client() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 1024];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        // Promise a 400-byte batch response, deliver a plausible prefix
        // (the batch tag and a slot count), vanish mid-frame.
        stream.write_all(&400u32.to_le_bytes()).unwrap();
        stream.write_all(&[9u8]).unwrap();
        stream.write_all(&3u32.to_le_bytes()).unwrap();
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    let reqs = vec![Request::Count, Request::Root, Request::Count];
    match t.call_batch(&reqs) {
        Err(CoreError::Transport(msg)) => assert!(msg.contains("read"), "{msg}"),
        other => panic!("expected a transport error, got {other:?}"),
    }
}

/// A complete frame that answers fewer slots than the batch asked for is a
/// *protocol* failure, not a silent truncation: every slot must be
/// accounted for or the whole batch errors.
#[test]
fn short_batch_response_is_an_error_not_a_truncation() {
    let addr = fake_server(|mut stream| {
        let mut buf = [0u8; 1024];
        use std::io::Read;
        let _ = stream.read(&mut buf);
        let payload = ssxdb::core::protocol::encode_response(&Response::Batch(vec![Response::Ok]));
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    let mut t = TcpTransport::connect(addr).unwrap();
    let reqs = vec![Request::Count, Request::Root, Request::Count];
    match t.call_batch(&reqs) {
        Err(CoreError::Transport(msg)) => {
            assert!(msg.contains("1 of 3"), "{msg}");
        }
        other => panic!("expected a slot-count error, got {other:?}"),
    }
}

/// A client vanishing halfway through a *batch* frame (length prefix says
/// the whole batch, half the bytes arrive, the connection drops) must only
/// end that connection — on the thread-per-connection host AND on the mux
/// host, where the partial frame sits in the reader's reassembly buffer
/// when the socket dies.
#[test]
fn client_vanishing_mid_batch_leaves_both_hosts_serving() {
    let batch = encode_request(&Request::Batch(vec![
        Request::Count,
        Request::Children { pre: 1 },
        Request::EvalMany {
            pres: vec![1, 2, 3],
            point: 17,
        },
    ]));
    for mux_host in [false, true] {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            if mux_host {
                serve_tcp_mux(listener, server, 0).unwrap()
            } else {
                serve_tcp_sharded(listener, server).unwrap()
            }
        });

        // Legacy connection: full length prefix, half the batch, gone.
        {
            let mut bad = TcpStream::connect(addr).unwrap();
            bad.write_all(&(batch.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&batch[..batch.len() / 2]).unwrap();
        }
        // On the mux host, also vanish mid-batch on an *upgraded*
        // connection: handshake, then a corr-framed batch cut in half.
        if mux_host {
            let mut bad = TcpStream::connect(addr).unwrap();
            let hello = encode_request(&Request::Hello { version: 1 });
            bad.write_all(&(hello.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&hello).unwrap();
            let mut ack = [0u8; 64];
            use std::io::Read;
            let _ = bad.read(&mut ack);
            let mut framed = 42u64.to_le_bytes().to_vec();
            framed.extend_from_slice(&batch);
            bad.write_all(&(framed.len() as u32).to_le_bytes()).unwrap();
            bad.write_all(&framed[..framed.len() / 2]).unwrap();
        }

        // A well-behaved batched client is unaffected.
        let mut router = ShardRouter::connect(addr, 2).unwrap();
        let resps = router
            .call_batch(&[Request::Count, Request::Children { pre: 1 }])
            .unwrap();
        assert!(
            matches!(resps[0], Response::Count(3)),
            "mux_host={mux_host}: {resps:?}"
        );
        if mux_host {
            let pool = MuxPool::connect(addr, 2).unwrap();
            let mut t = pool.transport(0);
            assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(2));
        }
        drop(router);
        let mut closer = TcpTransport::connect(addr).unwrap();
        closer.call(&Request::Shutdown).unwrap();
        drop(closer);
        handle.join().unwrap();
    }
}

#[test]
fn shard_count_mismatch_is_refused_at_connect() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 4).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // Too few shards would silently skip partitions; too many would route
    // to nonexistent ones. Both must be refused by the handshake.
    for wrong in [1u32, 2, 8] {
        match ShardRouter::connect(addr, wrong) {
            Err(CoreError::Transport(msg)) => {
                assert!(msg.contains("4 shard"), "{msg}");
            }
            Ok(_) => panic!("shard count {wrong} accepted against a 4-shard host"),
            Err(other) => panic!("{other:?}"),
        }
    }
    // The right count connects and works.
    let mut router = ShardRouter::connect(addr, 4).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_to_a_nonexistent_shard_does_not_stop_the_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    // A raw mis-addressed Shutdown gets an error and must NOT stop the host.
    let mut raw = TcpTransport::connect(addr).unwrap();
    match raw
        .call(&Request::ToShard {
            shard: 99,
            req: Box::new(Request::Shutdown),
        })
        .unwrap()
    {
        ssxdb::core::protocol::Response::Err(msg) => assert!(msg.contains("no shard"), "{msg}"),
        other => panic!("{other:?}"),
    }
    // Still serving.
    let mut router = ShardRouter::connect(addr, 2).unwrap();
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    // Close every connection (the host joins its connection threads before
    // returning, so the raw socket must go first), then stop.
    drop(raw);
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

// ---- fleet fault injection --------------------------------------------------

const FLEET_XML: &str = "<site><a><b/><b/></a><c><a><b/></a></c></site>";

fn fleet_secrets() -> (MapFile, Seed) {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    (map, Seed::from_test_key(21))
}

/// Hosts one party's 2·S-filter server on an ephemeral port; threaded or
/// multiplexed.
fn spawn_party(
    party: PartyStore,
    ring: &RingCtx,
    mux: bool,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ShardedServer>) {
    let server = party_server(party.data, party.mac, ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if mux {
            serve_tcp_mux(listener, server, 0).unwrap()
        } else {
            serve_tcp_sharded(listener, server).unwrap()
        }
    });
    (addr, handle)
}

/// An address nobody listens on (bound, resolved, released).
fn dead_addr() -> std::net::SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

fn stop_host(addr: std::net::SocketAddr) {
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
}

/// One of n parties is dead before the client even connects: `connect_fleet`
/// tolerates it down to the threshold, and every result matches the
/// single-party plane exactly.
#[test]
fn fleet_tolerates_a_party_dead_at_connect() {
    let (map, seed) = fleet_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(FLEET_XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    let mut parties = fleet.parties.into_iter();
    let (a1, h1) = spawn_party(parties.next().unwrap(), &ring, false);
    let _party2_never_started = parties.next().unwrap();
    let (a3, h3) = spawn_party(parties.next().unwrap(), &ring, false);
    let addrs = vec![a1.to_string(), dead_addr().to_string(), a3.to_string()];

    let expected = EncryptedDb::encode(FLEET_XML, map.clone(), seed.clone())
        .unwrap()
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .result;

    let mut db = RemoteFleetDb::connect_fleet(&addrs, 2, map, seed).unwrap();
    let out = db
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap();
    assert_eq!(out.result, expected);

    drop(db);
    stop_host(a1);
    stop_host(a3);
    h1.join().unwrap();
    h3.join().unwrap();
}

/// A party dying *mid-stream* — its host winds down between two queries on
/// a live fleet connection — degrades the fleet to the surviving quorum:
/// the next wave retires the dead leg and the results never change.
#[test]
fn fleet_party_dying_mid_stream_degrades_without_corruption() {
    let (map, seed) = fleet_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(FLEET_XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    // Mux hosts: winding one down closes its sockets even while clients
    // hold connections, which is exactly the abrupt-death shape we want.
    let hosts: Vec<_> = fleet
        .parties
        .into_iter()
        .map(|p| spawn_party(p, &ring, true))
        .collect();
    let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();

    let expected = EncryptedDb::encode(FLEET_XML, map.clone(), seed.clone())
        .unwrap()
        .query("//a/b", EngineKind::Advanced, MatchRule::Equality)
        .unwrap()
        .result;

    let mut db = RemoteMuxFleetDb::connect_fleet_mux(&addrs, 2, map, seed).unwrap();
    let out = db
        .query("//a/b", EngineKind::Advanced, MatchRule::Equality)
        .unwrap();
    assert_eq!(out.result, expected);

    // Kill party 2's host under the live connection.
    stop_host(hosts[1].0);

    // The same fleet connection keeps answering, bit-identically.
    for _ in 0..2 {
        let out = db
            .query("//a/b", EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        assert_eq!(
            out.result, expected,
            "results must survive a mid-stream death"
        );
    }

    drop(db);
    stop_host(hosts[0].0);
    stop_host(hosts[2].0);
    for (i, (_, h)) in hosts.into_iter().enumerate() {
        h.join()
            .unwrap_or_else(|_| panic!("party {} host panicked", i + 1));
    }
}

/// A byzantine party serving bit-flipped shares over TCP: the MAC check
/// catches it, the error *names the party*, and the query never returns
/// wrong results. The fleet then quarantines the liar — the very next
/// query on the same connection succeeds on the honest quorum.
#[test]
fn fleet_byzantine_shares_over_tcp_are_detected_and_named() {
    let (map, seed) = fleet_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let mut fleet = encode_document_fleet(FLEET_XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    // Flip one bit in every polynomial of party 2's data plane.
    let clean = std::mem::replace(&mut fleet.parties[1].data, Table::new(1));
    let mut corrupted = Table::new(clean.poly_len());
    for row in clean.into_rows() {
        let mut poly = row.poly.into_vec();
        poly[0] ^= 0x01;
        corrupted
            .insert(Row {
                loc: row.loc,
                poly: poly.into_boxed_slice(),
            })
            .unwrap();
    }
    fleet.parties[1].data = corrupted;

    let hosts: Vec<_> = fleet
        .parties
        .into_iter()
        .map(|p| spawn_party(p, &ring, false))
        .collect();
    let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();

    let expected = EncryptedDb::encode(FLEET_XML, map.clone(), seed.clone())
        .unwrap()
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .result;

    let mut db = RemoteFleetDb::connect_fleet(&addrs, 2, map.clone(), seed.clone()).unwrap();
    let err = db
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap_err();
    assert!(matches!(err, CoreError::Corrupt(_)), "{err:?}");
    let msg = err.to_string();
    assert!(
        msg.contains("integrity") && msg.contains("party 2"),
        "expected an integrity error naming party 2, got: {msg}"
    );

    // Quarantined: the honest quorum answers the retry correctly.
    let out = db
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap();
    assert_eq!(
        out.result, expected,
        "post-quarantine results must be exact"
    );

    drop(db);
    for (a, _) in &hosts {
        stop_host(*a);
    }
    for (_, h) in hosts {
        h.join().unwrap();
    }
}

#[test]
fn malformed_frames_only_drop_their_connection_on_sharded_host() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 2).unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

    let mut router = ShardRouter::connect(addr, 2).unwrap();
    // Poison a separate connection mid-stream.
    {
        let mut bad = TcpStream::connect(addr).unwrap();
        bad.write_all(&33u32.to_le_bytes()).unwrap();
        bad.write_all(&[7; 4]).unwrap();
    }
    // The router's connections keep working.
    match router.call(&Request::Count).unwrap() {
        ssxdb::core::protocol::Response::Count(3) => {}
        other => panic!("{other:?}"),
    }
    router.call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

// ---- resilience: deadlines and write stalls ---------------------------------

fn read_frame_raw(s: &mut TcpStream) -> Option<Vec<u8>> {
    use std::io::Read;
    let mut len = [0u8; 4];
    s.read_exact(&mut len).ok()?;
    let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut buf).ok()?;
    Some(buf)
}

/// A slow-loris party: every connection gets its first frame answered (the
/// `ShardCount` probe, reported as the fleet layout `Count(2)`), after
/// which the socket swallows frames forever without responding.
fn slow_loris_party() -> (std::net::SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                return;
            }
            let Ok(mut s) = stream else { return };
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                use std::io::Read;
                if read_frame_raw(&mut s).is_none() {
                    return;
                }
                let payload = encode_response(&Response::Count(2));
                let _ = s.write_all(&(payload.len() as u32).to_le_bytes());
                let _ = s.write_all(&payload);
                // Now go silent: read everything, answer nothing.
                let mut buf = [0u8; 4096];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {
                            if flag.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    (addr, stop)
}

/// A slow-loris party — answers the connect probe, then never responds to
/// another frame. With a per-call deadline the wave times that leg out,
/// completes bit-identically from the two honest parties, and the fault on
/// record names the party, its address, and the exceeded deadline.
#[test]
fn fleet_slow_loris_party_is_timed_out_not_waited_for() {
    let (map, seed) = fleet_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet = encode_document_fleet(FLEET_XML, &map, &seed, spec).unwrap();
    let ring = fleet.ring.clone();
    let mut parties = fleet.parties.into_iter();
    let (a1, h1) = spawn_party(parties.next().unwrap(), &ring, false);
    let _party2_shares_stay_offline = parties.next().unwrap();
    let (a3, h3) = spawn_party(parties.next().unwrap(), &ring, false);
    let (loris, stop) = slow_loris_party();
    let addrs = vec![a1.to_string(), loris.to_string(), a3.to_string()];

    let expected = EncryptedDb::encode(FLEET_XML, map.clone(), seed.clone())
        .unwrap()
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .result;

    let mut db = RemoteFleetDb::connect_fleet(&addrs, 2, map, seed).unwrap();
    db.set_resilience(ResilienceConfig {
        deadline: Some(Duration::from_millis(200)),
        retries: 0,
        ..Default::default()
    });
    let t0 = std::time::Instant::now();
    let out = db
        .query("//b", EngineKind::Simple, MatchRule::Equality)
        .unwrap();
    assert_eq!(
        out.result, expected,
        "the honest quorum must answer exactly"
    );
    // Timeouts are bounded: the hung leg costs at most a few deadlines
    // before quarantine, never a multi-second wait per wave.
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "query stalled on the slow-loris party: {:?}",
        t0.elapsed()
    );
    let status = db.party_status();
    let p2 = &status[1];
    assert_eq!(p2.addr, loris.to_string(), "fault must carry the address");
    assert_ne!(p2.health, PartyHealth::Live);
    let fault = p2
        .fault
        .clone()
        .expect("the hung party must have a fault on record");
    assert!(
        fault.contains("deadline exceeded"),
        "fault must name the deadline: {fault}"
    );

    drop(db);
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(loris);
    stop_host(a1);
    stop_host(a3);
    h1.join().unwrap();
    h3.join().unwrap();
}

/// The mux host's write-stall knob (`serve --write-stall-ms`): a client
/// that requests megabytes and never reads a byte is cut off after the
/// configured stall, freeing the (deliberately single) executor for
/// well-behaved clients long before the 5 s default would.
#[test]
fn mux_write_stall_knob_cuts_off_a_non_reading_client() {
    let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let opts = MuxHostOptions {
        workers: 1,
        auto_target: None,
        write_stall: Duration::from_millis(150),
    };
    let handle = std::thread::spawn(move || serve_tcp_mux_opts(listener, server, opts).unwrap());

    // The stalled client: mux handshake, then ~40 MB of polynomial fetches
    // it will never read. Writes are best-effort — the host is expected to
    // kill this connection under us.
    let mut stalled = TcpStream::connect(addr).unwrap();
    let hello = encode_request(&Request::Hello { version: 1 });
    stalled
        .write_all(&(hello.len() as u32).to_le_bytes())
        .unwrap();
    stalled.write_all(&hello).unwrap();
    let mut ack = [0u8; 64];
    use std::io::Read;
    let _ = stalled.read(&mut ack);
    let req = encode_request(&Request::GetPolys {
        pres: vec![1; 40_000],
    });
    for corr in 0..2u64 {
        let mut framed = corr.to_le_bytes().to_vec();
        framed.extend_from_slice(&req);
        let _ = stalled.write_all(&(framed.len() as u32).to_le_bytes());
        let _ = stalled.write_all(&framed);
    }

    // The well-behaved client is served well under the 5 s default: the
    // stalled connection is poisoned after ~150 ms and the executor moves on.
    let t0 = std::time::Instant::now();
    let pool = MuxPool::connect(addr, 1).unwrap();
    let mut good = pool.transport(0);
    assert_eq!(good.call(&Request::Count).unwrap(), Response::Count(3));
    assert!(
        t0.elapsed() < Duration::from_millis(2500),
        "good client waited {:?}; the write-stall knob did not take effect",
        t0.elapsed()
    );

    drop(good);
    drop(pool);
    drop(stalled);
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
    drop(closer);
    handle.join().unwrap();
}
