//! The same query must produce identical results and byte-identical
//! traffic counters over the in-process transport and over a real socket.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp, ClientFilter, Engine, EngineKind, LocalTransport, MapFile,
    MatchRule, ServerFilter, TcpTransport,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    (map, Seed::from_test_key(77))
}

#[test]
fn local_and_tcp_agree() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 6 * 1024,
    });
    let (map, seed) = secrets();
    let out = encode_document(&xml, &map, &seed).unwrap();

    // Two identical servers: one local, one behind TCP.
    let local_server = ServerFilter::new(out.table.clone(), out.ring.clone());
    let tcp_server = ServerFilter::new(out.table, out.ring);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp(listener, tcp_server).unwrap());

    let mut local_client =
        ClientFilter::new(LocalTransport::new(local_server), map.clone(), seed.clone()).unwrap();
    let mut tcp_client =
        ClientFilter::new(TcpTransport::connect(addr).unwrap(), map, seed).unwrap();

    for q in [
        "/site//europe/item",
        "//bidder/date",
        "/site/*/person//city",
    ] {
        let query = parse_query(q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let a = Engine::run(kind, rule, &query, &mut local_client).unwrap();
                let b = Engine::run(kind, rule, &query, &mut tcp_client).unwrap();
                assert_eq!(a.pres(), b.pres(), "{q} {kind:?} {rule:?}");
                // Same protocol work regardless of the wire.
                assert_eq!(
                    a.stats.round_trips, b.stats.round_trips,
                    "{q} {kind:?} {rule:?}"
                );
                assert_eq!(a.stats.bytes_sent, b.stats.bytes_sent, "{q}");
                assert_eq!(a.stats.bytes_received, b.stats.bytes_received, "{q}");
            }
        }
    }

    tcp_client.transport_mut().call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}

#[test]
fn pipelined_cursor_over_tcp() {
    let xml = "<site><regions><africa/><asia/><australia/><europe/><namerica/><samerica/></regions><categories><category><name/><description><text/></description></category></categories><catgraph/><people/><open_auctions/><closed_auctions/></site>";
    let (map, seed) = secrets();
    let out = encode_document(xml, &map, &seed).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = ServerFilter::new(out.table, out.ring);
    let handle = std::thread::spawn(move || serve_tcp(listener, server).unwrap());

    let mut client = ClientFilter::new(TcpTransport::connect(addr).unwrap(), map, seed).unwrap();
    let root = client.root().unwrap().unwrap();
    let before = client.transport_stats().round_trips;
    let cursor = client.open_children_cursor(vec![root.pre]).unwrap();
    let mut count = 0;
    while client.next_node(cursor).unwrap().is_some() {
        count += 1;
    }
    assert_eq!(count, 6, "six site sections");
    let after = client.transport_stats().round_trips;
    // One RTT to open + one per node + one for the exhausted None.
    assert_eq!(after - before, 1 + 6 + 1);

    client.transport_mut().call(&Request::Shutdown).unwrap();
    handle.join().unwrap();
}
