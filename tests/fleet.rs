//! The multi-party fleet end to end, pinning the PR-6 acceptance
//! criteria: fig5 chain results, waves and speculation counters must be
//! *bit-identical* between the single-party in-process plane and a
//! 3-server (t = 2) TCP fleet; killing any single server mid-run must
//! still return correct results; a corrupted share must be detected and
//! attributed to the lying party; and the 3-process `ssxdb` CLI fleet
//! (encode --servers / serve --party / remote --fleet) must round-trip.

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document_fleet, party_server, serve_tcp_mux, serve_tcp_sharded, CoreError, EncryptedDb,
    EngineKind, FleetSpec, MapFile, MatchRule, PartyStore, RemoteFleetDb, RemoteMuxFleetDb,
    ShardedServer, TcpTransport,
};
use ssxdb::poly::RingCtx;
use ssxdb::prg::{Prg, Seed};
use ssxdb::store::{Row, Table};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use std::net::{SocketAddr, TcpListener};

/// The Table-1 chain and the bench harness's exact secrets/document (same
/// as `speculation.rs`), so "fig5" here is the committed figure.
const FIG5_CHAIN: &str = "/site/regions/europe/item/description/parlist/listitem/text/keyword";

fn bench_secrets() -> (MapFile, Seed) {
    (
        MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(0x2005)).unwrap(),
        Seed::from_test_key(0x5D4_2005),
    )
}

fn bench_document() -> String {
    generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: 64 * 1024,
    })
}

fn spawn_party(
    party: PartyStore,
    ring: &RingCtx,
    mux: bool,
) -> (SocketAddr, std::thread::JoinHandle<ShardedServer>) {
    let server = party_server(party.data, party.mac, ring, 1).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        if mux {
            serve_tcp_mux(listener, server, 0).unwrap()
        } else {
            serve_tcp_sharded(listener, server).unwrap()
        }
    });
    (addr, handle)
}

fn stop_host(addr: SocketAddr) {
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
}

/// The headline acceptance criterion: on the fig5 chain, the 3-server
/// (t = 2) TCP fleet answers with the same results, the same wave count
/// and the same speculation counters as the single-party in-process
/// plane — speculation off and on.
#[test]
fn fig5_chain_is_bit_identical_between_single_party_and_tcp_fleet() {
    let xml = bench_document();
    let (map, seed) = bench_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet_out = encode_document_fleet(&xml, &map, &seed, spec).unwrap();
    let ring = fleet_out.ring.clone();
    let hosts: Vec<_> = fleet_out
        .parties
        .into_iter()
        .map(|p| spawn_party(p, &ring, false))
        .collect();
    let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();

    for speculate in [false, true] {
        let mut single = EncryptedDb::encode(&xml, map.clone(), seed.clone()).unwrap();
        single.set_speculation(speculate);
        let mut fleet = RemoteFleetDb::connect_fleet(&addrs, 2, map.clone(), seed.clone()).unwrap();
        fleet.set_speculation(speculate);

        let a = single
            .query(FIG5_CHAIN, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        let b = fleet
            .query(FIG5_CHAIN, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert_eq!(a.result, b.result, "speculate={speculate}: results");
        assert_eq!(
            a.stats.round_trips, b.stats.round_trips,
            "speculate={speculate}: wave count"
        );
        assert_eq!(
            a.stats.speculative_hits, b.stats.speculative_hits,
            "speculate={speculate}: speculative hits"
        );
        assert_eq!(
            a.stats.speculative_wasted, b.stats.speculative_wasted,
            "speculate={speculate}: speculative waste"
        );
        if speculate {
            assert!(b.stats.speculative_hits > 0, "the chain must speculate");
        }
    }

    for (a, _) in &hosts {
        stop_host(*a);
    }
    for (_, h) in hosts {
        h.join().unwrap();
    }
}

/// Killing *any single* server mid-run: for each victim in turn, a live
/// fleet connection keeps answering the fig5 chain correctly after the
/// victim's host winds down under it.
#[test]
fn killing_any_single_server_mid_run_returns_correct_results() {
    let xml = generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: 8 * 1024,
    });
    let (map, seed) = bench_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let query = "/site/regions/europe/item";

    let expected = EncryptedDb::encode(&xml, map.clone(), seed.clone())
        .unwrap()
        .query(query, EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .result;

    for victim in 0..3usize {
        let fleet_out = encode_document_fleet(&xml, &map, &seed, spec).unwrap();
        let ring = fleet_out.ring.clone();
        // Mux hosts wind down their sockets even under live connections —
        // the abrupt-death shape.
        let hosts: Vec<_> = fleet_out
            .parties
            .into_iter()
            .map(|p| spawn_party(p, &ring, true))
            .collect();
        let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();

        let mut db =
            RemoteMuxFleetDb::connect_fleet_mux(&addrs, 2, map.clone(), seed.clone()).unwrap();
        assert_eq!(
            db.query(query, EngineKind::Simple, MatchRule::Equality)
                .unwrap()
                .result,
            expected,
            "victim={victim}: pre-kill"
        );
        stop_host(hosts[victim].0);
        assert_eq!(
            db.query(query, EngineKind::Simple, MatchRule::Equality)
                .unwrap()
                .result,
            expected,
            "victim={victim}: post-kill"
        );
        drop(db);
        for (i, (a, _)) in hosts.iter().enumerate() {
            if i != victim {
                stop_host(*a);
            }
        }
        for (_, h) in hosts {
            h.join().unwrap();
        }
    }
}

/// A corrupted share is *detected and attributed*: the query errors with an
/// integrity failure naming the party, never returns wrong results, and
/// the quarantined fleet answers the retry exactly.
#[test]
fn corrupted_share_is_detected_and_attributed() {
    let xml = generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: 8 * 1024,
    });
    let (map, seed) = bench_secrets();
    let spec = FleetSpec::new(3, 2).unwrap();
    let query = "/site/regions/europe/item";

    let expected = EncryptedDb::encode(&xml, map.clone(), seed.clone())
        .unwrap()
        .query(query, EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .result;

    let mut fleet_out = encode_document_fleet(&xml, &map, &seed, spec).unwrap();
    // Party 3 lies: one flipped bit in every data-share polynomial.
    let clean = std::mem::replace(&mut fleet_out.parties[2].data, Table::new(1));
    let mut corrupted = Table::new(clean.poly_len());
    for row in clean.into_rows() {
        let mut poly = row.poly.into_vec();
        poly[0] ^= 0x01;
        corrupted
            .insert(Row {
                loc: row.loc,
                poly: poly.into_boxed_slice(),
            })
            .unwrap();
    }
    fleet_out.parties[2].data = corrupted;

    let ring = fleet_out.ring.clone();
    let hosts: Vec<_> = fleet_out
        .parties
        .into_iter()
        .map(|p| spawn_party(p, &ring, false))
        .collect();
    let addrs: Vec<String> = hosts.iter().map(|(a, _)| a.to_string()).collect();

    let mut db = RemoteFleetDb::connect_fleet(&addrs, 2, map.clone(), seed.clone()).unwrap();
    let err = db
        .query(query, EngineKind::Simple, MatchRule::Equality)
        .unwrap_err();
    assert!(matches!(err, CoreError::Corrupt(_)), "{err:?}");
    let msg = err.to_string();
    assert!(
        msg.contains("integrity") && msg.contains("party 3"),
        "expected an integrity error naming party 3, got: {msg}"
    );
    assert_eq!(
        db.query(query, EngineKind::Simple, MatchRule::Equality)
            .unwrap()
            .result,
        expected,
        "the honest quorum answers the retry exactly"
    );

    drop(db);
    for (a, _) in &hosts {
        stop_host(*a);
    }
    for (_, h) in hosts {
        h.join().unwrap();
    }
}

/// A fleet party host is *not* repartitionable: its data and MAC planes
/// duplicate `pre`s, so an online reshard (manual or auto) is refused and
/// the 2·S layout survives. Pins the safety net the `--auto-reshard-target`
/// refusal in the CLI relies on.
#[test]
fn party_hosts_refuse_resharding() {
    use ssxdb::core::protocol::Response;
    let xml = "<site><a><b/><b/></a></site>";
    let map = MapFile::sequential(83, 1, &["site", "a", "b"]).unwrap();
    let seed = Seed::from_test_key(21);
    let spec = FleetSpec::new(3, 2).unwrap();
    let fleet_out = encode_document_fleet(xml, &map, &seed, spec).unwrap();
    let ring = fleet_out.ring.clone();
    let party = fleet_out.parties.into_iter().next().unwrap();
    let (addr, handle) = spawn_party(party, &ring, false);

    let mut admin = TcpTransport::connect(addr).unwrap();
    match admin.call(&Request::Reshard { shards: 4 }).unwrap() {
        Response::Err(e) => assert!(e.contains("refused"), "{e}"),
        other => panic!("a party host accepted a reshard: {other:?}"),
    }
    // Layout intact: still 2·S = 2 shard ids.
    assert_eq!(
        admin.call(&Request::ShardCount).unwrap(),
        Response::Count(2)
    );
    admin.call(&Request::Shutdown).unwrap();
    drop(admin);
    handle.join().unwrap();
}

/// The full 3-process CLI fleet: `encode --servers 3 --threshold 2` splits
/// the store, three `serve --party i` processes host it, `remote --fleet`
/// queries it — and the answers match the single-store CLI `query`.
#[test]
fn cli_three_process_fleet_round_trips() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_ssxdb");
    let dir = std::env::temp_dir().join("ssxdb_fleet_cli");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run = |args: &[&str]| {
        let out = Command::new(bin)
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spawn ssxdb");
        assert!(
            out.status.success(),
            "ssxdb {args:?} failed:\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    run(&["keygen", "seed.hex"]);
    run(&["xmark", "--bytes", "4000", "--seed", "5", "doc.xml"]);
    run(&["genmap", "--p", "83", "--doc", "doc.xml", "map.properties"]);
    run(&[
        "encode",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "doc.xml",
        "db.ssxdb",
    ]);
    let split = run(&[
        "encode",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "--servers",
        "3",
        "--threshold",
        "2",
        "doc.xml",
        "db.ssxdb",
    ]);
    assert!(split.contains("any 2 reconstruct"), "{split}");

    let expected = run(&[
        "query",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "db.ssxdb",
        "/site/regions/europe/item",
    ]);

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for i in 1..=3u32 {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let child = Command::new(bin)
            .args([
                "serve",
                "--p",
                "83",
                "--e",
                "1",
                "--addr",
                &addr,
                "--party",
                &i.to_string(),
                &format!("db.party{i}.ssxdb"),
            ])
            .current_dir(&dir)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        servers.push(child);
        addrs.push(addr);
    }
    for addr in &addrs {
        let mut up = false;
        for _ in 0..50 {
            if std::net::TcpStream::connect(addr).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        assert!(up, "party host {addr} did not come up");
    }

    let fleet_out = run(&[
        "remote",
        "--map",
        "map.properties",
        "--seed",
        "seed.hex",
        "--fleet",
        &addrs.join(","),
        "--threshold",
        "2",
        "/site/regions/europe/item",
    ]);
    assert_eq!(
        fleet_out, expected,
        "the CLI fleet answers exactly like the single-store CLI"
    );

    for addr in &addrs {
        let mut t = TcpTransport::connect(addr.as_str()).unwrap();
        t.call(&Request::Shutdown).unwrap();
    }
    for mut child in servers {
        assert!(child.wait().unwrap().success());
    }
}
