//! Scenario tests pinned to specific claims in the paper's text.

use ssxdb::core::{accuracy_percent, EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;

fn db(bytes: usize) -> EncryptedDb {
    let xml = generate(&XmarkConfig {
        seed: 55,
        target_bytes: bytes,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(8)).unwrap();
    EncryptedDb::encode(&xml, map, Seed::from_test_key(55)).unwrap()
}

/// §5.3: "The first slash instructs the search engine to locate the root
/// node (i.e. the only node without a parent (parent=0)). Since the parent
/// field is indexed this is done in constant time."
#[test]
fn root_lookup_is_one_round_trip() {
    let mut db = db(4 * 1024);
    let out = db
        .query("/site", EngineKind::Simple, MatchRule::Containment)
        .unwrap();
    assert_eq!(out.result.len(), 1);
    // Root + 1 batched containment evaluation = 2 round trips.
    assert_eq!(out.stats.round_trips, 2);
    assert_eq!(out.stats.containment_tests, 1);
}

/// §5.3: "The * reduces the workload because no additional filtering is
/// needed."
#[test]
fn star_step_needs_no_evaluations() {
    let mut db = db(4 * 1024);
    let starred = db
        .query("/site/*", EngineKind::Simple, MatchRule::Containment)
        .unwrap();
    // Only the /site test costs evaluations; /* is pure navigation.
    assert_eq!(starred.stats.containment_tests, 1);
    assert_eq!(starred.result.len(), 6, "the six site sections");
}

/// §5.3 (AdvancedQuery): at the root, the engine checks containment of all
/// query names — for /site/*/person//city that is 3 tests: site, person,
/// city.
#[test]
fn advanced_initial_lookahead_counts() {
    let mut db = db(4 * 1024);
    let q = parse_query("/site/*/person//city").unwrap();
    let out = db
        .run(&q, EngineKind::Advanced, MatchRule::Containment)
        .unwrap();
    assert!(
        out.stats.containment_tests >= 3,
        "at least the root look-ahead"
    );
    // And the result is non-empty (the generator guarantees a person with
    // an address).
    assert!(!out.result.is_empty());
}

/// §6.3 / Fig 7: accuracy drops as `//` steps are added; absolute queries
/// reach 100%.
#[test]
fn accuracy_shape_matches_fig7() {
    let mut db = db(24 * 1024);
    let acc = |db: &mut EncryptedDb, q: &str| {
        let e = db
            .query(q, EngineKind::Advanced, MatchRule::Equality)
            .unwrap()
            .result
            .len();
        let c = db
            .query(q, EngineKind::Advanced, MatchRule::Containment)
            .unwrap()
            .result
            .len();
        accuracy_percent(e, c)
    };
    // Absolute chain: every step's containment matches only real tag nodes
    // when the chain ends at leaf level… keyword is a leaf-ish element.
    let deep = acc(
        &mut db,
        "/site/regions/europe/item/description/parlist/listitem/text/keyword",
    );
    // One and two descendant steps.
    let one_desc = acc(&mut db, "/site//europe/item");
    let two_desc = acc(&mut db, "/site//europe//item");
    assert!(deep >= one_desc, "absolute {deep}% >= one-// {one_desc}%");
    assert!(
        one_desc >= two_desc,
        "one-// {one_desc}% >= two-// {two_desc}%"
    );
    assert!((0.0..=100.0).contains(&two_desc));
}

/// Fig 5: on the Table-1 chain queries the two engines differ by at most a
/// constant factor — check the advanced engine is never more than ~4x the
/// simple one on evaluations (the paper shows a near-constant gap).
#[test]
fn fig5_constant_factor_gap() {
    let mut db = db(16 * 1024);
    let chain = "/site/regions/europe/item/description/parlist/listitem/text/keyword";
    let parts: Vec<&str> = chain.trim_start_matches('/').split('/').collect();
    for len in 1..=parts.len() {
        let q = format!("/{}", parts[..len].join("/"));
        let simple = db
            .query(&q, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        let advanced = db
            .query(&q, EngineKind::Advanced, MatchRule::Containment)
            .unwrap();
        assert_eq!(simple.pres(), advanced.pres(), "{q}");
        let s = simple.stats.evaluations().max(1);
        let a = advanced.stats.evaluations().max(1);
        let factor = a as f64 / s as f64;
        assert!(
            factor < 4.0,
            "advanced/simple evaluation factor {factor:.1} too large on {q}"
        );
    }
}

/// §6.1: output is dominated by polynomials; encoding is deterministic for
/// a given seed (bit-identical databases).
#[test]
fn deterministic_encoding() {
    let xml = generate(&XmarkConfig {
        seed: 77,
        target_bytes: 4 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(8)).unwrap();
    let d1 = EncryptedDb::encode(&xml, map.clone(), Seed::from_test_key(9)).unwrap();
    let d2 = EncryptedDb::encode(&xml, map, Seed::from_test_key(9)).unwrap();
    assert_eq!(d1.size_report(), d2.size_report());
}

/// The paper's closing claim (§7): "it is often better to use the equality
/// test to reduce the number of nodes to check, especially for the simple
/// algorithm." Check the mechanism: under equality the frontier after each
/// step is never larger than under containment.
#[test]
fn strictness_shrinks_frontiers() {
    let mut db = db(12 * 1024);
    for q in [
        "/site//europe/item",
        "//bidder/date",
        "/site/*/person//city",
    ] {
        let e = db
            .query(q, EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        let c = db
            .query(q, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert!(e.result.len() <= c.result.len(), "{q}");
    }
}
