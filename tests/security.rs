//! Security smoke tests: what the server stores must look like noise.
//!
//! These are statistical sanity checks on the secret-sharing layer, not a
//! cryptographic proof (the paper's scheme in fact has known weaknesses —
//! see DESIGN.md). They pin down the properties the construction *does*
//! give: each server share alone is uniform, identical plaintext subtrees
//! produce unrelated rows, and reconstruction needs both shares.

use ssxdb::core::{encode_document, MapFile};
use ssxdb::poly::{Packer, RingCtx};
use ssxdb::prg::Seed;

fn encode(xml: &str, seed_key: u64) -> (Vec<Vec<u64>>, RingCtx) {
    let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let seed = Seed::from_test_key(seed_key);
    let out = encode_document(xml, &map, &seed).unwrap();
    let packer = Packer::new(&out.ring);
    let polys = out
        .table
        .rows()
        .iter()
        .map(|r| {
            packer
                .unpack_radix(&out.ring, &r.poly)
                .unwrap()
                .coeffs()
                .to_vec()
        })
        .collect();
    (polys, out.ring)
}

#[test]
fn server_share_coefficients_look_uniform() {
    // Encode a large repetitive document; pool all server-share
    // coefficients and chi-squared them against uniform over F_83.
    let body = "<a><b/><c/></a>".repeat(200);
    let xml = format!("<site>{body}</site>");
    let (polys, ring) = encode(&xml, 1);
    let q = ring.field().order() as usize;
    let mut counts = vec![0u64; q];
    let mut total = 0u64;
    for p in &polys {
        for &c in p {
            counts[c as usize] += 1;
            total += 1;
        }
    }
    let expect = total as f64 / q as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum();
    // df = 82; the 99.99% quantile is ≈ 141. Far looser than that would
    // indicate structure leaking into the shares.
    assert!(
        chi2 < 150.0,
        "server shares not uniform: chi2 = {chi2} over {total} coeffs"
    );
}

#[test]
fn identical_subtrees_store_unrelated_rows() {
    // Two identical <a><b/></a> subtrees: equal plaintext polynomials, but
    // their stored shares must differ (different pre ⇒ different PRG
    // stream).
    let (polys, _) = encode("<site><a><b/></a><a><b/></a></site>", 2);
    // Rows: site(1), a(2), b(3), a(4), b(5) — in insertion (post) order the
    // table holds b,a,b,a,site; find the two 'a' rows by matching pairs.
    // Simplest: no two rows may be equal at all.
    for i in 0..polys.len() {
        for j in (i + 1)..polys.len() {
            assert_ne!(
                polys[i], polys[j],
                "rows {i} and {j} identical — deterministic leak"
            );
        }
    }
}

#[test]
fn different_seeds_decorrelate_everything() {
    let xml = "<site><a><b/><c/></a></site>";
    let (p1, _) = encode(xml, 3);
    let (p2, _) = encode(xml, 4);
    for (i, (a, b)) in p1.iter().zip(&p2).enumerate() {
        assert_ne!(a, b, "row {i} equal across seeds");
    }
}

#[test]
fn shares_xor_plaintext_requires_both() {
    // The difference between the stored server shares of two *identical*
    // subtree polynomials equals the difference of their client shares —
    // i.e. pure PRG output, no plaintext. Verify it doesn't vanish and
    // isn't the plaintext polynomial itself.
    let map = MapFile::sequential(83, 1, &["site", "a"]).unwrap();
    let seed = Seed::from_test_key(9);
    let out = encode_document("<site><a/><a/></site>", &map, &seed).unwrap();
    let packer = Packer::new(&out.ring);
    let rows = out.table.rows();
    // Both <a/> leaves have plaintext polynomial (x - map(a)).
    let a1 = packer.unpack_radix(&out.ring, &rows[0].poly).unwrap();
    let a2 = packer.unpack_radix(&out.ring, &rows[1].poly).unwrap();
    let diff = out.ring.sub(&a1, &a2);
    assert!(!diff.is_zero());
    let plain = out.ring.linear(map.value("a").unwrap());
    assert_ne!(diff, plain);
}

#[test]
fn structure_is_the_only_public_information() {
    // The locations (pre/post/parent) are identical across seeds and maps —
    // the scheme deliberately reveals tree shape, nothing else varies.
    let xml = "<site><a><b/></a><c/></site>";
    let map1 = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
    let map2 = MapFile::sequential(83, 1, &["c", "b", "a", "site"]).unwrap(); // different values
    let t1 = encode_document(xml, &map1, &Seed::from_test_key(1))
        .unwrap()
        .table;
    let t2 = encode_document(xml, &map2, &Seed::from_test_key(2))
        .unwrap()
        .table;
    let locs1: Vec<_> = t1.rows().iter().map(|r| r.loc).collect();
    let locs2: Vec<_> = t2.rows().iter().map(|r| r.loc).collect();
    assert_eq!(locs1, locs2, "structure must be independent of the secrets");
}
