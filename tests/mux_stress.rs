//! The multiplexed transport under concurrency stress: N clients sharing
//! one [`MuxPool`] (one socket per shard) must each see exactly the answers
//! the single-client plaintext oracle (`reference.rs`) predicts, for every
//! engine × rule; wave and speculation counters must be invariant between
//! the threaded and mux transports; a reshard racing the pool must surface
//! as explicit errors, never wrong answers; and garbage on a neighbouring
//! connection must not confuse anyone's completion slots.
//!
//! CI runs this under `--release` with `SSXDB_STRESS_MAX_CLIENTS=8` to
//! bound the biggest fan-out; unbounded local runs go to 16.

use ssxdb::core::protocol::{Request, Response};
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, reference_eval, serve_tcp_mux, serve_tcp_sharded, ClientFilter, EncryptedDb,
    Engine, EngineKind, MapFile, MatchRule, MuxPool, RemoteMuxDb, ShardRouter, ShardedServer,
    TcpTransport,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xml::Document;
use ssxdb::xpath::{parse_query, Query};
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn secrets() -> (MapFile, Seed) {
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(5)).unwrap();
    (map, Seed::from_test_key(77))
}

const QUERIES: [&str; 4] = [
    "/site//europe/item",
    "//bidder/date",
    "/site/*/person//city",
    "/site/open_auctions/open_auction/../closed_auctions",
];

/// Upper bound on the client fan-out, overridable by
/// `SSXDB_STRESS_MAX_CLIENTS` (CI bounds it to 8).
fn max_clients() -> usize {
    std::env::var("SSXDB_STRESS_MAX_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

fn spawn_mux_host(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
    shards: u32,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ShardedServer>) {
    let out = encode_document(xml, map, seed).unwrap();
    let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_tcp_mux(listener, server, 0).unwrap());
    (addr, handle)
}

fn shutdown_mux(addr: std::net::SocketAddr) {
    let mut closer = TcpTransport::connect(addr).unwrap();
    closer.call(&Request::Shutdown).unwrap();
}

/// The plaintext ground truth for every query × rule on `xml`.
fn oracle(xml: &str, queries: &[Query]) -> Vec<(usize, MatchRule, Vec<u32>)> {
    let doc = Document::parse(xml).unwrap();
    let mut out = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            out.push((i, rule, reference_eval(&doc, q, rule).unwrap()));
        }
    }
    out
}

/// N ∈ {2, 8, 16} concurrent clients on one shared pool, every engine ×
/// rule × query, each result compared against the single-client plaintext
/// oracle. The pool must also end with zero stray correlation ids — no
/// response ever resolved a slot it was not addressed to.
#[test]
fn concurrent_mux_clients_match_the_plaintext_oracle() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 6 * 1024,
    });
    let (map, seed) = secrets();
    let queries: Vec<Query> = QUERIES
        .iter()
        .map(|q| parse_query(q).unwrap().expand_text_predicates())
        .collect();
    let truth = oracle(&xml, &queries);
    let cap = max_clients();
    for shards in [1u32, 2] {
        let (addr, handle) = spawn_mux_host(&xml, &map, &seed, shards);
        for clients in [2usize, 8, 16] {
            if clients > cap {
                continue;
            }
            let pool = MuxPool::connect(addr, shards).unwrap();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let pool = &pool;
                    let queries = &queries;
                    let truth = &truth;
                    let (map, seed) = (map.clone(), seed.clone());
                    scope.spawn(move || {
                        let mut db = RemoteMuxDb::connect_mux(pool, map, seed).unwrap();
                        // Half the clients speculate: the overlap must stay
                        // invisible under interleaving too.
                        db.set_speculation(c % 2 == 1);
                        for kind in [EngineKind::Simple, EngineKind::Advanced] {
                            for (i, rule, want) in truth {
                                let got = db.run(&queries[*i], kind, *rule).unwrap();
                                assert_eq!(
                                    got.pres(),
                                    *want,
                                    "client {c}/{clients} S={shards} q#{i} {kind:?} {rule:?}"
                                );
                            }
                        }
                    });
                }
            });
            assert_eq!(
                pool.stray_responses(),
                0,
                "S={shards} N={clients}: a response resolved no slot"
            );
        }
        shutdown_mux(addr);
        handle.join().unwrap();
    }
}

/// The acceptance criterion pinned end to end: on the fig5 chain, results
/// are **bit-identical** across the local plane, the thread-per-connection
/// TCP host and the mux TCP host for S ∈ {1, 2, 4} — and the wave count,
/// `speculative_hits` and `speculative_wasted` are invariant too, with
/// speculation off and on. The mux transport may change how frames travel;
/// it must not change how many waves the router runs or what it prefetches.
#[test]
fn waves_and_speculation_counters_invariant_across_transports() {
    const FIG5_CHAIN: &str = "/site/regions/europe/item/description/parlist/listitem/text/keyword";
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(0x2005)).unwrap();
    let seed = Seed::from_test_key(0x5D4_2005);
    let xml = generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: 64 * 1024,
    });
    let query = parse_query(FIG5_CHAIN).unwrap().expand_text_predicates();
    for shards in [1u32, 2, 4] {
        // Threaded host.
        let out = encode_document(&xml, &map, &seed).unwrap();
        let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tcp_addr = listener.local_addr().unwrap();
        let tcp_handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());
        // Mux host.
        let (mux_addr, mux_handle) = spawn_mux_host(&xml, &map, &seed, shards);

        for speculate in [false, true] {
            // Local baseline.
            let mut local =
                EncryptedDb::encode_sharded(&xml, map.clone(), seed.clone(), shards).unwrap();
            local.set_speculation(speculate);
            let want = local
                .run(&query, EngineKind::Simple, MatchRule::Containment)
                .unwrap();

            let mut tcp_router = ShardRouter::connect(tcp_addr, shards).unwrap();
            tcp_router.set_speculation(speculate);
            let mut tcp_client = ClientFilter::new(tcp_router, map.clone(), seed.clone()).unwrap();
            let threaded = Engine::run(
                EngineKind::Simple,
                MatchRule::Containment,
                &query,
                &mut tcp_client,
            )
            .unwrap();

            let pool = MuxPool::connect(mux_addr, shards).unwrap();
            let mut mux_router = ShardRouter::mux(&pool);
            mux_router.set_speculation(speculate);
            let mut mux_client = ClientFilter::new(mux_router, map.clone(), seed.clone()).unwrap();
            let muxed = Engine::run(
                EngineKind::Simple,
                MatchRule::Containment,
                &query,
                &mut mux_client,
            )
            .unwrap();

            let label = format!("S={shards} speculate={speculate}");
            assert_eq!(want.pres(), threaded.pres(), "{label}: threaded results");
            assert_eq!(want.pres(), muxed.pres(), "{label}: mux results");
            for (name, got) in [("threaded", &threaded), ("mux", &muxed)] {
                assert_eq!(
                    got.stats.round_trips, want.stats.round_trips,
                    "{label}: {name} must not add or remove waves"
                );
                assert_eq!(
                    got.stats.speculative_hits, want.stats.speculative_hits,
                    "{label}: {name} speculative hits"
                );
                assert_eq!(
                    got.stats.speculative_wasted, want.stats.speculative_wasted,
                    "{label}: {name} speculative waste"
                );
                assert_eq!(
                    got.stats.evaluations(),
                    want.stats.evaluations(),
                    "{label}: {name} cryptographic work"
                );
            }
            assert_eq!(pool.stray_responses(), 0, "{label}");
            // Release the threaded connections so the host scope can drain.
            drop(tcp_client);
        }
        let mut closer = TcpTransport::connect(tcp_addr).unwrap();
        closer.call(&Request::Shutdown).unwrap();
        drop(closer);
        tcp_handle.join().unwrap();
        shutdown_mux(mux_addr);
        mux_handle.join().unwrap();
    }
}

/// A reshard that keeps the shard count fences the pooled sockets — and
/// the pool must heal *transparently*: the fenced request is replayed on a
/// fresh connection, results stay exactly correct, and no error reaches
/// the caller. A reshard to a different count must still surface (the
/// pool's routing topology is wrong).
#[test]
fn mux_pool_heals_a_same_count_reshard_transparently() {
    let xml = generate(&XmarkConfig {
        seed: 23,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let (addr, handle) = spawn_mux_host(&xml, &map, &seed, 2);
    let query = parse_query("//bidder/date")
        .unwrap()
        .expand_text_predicates();

    let pool = MuxPool::connect(addr, 2).unwrap();
    let mut db = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone()).unwrap();
    let expected = db
        .run(&query, EngineKind::Simple, MatchRule::Containment)
        .unwrap()
        .pres();

    // Reshard 2 → 2 over a legacy admin connection: rows repartition in
    // place, the generation bumps, and every pooled socket is fenced.
    let mut admin = TcpTransport::connect(addr).unwrap();
    assert_eq!(
        admin.call(&Request::Reshard { shards: 2 }).unwrap(),
        Response::Ok
    );

    // The same pool keeps answering — the first fenced frame heals the
    // slot, the wave replays, and the results are bit-identical. Repeat a
    // few times (and once through a *new* transport on the same pool) to
    // cover both the healing path and the already-healed fast path.
    for _ in 0..3 {
        let out = db
            .run(&query, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert_eq!(out.pres(), expected);
    }
    let mut fresh = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone()).unwrap();
    assert_eq!(
        fresh
            .run(&query, EngineKind::Advanced, MatchRule::Equality)
            .unwrap()
            .pres(),
        {
            let doc = Document::parse(&xml).unwrap();
            reference_eval(&doc, &query, MatchRule::Equality).unwrap()
        }
    );

    // A count-changing reshard is *not* healable: the replay handshake is
    // refused (count mismatch) and the error surfaces.
    assert_eq!(
        admin.call(&Request::Reshard { shards: 3 }).unwrap(),
        Response::Ok
    );
    let err = db
        .run(&query, EngineKind::Simple, MatchRule::Containment)
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("3 shard(s)") || err.contains("reconnect"),
        "expected a shard-count error after 2→3 reshard, got: {err}"
    );

    shutdown_mux(addr);
    handle.join().unwrap();
}

/// Online reshards racing a shared mux pool: a query that completes is
/// exactly correct; a query interrupted by the fence errors explicitly
/// ("reconnect"), never answers wrong, and a fresh pool under the new
/// count always works. Mirrors the PR-4 threaded-host race, now with the
/// fence observed through multiplexed connections.
#[test]
fn reshard_races_the_mux_pool_safely() {
    let xml = generate(&XmarkConfig {
        seed: 14,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let (addr, handle) = spawn_mux_host(&xml, &map, &seed, 1);
    let query = parse_query("//bidder/date")
        .unwrap()
        .expand_text_predicates();

    let expected = {
        let pool = MuxPool::connect(addr, 1).unwrap();
        let mut db = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone()).unwrap();
        db.run(&query, EngineKind::Simple, MatchRule::Containment)
            .unwrap()
            .pres()
    };

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (map, seed) = (map.clone(), seed.clone());
            let query = query.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                for _ in 0..6 {
                    // The host may repartition at any moment; probe the
                    // current count over a legacy connection and pool up
                    // fresh under it.
                    let Ok(mut probe) = TcpTransport::connect(addr) else {
                        continue;
                    };
                    let shards = match probe.call(&Request::ShardCount) {
                        Ok(Response::Count(n)) => n as u32,
                        _ => continue,
                    };
                    let Ok(pool) = MuxPool::connect(addr, shards) else {
                        continue; // count changed between probe and connect
                    };
                    let Ok(mut db) = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone())
                    else {
                        continue;
                    };
                    // The invariant: a *completed* query is exactly correct;
                    // a reshard mid-query surfaces as an error, which is fine.
                    if let Ok(out) = db.run(&query, EngineKind::Simple, MatchRule::Containment) {
                        assert_eq!(out.pres(), expected);
                    }
                }
            });
        }
        let mut admin = TcpTransport::connect(addr).unwrap();
        for shards in [2u32, 4, 3, 1, 2] {
            assert_eq!(
                admin.call(&Request::Reshard { shards }).unwrap(),
                Response::Ok
            );
        }
    });

    // A pool that predates the last reshard is fenced: explicit errors,
    // never silent partial answers.
    shutdown_mux(addr);
    let server = handle.join().unwrap();
    assert_eq!(server.spec().shards(), 2);
}

/// A rogue connection spraying garbage — random bytes, oversized prefixes,
/// corr envelopes on an un-upgraded connection, half frames — must not
/// perturb concurrent well-behaved mux clients on the same host, and no
/// response may ever land in a slot it was not addressed to.
#[test]
fn rogue_frames_do_not_confuse_concurrent_mux_clients() {
    let xml = generate(&XmarkConfig {
        seed: 10,
        target_bytes: 4 * 1024,
    });
    let (map, seed) = secrets();
    let (addr, handle) = spawn_mux_host(&xml, &map, &seed, 2);
    let query = parse_query("//bidder/date")
        .unwrap()
        .expand_text_predicates();
    let pool = MuxPool::connect(addr, 2).unwrap();
    let expected = {
        let mut db = RemoteMuxDb::connect_mux(&pool, map.clone(), seed.clone()).unwrap();
        db.run(&query, EngineKind::Simple, MatchRule::Containment)
            .unwrap()
            .pres()
    };

    std::thread::scope(|scope| {
        // Good clients hammer the pool…
        for _ in 0..3 {
            let pool = &pool;
            let (map, seed) = (map.clone(), seed.clone());
            let query = query.clone();
            let expected = expected.clone();
            scope.spawn(move || {
                let mut db = RemoteMuxDb::connect_mux(pool, map, seed).unwrap();
                for _ in 0..8 {
                    let out = db
                        .run(&query, EngineKind::Simple, MatchRule::Containment)
                        .unwrap();
                    assert_eq!(out.pres(), expected);
                }
            });
        }
        // …while rogues poison their own connections.
        scope.spawn(move || {
            let mut prg = Prg::from_u64(99);
            for round in 0..12u64 {
                let Ok(mut bad) = TcpStream::connect(addr) else {
                    continue;
                };
                match round % 4 {
                    0 => {
                        // Random bytes, no framing at all.
                        let junk: Vec<u8> = (0..64).map(|_| prg.next_u64() as u8).collect();
                        let _ = bad.write_all(&junk);
                    }
                    1 => {
                        // An oversized length prefix.
                        let _ = bad.write_all(&u32::MAX.to_le_bytes());
                    }
                    2 => {
                        // A mux-looking corr frame without the handshake:
                        // parsed as a legacy frame, answered with an error
                        // on the rogue's own connection only.
                        let mut frame = 7u64.to_le_bytes().to_vec();
                        frame.extend_from_slice(&[0xAB; 9]);
                        let _ = bad.write_all(&(frame.len() as u32).to_le_bytes());
                        let _ = bad.write_all(&frame);
                    }
                    _ => {
                        // A half-delivered frame.
                        let _ = bad.write_all(&40u32.to_le_bytes());
                        let _ = bad.write_all(&[1, 2, 3]);
                    }
                }
                // Drop mid-stream.
            }
        });
    });
    assert_eq!(pool.stray_responses(), 0, "slots stayed uncontaminated");
    shutdown_mux(addr);
    handle.join().unwrap();
}
