//! Hand-crafted fixtures pinning down the engines' step semantics —
//! the cases where XPath subtleties hide.

use ssxdb::core::{EncryptedDb, EngineKind, FetchMode, MapFile, MatchRule, SimpleEngine};
use ssxdb::prg::Seed;
use ssxdb::xpath::parse_query;

const TAGS: [&str; 6] = ["r", "a", "b", "c", "d", "e"];

fn db(xml: &str) -> EncryptedDb {
    let map = MapFile::sequential(83, 1, &TAGS).unwrap();
    EncryptedDb::encode(xml, map, Seed::from_test_key(777)).unwrap()
}

fn eq(db: &mut EncryptedDb, q: &str) -> Vec<u32> {
    let a = db
        .query(q, EngineKind::Simple, MatchRule::Equality)
        .unwrap()
        .pres();
    let b = db
        .query(q, EngineKind::Advanced, MatchRule::Equality)
        .unwrap()
        .pres();
    assert_eq!(a, b, "engines disagree on {q}");
    a
}

#[test]
fn descendant_at_query_start_includes_root_element() {
    // //r from the document root can match the root element itself.
    let mut db = db("<r><a/></r>");
    assert_eq!(eq(&mut db, "//r"), vec![1]);
    assert_eq!(eq(&mut db, "//a"), vec![2]);
}

#[test]
fn descendant_mid_query_excludes_self() {
    // /r//r: the root is not its own descendant; no nested r => empty.
    let mut flat = db("<r><a/></r>");
    assert_eq!(eq(&mut flat, "/r//r"), Vec::<u32>::new());
    // With a nested r it matches only the inner one.
    let mut nested = db("<r><a><r/></a></r>");
    assert_eq!(eq(&mut nested, "/r//r"), vec![3]);
}

#[test]
fn repeated_tags_along_a_path() {
    // a/a/a chains: each step must advance exactly one level.
    let mut db = db("<r><a><a><a/></a></a></r>");
    assert_eq!(eq(&mut db, "/r/a"), vec![2]);
    assert_eq!(eq(&mut db, "/r/a/a"), vec![3]);
    assert_eq!(eq(&mut db, "/r/a/a/a"), vec![4]);
    assert_eq!(eq(&mut db, "/r/a/a/a/a"), Vec::<u32>::new());
    assert_eq!(
        eq(&mut db, "//a//a"),
        vec![3, 4],
        "all a's strictly below another a"
    );
}

#[test]
fn parent_steps_can_climb_and_descend_again() {
    //      r(1)
    //      ├ a(2) ─ c(3)
    //      └ b(4) ─ d(5)
    let mut db = db("<r><a><c/></a><b><d/></b></r>");
    assert_eq!(eq(&mut db, "/r/a/../b"), vec![4]);
    assert_eq!(eq(&mut db, "/r/a/c/../../b/d"), vec![5]);
    // Parent of multiple frontier nodes dedups.
    assert_eq!(eq(&mut db, "//c/.."), vec![2]);
    assert_eq!(
        eq(&mut db, "/r/*/../*"),
        vec![2, 4],
        "climb to r, expand again"
    );
}

#[test]
fn star_chains_enumerate_levels() {
    let mut db = db("<r><a><c/></a><b><d/><e/></b></r>");
    assert_eq!(eq(&mut db, "/*"), vec![1]);
    assert_eq!(eq(&mut db, "/*/*"), vec![2, 4]);
    assert_eq!(eq(&mut db, "/*/*/*"), vec![3, 5, 6]);
    assert_eq!(eq(&mut db, "/*/*/*/*"), Vec::<u32>::new());
    // //* = every element including the root.
    assert_eq!(eq(&mut db, "//*"), vec![1, 2, 3, 4, 5, 6]);
}

#[test]
fn overlapping_descendant_frontiers_dedup() {
    // //a selects nested a's whose descendant sets overlap; //a//c must not
    // report duplicates.
    let mut db = db("<r><a><a><c/></a></a></r>");
    assert_eq!(eq(&mut db, "//a//c"), vec![4]);
}

#[test]
fn containment_on_chains_counts_ancestors() {
    // Under containment, /r/a returns every child of r containing an a —
    // including b, which only wraps one.
    let mut db = db("<r><a/><b><a/></b><c/></r>");
    let c = db
        .query("/r/a", EngineKind::Simple, MatchRule::Containment)
        .unwrap()
        .pres();
    assert_eq!(c, vec![2, 3]);
    let e = eq(&mut db, "/r/a");
    assert_eq!(e, vec![2]);
}

#[test]
fn pipelined_mode_agrees_on_fixtures() {
    let xml = "<r><a><c/></a><b><d/><e/></b><a><d/></a></r>";
    for q in ["/r/a", "//d", "/r/*/d", "/r/b/../a/d", "//a//d"] {
        let mut d1 = db(xml);
        let query = parse_query(q).unwrap();
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            let bulk = SimpleEngine::run_with_mode(&query, rule, d1.client_mut(), FetchMode::Bulk)
                .unwrap();
            let piped =
                SimpleEngine::run_with_mode(&query, rule, d1.client_mut(), FetchMode::Pipelined)
                    .unwrap();
            assert_eq!(bulk.pres(), piped.pres(), "{q} {rule:?}");
        }
    }
}

#[test]
fn stats_invariants() {
    let mut db = db("<r><a><c/></a><b><d/><e/></b></r>");
    // Containment-only queries: client and server evaluations match 1:1.
    for q in ["/r/a", "//d", "/r/*/c"] {
        let out = db
            .query(q, EngineKind::Simple, MatchRule::Containment)
            .unwrap();
        assert_eq!(out.stats.client_evals, out.stats.server_evals, "{q}");
        assert_eq!(out.stats.equality_tests, 0, "{q}");
        assert_eq!(out.stats.polys_fetched, 0, "{q}");
        assert_eq!(
            out.stats.evaluations(),
            out.stats.client_evals + out.stats.server_evals
        );
    }
    // Equality queries fetch at least one polynomial per test.
    let out = db
        .query("/r/a", EngineKind::Simple, MatchRule::Equality)
        .unwrap();
    assert!(out.stats.polys_fetched >= out.stats.equality_tests);
}

#[test]
fn results_are_sorted_and_unique() {
    let mut db = db("<r><a><d/></a><b><d/></b><a><d/></a></r>");
    for q in ["//d", "/r/*/d", "//a/d"] {
        let pres = eq(&mut db, q);
        let mut sorted = pres.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pres, sorted, "{q} not in sorted/unique document order");
    }
}
