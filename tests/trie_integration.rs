//! Trie-enhanced text search, end to end: document transformation, combined
//! tag+alphabet map, encrypted execution, checked against a plaintext word
//! oracle.

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::Seed;
use ssxdb::trie::{split_words, transform_document, trie_alphabet, TrieMode};
use ssxdb::xml::Document;

const TAGS: [&str; 4] = ["people", "person", "name", "note"];

fn build(xml: &str, mode: TrieMode) -> (Document, EncryptedDb) {
    let doc = Document::parse(xml).unwrap();
    let trie_doc = transform_document(&doc, mode);
    let mut names: Vec<String> = TAGS.iter().map(|s| s.to_string()).collect();
    names.extend(trie_alphabet());
    let map = MapFile::sequential(131, 1, &names).unwrap();
    let db = EncryptedDb::encode_doc(&trie_doc, map, Seed::from_test_key(2)).unwrap();
    (doc, db)
}

/// Plaintext oracle: does any text node under a `tag` element contain a
/// word starting with `prefix`?
fn oracle_contains(doc: &Document, tag: &str, prefix: &str) -> bool {
    doc.descendants(doc.root()).into_iter().any(|id| {
        doc.name(id) == Some(tag)
            && doc
                .descendants(id)
                .into_iter()
                .filter_map(|d| doc.text(d))
                .any(|t| {
                    split_words(t)
                        .iter()
                        .any(|w| w.starts_with(&prefix.to_lowercase()))
                })
    })
}

#[test]
fn contains_queries_match_oracle() {
    let xml = "<people>\
        <person><name>Joan Johnson</name><note>fast shipping</note></person>\
        <person><name>John Smith</name><note>slow boat</note></person>\
    </people>";
    let (doc, mut db) = build(xml, TrieMode::Compressed);
    for (word, _expect_hits) in [
        ("Joan", 1),
        ("John", 2),
        ("jo", 2),
        ("smith", 1),
        ("zebra", 0),
        ("ship", 1),
    ] {
        let q = format!(r#"//name[contains(text(), "{word}")]"#);
        let out = db
            .query(&q, EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        let found = !out.result.is_empty();
        assert_eq!(
            found,
            oracle_contains(&doc, "name", word),
            "query {q} disagreed with oracle"
        );
    }
}

#[test]
fn whole_word_vs_prefix() {
    let xml = "<people><person><name>Anna Annabelle</name></person></people>";
    let (_, mut db) = build(xml, TrieMode::Compressed);
    // Prefix "anna" matches both words; whole word only matches "anna".
    let prefix = db
        .query(
            r#"//name[contains(text(), "anna")]"#,
            EngineKind::Simple,
            MatchRule::Equality,
        )
        .unwrap();
    assert!(!prefix.result.is_empty());
    let whole = db
        .query(
            r#"//name[word(text(), "anna")]"#,
            EngineKind::Simple,
            MatchRule::Equality,
        )
        .unwrap();
    assert!(!whole.result.is_empty());
    let whole_miss = db
        .query(
            r#"//name[word(text(), "annab")]"#,
            EngineKind::Simple,
            MatchRule::Equality,
        )
        .unwrap();
    assert!(whole_miss.result.is_empty(), "annab is not a whole word");
}

#[test]
fn compressed_and_uncompressed_answer_alike() {
    let xml = "<people><person><note>alpha beta alpha gamma</note></person></people>";
    let (_, mut dbc) = build(xml, TrieMode::Compressed);
    let (_, mut dbu) = build(xml, TrieMode::Uncompressed);
    for word in ["alpha", "beta", "gamma", "delta", "alp"] {
        let q = format!(r#"//note[contains(text(), "{word}")]"#);
        let c = dbc
            .query(&q, EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        let u = dbu
            .query(&q, EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        assert_eq!(
            c.result.is_empty(),
            u.result.is_empty(),
            "modes disagree on {word}"
        );
    }
}

#[test]
fn uncompressed_preserves_multiplicity_in_size() {
    let xml = "<people><note>dup dup dup dup</note></people>";
    let doc = Document::parse(xml).unwrap();
    let compressed = transform_document(&doc, TrieMode::Compressed);
    let uncompressed = transform_document(&doc, TrieMode::Uncompressed);
    assert!(uncompressed.element_count() > compressed.element_count());
    // Compressed: root + note? (root=people, note child) + d,u,p + ⊥.
    assert_eq!(compressed.element_count(), 2 + 3 + 1);
    assert_eq!(uncompressed.element_count(), 2 + 4 * 4);
}

#[test]
fn tag_queries_still_work_on_trie_documents() {
    let xml = "<people><person><name>Joan</name></person></people>";
    let (_, mut db) = build(xml, TrieMode::Compressed);
    let out = db
        .query(
            "/people/person/name",
            EngineKind::Simple,
            MatchRule::Equality,
        )
        .unwrap();
    assert_eq!(out.result.len(), 1);
}
