//! Quickstart: the paper's figure-1 walkthrough, end to end.
//!
//! Encodes a tiny document over `F_5` exactly like the paper's running
//! example, shows the polynomial encoding, the client/server split, and a
//! few queries under both matching rules.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::poly::RingCtx;
use ssxdb::prg::Seed;

fn main() {
    // The paper's example document (fig 1a): root c with subtrees.
    let xml = "<c><b><a/><b/></b><c><a/></c></c>";
    println!("plaintext document:\n  {xml}\n");

    // Figure 1(b): map a→2, b→1, c→3 in F_5.
    let map = MapFile::from_property_string("# p = 5\n# e = 1\na = 2\nb = 1\nc = 3\n").unwrap();
    println!("secret map file:\n{}", indent(&map.to_property_string()));

    // Figure 1(d): the reduced node polynomials, computed openly here to
    // show what the scheme hides.
    let ring = RingCtx::new(5, 1).unwrap();
    let leaf_a = ring.linear(2);
    println!("f(a-leaf)         = {leaf_a:?}  (x - map(a))");
    let b_inner = ring.mul(&ring.mul(&ring.linear(2), &ring.linear(1)), &ring.linear(1));
    println!("f(b with a,b)     = {b_inner:?}");

    // Encode: the server receives only its shares + tree structure.
    let seed = Seed::from_test_key(2005);
    let mut db = EncryptedDb::encode(xml, map, seed).unwrap();
    println!(
        "\nencoded {} nodes; server stores {} bytes of shares + structure",
        db.node_count(),
        db.size_report().data_bytes()
    );

    // Queries under both rules and both engines.
    for (query, why) in [
        ("/c/b/a", "absolute path"),
        ("//a", "all a-nodes anywhere"),
        ("/c/c/a", "the a under the second c"),
        ("/c/*/a", "wildcard step"),
    ] {
        println!("\nquery {query}   ({why})");
        for rule in [MatchRule::Containment, MatchRule::Equality] {
            for kind in [EngineKind::Simple, EngineKind::Advanced] {
                let out = db.query(query, kind, rule).unwrap();
                println!(
                    "  {:>11?}/{:<8?} -> nodes {:?}  ({} evaluations, {} round trips)",
                    rule,
                    kind,
                    out.pres(),
                    out.stats.evaluations(),
                    out.stats.round_trips
                );
            }
        }
    }

    println!("\nNote how the containment rule may return extra ancestors —");
    println!("that is the paper's accuracy trade-off (Fig 7).");
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
