//! Auction-database search: the paper's §6 setting in miniature.
//!
//! Generates an XMark-style auction document, encrypts it with the 77-tag
//! DTD map over `F_83` (the paper's parameters), and runs the Table-2
//! queries with every engine × rule combination, printing a cost matrix.
//!
//! ```text
//! cargo run --release --example auction_search
//! ```

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};

fn main() {
    // A ~96 KB auction database, deterministic.
    let xml = generate(&XmarkConfig {
        seed: 20050902,
        target_bytes: 96 * 1024,
    });
    println!("generated XMark-style document: {} bytes", xml.len());

    // Client secrets: random injective map over F_83 + a seed.
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(99)).unwrap();
    let seed = Seed::from_test_key(0x5d4);
    let mut db = EncryptedDb::encode(&xml, map, seed).unwrap();
    let enc = db.encode_stats();
    println!(
        "encoded {} elements in {:?} (max depth {})",
        enc.elements, enc.elapsed, enc.max_depth
    );
    let sizes = db.size_report();
    println!(
        "server storage: {} KB data (+{} KB indices); structure = {:.1}% of output\n",
        sizes.data_bytes() / 1024,
        sizes.index_bytes / 1024,
        100.0 * sizes.structure_fraction()
    );

    // Timing runs skip the extra O(n^2) verification multiply.
    db.set_verify_equality(false);

    // The paper's Table 2.
    let queries = [
        "/site//europe/item",
        "/site//europe//item",
        "/site/*/person//city",
        "/*/*/open_auction/bidder/date",
        "//bidder/date",
    ];

    println!(
        "{:<32} {:>22} {:>22} {:>22} {:>22}",
        "query", "non-strict/simple", "strict/simple", "non-strict/advanced", "strict/advanced"
    );
    for q in queries {
        print!("{q:<32}");
        for (kind, rule) in [
            (EngineKind::Simple, MatchRule::Containment),
            (EngineKind::Simple, MatchRule::Equality),
            (EngineKind::Advanced, MatchRule::Containment),
            (EngineKind::Advanced, MatchRule::Equality),
        ] {
            let out = db.query(q, kind, rule).unwrap();
            print!(
                " {:>9} hits {:>6.1}ms",
                out.result.len(),
                out.stats.elapsed.as_secs_f64() * 1e3
            );
        }
        println!();
    }

    println!("\nExpected shape (paper Fig 6): the advanced engine beats the");
    println!("simple one on every query; strictness sometimes costs a little,");
    println!("sometimes wins big (it shrinks the frontier early).");
}
