//! A real client/server deployment over TCP — the paper's figure-3
//! architecture with the RMI link replaced by our wire protocol.
//!
//! The server thread owns only the encrypted table (it was "filled by the
//! client", §5.1). The client connects over a socket, runs queries with the
//! pipelined `nextNode()` cursor and with batched evaluation, and reports
//! exact byte/round-trip counts.
//!
//! ```text
//! cargo run --release --example client_server_tcp
//! ```

use ssxdb::core::protocol::Request;
use ssxdb::core::transport::Transport;
use ssxdb::core::{
    encode_document, serve_tcp, AdvancedEngine, ClientFilter, MatchRule, ServerFilter,
    SimpleEngine, TcpTransport,
};
use ssxdb::prg::{Prg, Seed};
use ssxdb::xmark::{generate, XmarkConfig, DTD_ELEMENTS};
use ssxdb::xpath::parse_query;
use std::net::TcpListener;

fn main() {
    // --- client side: encode the document, keep the secrets -------------
    let xml = generate(&XmarkConfig {
        seed: 7,
        target_bytes: 24 * 1024,
    });
    let map = MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(4)).unwrap();
    let seed = Seed::from_test_key(0xC11E27);
    let out = encode_document(&xml, &map, &seed).unwrap();
    println!(
        "client encoded {} elements ({} bytes input)",
        out.stats.elements,
        xml.len()
    );

    // --- server side: receives table + public ring parameters only ------
    let server = ServerFilter::new(out.table, out.ring);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    println!("server listening on {addr} (holds shares + structure, no secrets)");
    let server_thread = std::thread::spawn(move || serve_tcp(listener, server).unwrap());

    // --- client connects and queries ------------------------------------
    let transport = TcpTransport::connect(addr).unwrap();
    let mut client = ClientFilter::new(transport, map, seed).unwrap();

    let query = parse_query("/site/*/person//city").unwrap();
    let outcome = AdvancedEngine::run(&query, MatchRule::Equality, &mut client).unwrap();
    println!(
        "\n/site/*/person//city (advanced, strict): {} matches in {:?}",
        outcome.result.len(),
        outcome.stats.elapsed
    );
    println!(
        "  network: {} round trips, {} B sent, {} B received",
        outcome.stats.round_trips, outcome.stats.bytes_sent, outcome.stats.bytes_received
    );

    let query2 = parse_query("//bidder/date").unwrap();
    let outcome2 = SimpleEngine::run(&query2, MatchRule::Containment, &mut client).unwrap();
    println!(
        "//bidder/date (simple, non-strict): {} matches, {} round trips",
        outcome2.result.len(),
        outcome2.stats.round_trips
    );

    // The thin-client pipeline: pull children one node at a time.
    let root = client.root().unwrap().unwrap();
    let cursor = client.open_children_cursor(vec![root.pre]).unwrap();
    print!("pipelined children of the root (one RTT per node): ");
    while let Some(loc) = client.next_node(cursor).unwrap() {
        print!("pre={} ", loc.pre);
    }
    println!();

    // Shut the server down cleanly.
    client.transport_mut().call(&Request::Shutdown).unwrap();
    let server = server_thread.join().unwrap();
    let stats = server.stats();
    println!(
        "\nserver handled {} requests: {} share evaluations, {} polynomials served",
        stats.requests, stats.evaluations, stats.polys_served
    );
    println!(
        "total traffic seen by the client: {:?}",
        client.transport_stats()
    );
}

use ssxdb::core::MapFile;
