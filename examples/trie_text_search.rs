//! Text search through the §4 trie enhancement — the paper's future-work
//! item, implemented end to end.
//!
//! Transforms a document's text nodes into character tries, encrypts the
//! result (over `F_131`, large enough for 77 tags + the 37-symbol trie
//! alphabet), translates a `contains(text(), …)` query into a path query,
//! and answers it over the encrypted database.
//!
//! ```text
//! cargo run --example trie_text_search
//! ```

use ssxdb::core::{EncryptedDb, EngineKind, MapFile, MatchRule};
use ssxdb::prg::Seed;
use ssxdb::trie::{corpus_stats, transform_document, trie_alphabet, TrieMode};
use ssxdb::xml::Document;
use ssxdb::xpath::parse_query;

fn main() {
    let xml = "<people>\
        <person><name>Joan Johnson</name><city>Enschede</city></person>\
        <person><name>John Johnson</name><city>Eindhoven</city></person>\
        <person><name>Mary Jane</name><city>Enschede</city></person>\
    </people>";
    println!("plaintext:\n  {xml}\n");

    // Transform text into tries (paper fig 2).
    let doc = Document::parse(xml).unwrap();
    let trie_doc = transform_document(&doc, TrieMode::Compressed);
    println!(
        "after trie transformation ({} element nodes):",
        trie_doc.element_count()
    );
    println!("{}\n", indent(&trie_doc.to_pretty_xml()));

    // Compression statistics (paper §4 claims).
    let texts: Vec<&str> = doc
        .descendants(doc.root())
        .into_iter()
        .filter_map(|id| doc.text(id))
        .collect();
    let stats = corpus_stats(texts.iter().copied());
    println!(
        "trie stats: {} chars -> {} trie nodes ({:.0}% reduction), dedup saves {:.0}%",
        stats.original_chars,
        stats.trie_char_nodes,
        100.0 * stats.trie_reduction(),
        100.0 * stats.dedup_reduction()
    );

    // Build the combined tag + alphabet map over F_131.
    let mut names: Vec<String> = ["people", "person", "name", "city"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend(trie_alphabet());
    let map = MapFile::sequential(131, 1, &names).unwrap();
    let seed = Seed::from_test_key(1960); // Fredkin's trie paper
    let mut db = EncryptedDb::encode_doc(&trie_doc, map, seed).unwrap();
    println!("\nencrypted {} nodes over F_131\n", db.node_count());

    // The paper's query translation:
    //   /name[contains(text(), "Joan")]  ->  /name//j/o/a/n
    for (query_text, comment) in [
        (
            r#"//name[contains(text(), "Joan")]"#,
            "substring: matches Joan (prefix of nothing else)",
        ),
        (
            r#"//name[contains(text(), "Jo")]"#,
            "prefix shared by Joan and John",
        ),
        (
            r#"//name[word(text(), "jane")]"#,
            "whole-word match with terminator",
        ),
        (
            r#"//city[contains(text(), "Enschede")]"#,
            "text under a different tag",
        ),
    ] {
        let query = parse_query(query_text).unwrap();
        let expanded = query.expand_text_predicates();
        let out = db
            .query(query_text, EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        println!("{query_text}");
        println!("  translated: {expanded}");
        println!("  matches: {} node(s)   ({comment})", out.result.len());
    }

    println!("\nThe server answered every query without ever seeing a tag");
    println!("name, a character, or a word boundary in the clear.");
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
