//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * radix vs bit-aligned vs raw polynomial storage (space/time trade-off),
//! * B-tree interval scan vs full table scan for descendant enumeration,
//! * batched (`EvalMany`) vs per-node containment round trips,
//! * equality-test quotient verification on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssx_bench::{build_db, document, paper_map, paper_seed};
use ssx_core::{encode_document, EngineKind, MatchRule};
use ssx_poly::{random_poly, Packer, RingCtx};
use ssx_prg::Prg;

fn packing_tradeoff(c: &mut Criterion) {
    // Space is printed once; time measured per packing.
    let ring = RingCtx::new(83, 1).unwrap();
    let packer = Packer::new(&ring);
    println!(
        "[ablation] bytes/poly at q=83: radix={} bits={} raw={}",
        packer.radix_len(),
        packer.bit_len(),
        packer.raw_len()
    );
    let polys: Vec<_> = (0..64)
        .map(|i| random_poly(&ring, &mut Prg::from_u64(i)))
        .collect();
    let mut group = c.benchmark_group("ablation_packing");
    group.bench_function("radix_64_polys", |b| {
        b.iter(|| {
            polys
                .iter()
                .map(|p| packer.pack_radix(p).len())
                .sum::<usize>()
        })
    });
    group.bench_function("bits_64_polys", |b| {
        b.iter(|| {
            polys
                .iter()
                .map(|p| packer.pack_bits(p).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn descendant_scan(c: &mut Criterion) {
    let xml = document(96 * 1024);
    let out = encode_document(&xml, &paper_map(), &paper_seed()).unwrap();
    let table = out.table;
    let root = table.root().unwrap().loc;
    // A mid-size subtree: the regions section (first child of the root).
    let regions = table.children_of(root.pre)[0];
    let mut group = c.benchmark_group("ablation_descendants");
    for (label, loc) in [("root", root), ("regions", regions)] {
        group.bench_with_input(
            BenchmarkId::new("btree_interval", label),
            &loc,
            |b, &loc| b.iter(|| table.descendants_of(loc).len()),
        );
        group.bench_with_input(BenchmarkId::new("full_scan", label), &loc, |b, &loc| {
            b.iter(|| table.descendants_of_scan(loc).len())
        });
    }
    group.finish();
}

fn batching(c: &mut Criterion) {
    let mut db = build_db(32 * 1024);
    let mut group = c.benchmark_group("ablation_batching");
    group.sample_size(10);
    // The same containment workload executed through the batched EvalMany
    // path (the engines' default) vs one containment() per node.
    group.bench_function("batched_eval_many", |b| {
        b.iter(|| {
            let client = db.client_mut();
            let root = client.root().unwrap().unwrap();
            let all = client.descendants(root).unwrap();
            let v = client.value_of("bidder").unwrap();
            client
                .containment_many(&all, v)
                .unwrap()
                .iter()
                .filter(|&&x| x)
                .count()
        })
    });
    group.bench_function("per_node_round_trips", |b| {
        b.iter(|| {
            let client = db.client_mut();
            let root = client.root().unwrap().unwrap();
            let all = client.descendants(root).unwrap();
            let v = client.value_of("bidder").unwrap();
            let mut hits = 0;
            for loc in all {
                if client.containment(loc, v).unwrap() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn equality_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_verify_equality");
    group.sample_size(10);
    let mut db = build_db(32 * 1024);
    for (label, verify) in [("verified", true), ("unverified", false)] {
        db.set_verify_equality(verify);
        group.bench_function(label, |b| {
            b.iter(|| {
                db.query(
                    "/site//europe/item",
                    EngineKind::Advanced,
                    MatchRule::Equality,
                )
                .unwrap()
                .result
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    packing_tradeoff,
    descendant_scan,
    batching,
    equality_verification
);
criterion_main!(benches);
