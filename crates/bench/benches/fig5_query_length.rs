//! Fig 5 (time series): the Table-1 chain queries of increasing length,
//! simple vs advanced engine, containment test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssx_bench::{build_db, table1_queries};
use ssx_core::{EngineKind, MatchRule};

fn bench_query_length(c: &mut Criterion) {
    let mut db = build_db(64 * 1024);
    let mut group = c.benchmark_group("fig5_query_length");
    group.sample_size(10);
    for (i, q) in table1_queries().into_iter().enumerate() {
        for (label, kind) in [
            ("simple", EngineKind::Simple),
            ("advanced", EngineKind::Advanced),
        ] {
            group.bench_with_input(BenchmarkId::new(label, i + 1), &q, |b, q| {
                b.iter(|| {
                    db.query(q, kind, MatchRule::Containment)
                        .expect("query")
                        .result
                        .len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_length);
criterion_main!(benches);
