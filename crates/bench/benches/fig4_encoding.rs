//! Fig 4 (time series): encoding cost vs input size.
//!
//! Criterion measures the full encode path (parse → polynomials → split →
//! pack → insert) at three input sizes; linearity shows as constant
//! throughput across the group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ssx_bench::{document, paper_map, paper_seed};
use ssx_core::encode_document;

fn bench_encoding(c: &mut Criterion) {
    let map = paper_map();
    let seed = paper_seed();
    let mut group = c.benchmark_group("fig4_encoding");
    group.sample_size(10);
    for kb in [32usize, 64, 128] {
        let xml = document(kb * 1024);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kb}KB")),
            &xml,
            |b, xml| {
                b.iter(|| encode_document(xml, &map, &seed).expect("encode"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
