//! Microbenchmarks of the cryptographic and storage primitives the
//! experiments are built from — the cost model behind Figs 4–6.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ssx_field::FieldCtx;
use ssx_poly::{extract_root, random_poly, reconstruct, split_with_prg, Packer, RingCtx};
use ssx_prg::{node_prg, Prg, Seed};
use ssx_store::BTree;
use std::hint::black_box;

fn field_ops(c: &mut Criterion) {
    let f83 = FieldCtx::new(83, 1).unwrap();
    let f256 = FieldCtx::new(2, 8).unwrap();
    let mut group = c.benchmark_group("field");
    group.bench_function("mul_f83", |b| {
        let mut x = 7u64;
        b.iter(|| {
            x = f83.mul(black_box(x), 29).max(1);
            x
        })
    });
    group.bench_function("inv_f83", |b| b.iter(|| f83.inv(black_box(44)).unwrap()));
    group.bench_function("mul_gf256", |b| {
        let mut x = 7u64;
        b.iter(|| {
            x = f256.mul(black_box(x), 171).max(1);
            x
        })
    });
    group.finish();
}

fn ring_ops(c: &mut Criterion) {
    let ring = RingCtx::new(83, 1).unwrap();
    let mut prg = Prg::from_u64(1);
    let a = random_poly(&ring, &mut prg);
    let b2 = random_poly(&ring, &mut prg);
    let mut group = c.benchmark_group("ring_f83");
    group.bench_function("mul_full", |b| {
        b.iter(|| ring.mul(black_box(&a), black_box(&b2)))
    });
    group.bench_function("mul_linear", |b| {
        b.iter(|| ring.mul_linear(black_box(&a), 17))
    });
    group.bench_function("eval", |b| b.iter(|| ring.eval(black_box(&a), 55)));
    group.bench_function("add", |b| {
        b.iter(|| ring.add(black_box(&a), black_box(&b2)))
    });
    group.finish();
}

/// The dual representation: pointwise O(n) products and O(1) evaluations
/// against their coefficient-domain counterparts, plus the boundary
/// transforms themselves.
fn eval_domain_ops(c: &mut Criterion) {
    let ring = RingCtx::new(83, 1).unwrap();
    let mut prg = Prg::from_u64(1);
    let a = random_poly(&ring, &mut prg);
    let b2 = random_poly(&ring, &mut prg);
    let ea = ring.to_evals(&a);
    let eb = ring.to_evals(&b2);
    let mut group = c.benchmark_group("evaldom_f83");
    // Every operation below touches all n = q − 1 components of a ring
    // element; report per-element rates, not per-row times.
    group.throughput(Throughput::Elements(ring.len() as u64));
    group.bench_function("mul_pointwise", |b| {
        let mut acc = ea.clone();
        b.iter(|| {
            ring.eval_mul_assign(black_box(&mut acc), black_box(&eb));
        })
    });
    group.bench_function("mul_linear_pointwise", |b| {
        let mut acc = ea.clone();
        b.iter(|| {
            ring.eval_mul_linear_assign(black_box(&mut acc), 17);
        })
    });
    group.bench_function("eval_o1", |b| b.iter(|| ring.eval_at(black_box(&ea), 55)));
    group.bench_function("to_evals", |b| b.iter(|| ring.to_evals(black_box(&a))));
    group.bench_function("from_evals", |b| b.iter(|| ring.from_evals(black_box(&ea))));
    group.finish();
}

fn sharing_ops(c: &mut Criterion) {
    let ring = RingCtx::new(83, 1).unwrap();
    let seed = Seed::from_test_key(3);
    let f = {
        let mut acc = ring.one();
        for t in [3u64, 17, 55, 80, 11] {
            acc = ring.mul_linear(&acc, t);
        }
        acc
    };
    let mut group = c.benchmark_group("sharing");
    group.bench_function("client_share_regen", |b| {
        b.iter(|| random_poly(&ring, &mut node_prg(&seed, black_box(12345))))
    });
    group.bench_function("split", |b| {
        let mut prg = Prg::from_u64(9);
        b.iter(|| split_with_prg(&ring, black_box(&f), &mut prg))
    });
    let mut prg = Prg::from_u64(9);
    let (client, server) = split_with_prg(&ring, &f, &mut prg);
    group.bench_function("reconstruct", |b| {
        b.iter(|| reconstruct(&ring, black_box(&client), black_box(&server)))
    });
    group.finish();
}

fn equality_test_ops(c: &mut Criterion) {
    let ring = RingCtx::new(83, 1).unwrap();
    let mut g = ring.one();
    for t in [7u64, 7, 19, 44, 61] {
        g = ring.mul_linear(&g, t);
    }
    let f = ring.mul_linear(&g, 33);
    let mut group = c.benchmark_group("equality_test");
    group.bench_function("extract_root_no_verify", |b| {
        b.iter(|| extract_root(&ring, black_box(&f), black_box(&g), false))
    });
    group.bench_function("extract_root_verified", |b| {
        b.iter(|| extract_root(&ring, black_box(&f), black_box(&g), true))
    });
    let (fe, ge) = (ring.to_evals(&f), ring.to_evals(&g));
    group.bench_function("extract_root_evals_verified", |b| {
        b.iter(|| ssx_poly::extract_root_evals(&ring, black_box(&fe), black_box(&ge), true))
    });
    group.finish();
}

fn packing_ops(c: &mut Criterion) {
    let ring = RingCtx::new(83, 1).unwrap();
    let packer = Packer::new(&ring);
    let poly = random_poly(&ring, &mut Prg::from_u64(4));
    let radix = packer.pack_radix(&poly);
    let bits = packer.pack_bits(&poly);
    let mut group = c.benchmark_group("packing");
    // A pack/unpack processes one coefficient per ring slot; per-element
    // rates make the radix and bit paths comparable across field sizes.
    group.throughput(Throughput::Elements(ring.len() as u64));
    group.bench_function("pack_radix", |b| {
        b.iter(|| packer.pack_radix(black_box(&poly)))
    });
    group.bench_function("unpack_radix", |b| {
        b.iter(|| packer.unpack_radix(&ring, black_box(&radix)).unwrap())
    });
    group.bench_function("pack_bits", |b| {
        b.iter(|| packer.pack_bits(black_box(&poly)))
    });
    group.bench_function("unpack_bits", |b| {
        b.iter(|| packer.unpack_bits(&ring, black_box(&bits)).unwrap())
    });
    group.finish();
}

fn btree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BTree::new();
            for k in 0..10_000u64 {
                t.insert(k.wrapping_mul(0x9E3779B97F4A7C15) >> 16, k);
            }
            t.len()
        })
    });
    let mut t = BTree::new();
    for k in 0..100_000u64 {
        t.insert(k * 2, k);
    }
    group.bench_function("point_get", |b| b.iter(|| t.get(black_box(123_456))));
    group.bench_function("range_100", |b| {
        b.iter(|| t.range(black_box(50_000), 50_198).count())
    });
    group.finish();
}

criterion_group!(
    benches,
    field_ops,
    ring_ops,
    eval_domain_ops,
    sharing_ops,
    equality_test_ops,
    packing_ops,
    btree_ops
);
criterion_main!(benches);
