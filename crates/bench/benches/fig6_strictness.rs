//! Fig 6 (time series): the Table-2 queries under every engine × rule
//! combination — the strictness experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssx_bench::{build_db, TABLE2};
use ssx_core::{EngineKind, MatchRule};

fn bench_strictness(c: &mut Criterion) {
    let mut db = build_db(64 * 1024);
    db.set_verify_equality(false); // timing configuration, like the prototype
    let mut group = c.benchmark_group("fig6_strictness");
    group.sample_size(10);
    let combos = [
        (
            "nonstrict_simple",
            EngineKind::Simple,
            MatchRule::Containment,
        ),
        ("strict_simple", EngineKind::Simple, MatchRule::Equality),
        (
            "nonstrict_advanced",
            EngineKind::Advanced,
            MatchRule::Containment,
        ),
        ("strict_advanced", EngineKind::Advanced, MatchRule::Equality),
    ];
    for (i, q) in TABLE2.iter().enumerate() {
        for (label, kind, rule) in combos {
            group.bench_with_input(BenchmarkId::new(label, i + 1), q, |b, q| {
                b.iter(|| db.query(q, kind, rule).expect("query").result.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strictness);
criterion_main!(benches);
