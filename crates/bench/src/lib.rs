#![warn(missing_docs)]

//! Shared harness for the figure/table reproductions.
//!
//! Both the Criterion benches and the `repro` binary build their workloads
//! through this module so every experiment uses identical documents, maps
//! and seeds.
//!
//! Scaling: set `SSXDB_SCALE` (float, default 1.0) to scale document sizes,
//! or `SSXDB_FULL=1` to run the paper-sized Fig 4 sweep (1–10 MB inputs).

use ssx_core::{EncryptedDb, MapFile};
use ssx_prg::{Prg, Seed};
use ssx_xmark::{generate, XmarkConfig, DTD_ELEMENTS};

/// The Table-1 chain (queries 1..=9 are its prefixes).
pub const TABLE1_CHAIN: &str =
    "/site/regions/europe/item/description/parlist/listitem/text/keyword";

/// The Table-2 strictness queries (numbers match Fig 6/7).
pub const TABLE2: [&str; 5] = [
    "/site//europe/item",
    "/site//europe//item",
    "/site/*/person//city",
    "/*/*/open_auction/bidder/date",
    "//bidder/date",
];

/// Queries 1..=9 of Table 1.
pub fn table1_queries() -> Vec<String> {
    let parts: Vec<&str> = TABLE1_CHAIN.trim_start_matches('/').split('/').collect();
    (1..=parts.len())
        .map(|len| format!("/{}", parts[..len].join("/")))
        .collect()
}

/// `SSXDB_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("SSXDB_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `SSXDB_FULL=1` switches Fig 4 to the paper's 1–10 MB sweep.
pub fn full_sweep() -> bool {
    std::env::var("SSXDB_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The experiments' standard secrets: the 77-element DTD map over `F_83`
/// (paper §6: "We chose p = 83 and e = 1 throughout this section").
pub fn paper_map() -> MapFile {
    MapFile::random(83, 1, &DTD_ELEMENTS, &mut Prg::from_u64(0x2005)).unwrap()
}

/// The experiments' standard seed.
pub fn paper_seed() -> Seed {
    Seed::from_test_key(0x5D4_2005)
}

/// Generates the standard auction document of roughly `bytes` bytes.
pub fn document(bytes: usize) -> String {
    generate(&XmarkConfig {
        seed: 0x2005,
        target_bytes: bytes,
    })
}

/// Builds the encrypted database for a document of roughly `bytes` bytes.
pub fn build_db(bytes: usize) -> EncryptedDb {
    let xml = document(bytes);
    EncryptedDb::encode(&xml, paper_map(), paper_seed()).expect("benchmark encode")
}

/// Formats a byte count as KB/MB with one decimal.
pub fn human_bytes(b: usize) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1} KB", b as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_queries() {
        let qs = table1_queries();
        assert_eq!(qs.len(), 9);
        assert_eq!(qs[0], "/site");
        assert_eq!(qs[8], TABLE1_CHAIN);
    }

    #[test]
    fn harness_builds_a_db() {
        let db = build_db(4 * 1024);
        assert!(db.node_count() > 50);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "0.5 KB");
        assert_eq!(human_bytes(2 * 1024 * 1024), "2.0 MB");
    }
}
