//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p ssx_bench --bin repro -- all
//! cargo run --release -p ssx_bench --bin repro -- fig4   # encoding sweep
//! cargo run --release -p ssx_bench --bin repro -- fig5   # query-length series (Table 1)
//! cargo run --release -p ssx_bench --bin repro -- fig6   # strictness timing (Table 2)
//! cargo run --release -p ssx_bench --bin repro -- fig7   # containment accuracy
//! cargo run --release -p ssx_bench --bin repro -- trie   # §4 compression claims
//! ```
//!
//! Environment: `SSXDB_SCALE=<f64>` scales document sizes; `SSXDB_FULL=1`
//! runs the paper-sized 1–10 MB Fig 4 sweep.

use ssx_bench::{
    build_db, document, full_sweep, paper_map, paper_seed, scale, table1_queries, TABLE2,
};
use ssx_core::{
    accuracy_percent, encode_document, serve_tcp_mux, serve_tcp_sharded, ClientFilter, EncryptedDb,
    Engine, EngineKind, MatchRule, MuxPool, ShardRouter, ShardedServer,
};
use ssx_trie::corpus_stats;
use ssx_xml::Document;
use std::time::{Duration, Instant};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "trie" => trie(),
        "reduction" => reduction(),
        "bench-json" => {
            let path = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "BENCH_10.json".to_string());
            bench_json(&path);
        }
        "all" => {
            fig4();
            fig5();
            fig6();
            fig7();
            trie();
            reduction();
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; use fig4|fig5|fig6|fig7|trie|reduction|bench-json|all"
            );
            std::process::exit(2);
        }
    }
}

/// Times `op` with adaptive iteration count (~80 ms per measurement) and
/// returns nanoseconds per iteration.
fn time_ns<F: FnMut()>(mut op: F) -> f64 {
    // Calibration pass.
    let mut iters = 8u64;
    loop {
        let started = Instant::now();
        for _ in 0..iters {
            op();
        }
        let elapsed = started.elapsed();
        if elapsed.as_millis() >= 40 || iters >= 1 << 28 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        let per = (elapsed.as_nanos() as f64 / iters as f64).max(0.5);
        iters = ((80_000_000.0 / per) as u64).clamp(iters * 2, 1 << 28);
    }
}

/// `bench-json` — machine-readable perf-trajectory datapoint (written to
/// `path`, default `BENCH_10.json`; the committed file is the PR-10
/// baseline and CI re-runs this on every push).
///
/// Everything is measured at the paper's `q = 83`: the two ring-product
/// representations, the boundary transforms, the pack/unpack boundary, the
/// per-node encode cost, an end-to-end Table-1 chain query under both
/// engines, the shard-count × batching × speculation matrix of the sharded
/// query plane, the **clients × transport matrix** (N concurrent clients
/// running the chain over a real TCP host, thread-per-connection vs
/// multiplexed; the run asserts the mux plane serves 8 concurrent clients
/// in no more wall-clock than the threaded one), the (schema 5) **fleet
/// n × t matrix**: the chain on a t-of-n multi-party deployment, asserting
/// results and wave count identical to the single-party plane in every
/// cell, and (new in schema 8) the **sustained-ingest row**: one writer
/// client streams whole-document inserts and deletes into a live sharded
/// TCP host while a query mix runs concurrently — rows/s acked, with the
/// baseline document's matches asserted present in every concurrent
/// answer and the baseline answer asserted restored bit-exactly once the
/// writer removes everything it inserted. New in schema 9: the
/// **aggregation matrix** — COUNT/SUM/AVG over the numeric plane, with
/// and without a range predicate, on the sharded plane and on a 3-party
/// t = 2 fleet, every cell asserted bit-identical to the plaintext
/// oracle, the closing share-sum asserted to cost exactly one wave
/// beyond the frontier walk (two with a range), and the fleet's total
/// wave count asserted equal to the single-party plane's.
fn bench_json(path: &str) {
    use ssx_poly::{random_poly, Packer, RingCtx};
    use ssx_prg::Prg;

    banner("bench-json — machine-readable perf datapoint (q = 83)");
    let ring = RingCtx::new(83, 1).unwrap();
    let mut prg = Prg::from_u64(1);
    let a = random_poly(&ring, &mut prg);
    let b = random_poly(&ring, &mut prg);
    let (ea, eb) = (ring.to_evals(&a), ring.to_evals(&b));

    let ring_mul_coeff_ns = time_ns(|| {
        std::hint::black_box(ring.mul(std::hint::black_box(&a), std::hint::black_box(&b)));
    });
    let mut acc = ea.clone();
    let ring_mul_eval_ns = time_ns(|| {
        ring.eval_mul_assign(std::hint::black_box(&mut acc), std::hint::black_box(&eb));
    });
    let to_evals_ns = time_ns(|| {
        std::hint::black_box(ring.to_evals(std::hint::black_box(&a)));
    });
    let from_evals_ns = time_ns(|| {
        std::hint::black_box(ring.from_evals(std::hint::black_box(&ea)));
    });
    let eval_horner_ns = time_ns(|| {
        std::hint::black_box(ring.eval(std::hint::black_box(&a), 55));
    });
    let eval_o1_ns = time_ns(|| {
        std::hint::black_box(ring.eval_at(std::hint::black_box(&ea), 55));
    });

    // The pack/unpack boundary (now scratch-buffered, 32-bit chunked).
    let packer = Packer::new(&ring);
    let mut pack_work = Vec::new();
    let mut pack_out = Vec::new();
    let pack_ns = time_ns(|| {
        packer.pack_radix_into(std::hint::black_box(&a), &mut pack_work, &mut pack_out);
        std::hint::black_box(&pack_out);
    });
    let packed = packer.pack_radix(&a);
    let mut unpack_buf = ring.zero();
    let unpack_ns = time_ns(|| {
        packer
            .unpack_radix_into(std::hint::black_box(&packed), &mut unpack_buf)
            .expect("unpack");
        std::hint::black_box(&unpack_buf);
    });

    // The batched field kernels (PR-8): one pass over an n = q − 1 slice.
    let field = ring.field();
    let mut batch_acc: Vec<u64> = a.coeffs().to_vec();
    let batch_rhs: Vec<u64> = b.coeffs().to_vec();
    let mul_mod_batch_ns = time_ns(|| {
        field.mul_mod_batch(std::hint::black_box(&mut batch_acc), &batch_rhs);
        std::hint::black_box(&batch_acc);
    });
    let add_mod_batch_ns = time_ns(|| {
        field.add_mod_batch(std::hint::black_box(&mut batch_acc), &batch_rhs);
        std::hint::black_box(&batch_acc);
    });

    // Per-node encode cost on a fixed ~64 KB document (includes parse,
    // eval-domain folds, inverse transform, share split and radix packing).
    let xml = document(64 * 1024);
    let map = paper_map();
    let seed = paper_seed();
    let out = encode_document(&xml, &map, &seed).expect("encode");
    let elements = out.stats.elements.max(1);
    let encode_runs = 9;
    // Per-run minimum: scheduler preemption only ever adds time, so the
    // fastest run is the intrinsic cost and the gate below stays stable on
    // noisy shared hosts.
    let mut best_run_s = f64::INFINITY;
    for _ in 0..encode_runs {
        let started = Instant::now();
        std::hint::black_box(encode_document(&xml, &map, &seed).expect("encode"));
        best_run_s = best_run_s.min(started.elapsed().as_secs_f64());
    }
    let node_encode_ns = best_run_s * 1e9 / elements as f64;
    let encode_rows_per_s_serial = elements as f64 / best_run_s;

    // The parallel encoder, keyed by the host's available parallelism. Its
    // table must be byte-identical to the serial one — the thread count is
    // a throughput lever, never an output change.
    let threads = ssx_core::default_threads();
    let par_out = ssx_core::encode_document_parallel(&xml, &map, &seed).expect("parallel encode");
    assert_eq!(
        par_out.table.rows(),
        out.table.rows(),
        "parallel encode ({threads} threads) must be bit-identical to serial"
    );
    let started = Instant::now();
    for _ in 0..encode_runs {
        std::hint::black_box(
            ssx_core::encode_document_parallel(&xml, &map, &seed).expect("parallel encode"),
        );
    }
    let encode_rows_per_s_parallel =
        (encode_runs * elements) as f64 / started.elapsed().as_secs_f64();

    // Zero-copy wire decode (PR-8): a bulk Values frame, decoded borrowed
    // vs owned. The borrowed path must read the same elements.
    let wire_vals: Vec<u64> = (0..elements as u64).map(|i| i % 83).collect();
    let frame = ssx_core::protocol::encode_response(&ssx_core::protocol::Response::Values(
        wire_vals.clone(),
    ));
    let decode_zero_copy_ns = time_ns(|| {
        let view =
            ssx_core::protocol::decode_response_view(std::hint::black_box(&frame)).expect("view");
        if let ssx_core::protocol::ResponseView::Values(vs) = &view {
            std::hint::black_box(vs.as_slice());
        } else {
            unreachable!("Values frame");
        }
    });
    let decode_owned_ns = time_ns(|| {
        std::hint::black_box(
            ssx_core::protocol::decode_response(std::hint::black_box(&frame)).expect("owned"),
        );
    });
    match ssx_core::protocol::decode_response_view(&frame).expect("view") {
        ssx_core::protocol::ResponseView::Values(vs) => {
            assert_eq!(
                vs.as_slice(),
                &wire_vals[..],
                "zero-copy decode changed data"
            );
        }
        other => panic!("unexpected view {other:?}"),
    }

    // End-to-end query: the full Table-1 chain on a fixed ~64 KB database,
    // containment rule, both engines.
    let mut db = EncryptedDb::encode(&xml, paper_map(), paper_seed()).expect("db");
    let chain = table1_queries().pop().expect("table 1 chain");
    let mut query_ms = |kind: EngineKind| {
        let runs = 5;
        let started = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(
                db.query(&chain, kind, MatchRule::Containment)
                    .expect("query"),
            );
        }
        started.elapsed().as_secs_f64() * 1e3 / runs as f64
    };
    let query_simple_ms = query_ms(EngineKind::Simple);
    let query_advanced_ms = query_ms(EngineKind::Advanced);

    // The sharded/batched query plane: S ∈ {1, 2, 4} × batching {on, off}
    // × speculation {off, on} on the fig5-style chain query. Results must
    // be identical in every cell; round trips are the quantity the plane
    // exists to cut, and the speculation column is the PR-4 datapoint —
    // waves strictly below the PR-3 baseline at identical results.
    let mut shard_cells = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    let mut rt_batched_s1 = 0u64;
    let mut rt_unbatched_s1 = 0u64;
    let mut rt_speculative_s1 = 0u64;
    let mut spec_hits_s1 = 0u64;
    let mut spec_wasted_s1 = 0u64;
    for shards in [1u32, 2, 4] {
        for batched in [true, false] {
            for speculation in [false, true] {
                let mut db = EncryptedDb::encode_sharded(&xml, paper_map(), paper_seed(), shards)
                    .expect("sharded db");
                if !batched {
                    db.set_batch_limit(Some(1));
                }
                db.set_speculation(speculation);
                let started = Instant::now();
                let out = db
                    .query(&chain, EngineKind::Simple, MatchRule::Containment)
                    .expect("query");
                let ms = started.elapsed().as_secs_f64() * 1e3;
                match &reference {
                    None => reference = Some(out.pres()),
                    Some(r) => assert_eq!(
                        r,
                        &out.pres(),
                        "results must not depend on S/batching/speculation"
                    ),
                }
                if shards == 1 && batched && !speculation {
                    rt_batched_s1 = out.stats.round_trips;
                }
                if shards == 1 && !batched && !speculation {
                    rt_unbatched_s1 = out.stats.round_trips;
                }
                if shards == 1 && batched && speculation {
                    rt_speculative_s1 = out.stats.round_trips;
                    spec_hits_s1 = out.stats.speculative_hits;
                    spec_wasted_s1 = out.stats.speculative_wasted;
                }
                shard_cells.push(format!(
                    "    {{ \"shards\": {shards}, \"batched\": {batched}, \
                     \"speculation\": {speculation}, \"round_trips\": {}, \
                     \"shard_dispatches\": {}, \"speculative_hits\": {}, \
                     \"speculative_wasted\": {}, \"query_ms\": {ms:.3} }}",
                    out.stats.round_trips,
                    out.stats.shard_dispatches,
                    out.stats.speculative_hits,
                    out.stats.speculative_wasted
                ));
            }
        }
    }
    // The fig5-style chain over a *parallel-encoded* database must answer
    // bit-identically to the serial-encoded reference (the PR-8 guarantee,
    // end to end rather than just at the stored bytes).
    {
        let pout = ssx_core::encode_document_parallel(&xml, &map, &seed).expect("parallel encode");
        let mut pdb = ssx_core::EncryptedDb::from_encode_output(pout, paper_map(), paper_seed(), 1)
            .expect("parallel db");
        let out = pdb
            .query(&chain, EngineKind::Simple, MatchRule::Containment)
            .expect("query");
        assert_eq!(
            reference.as_ref().expect("reference set"),
            &out.pres(),
            "chain query over a parallel encode must match the serial plane"
        );
    }

    let rt_reduction = rt_unbatched_s1 as f64 / rt_batched_s1.max(1) as f64;
    assert!(
        rt_speculative_s1 < rt_batched_s1,
        "speculation must beat the PR-3 wave baseline ({rt_speculative_s1} vs {rt_batched_s1})"
    );

    // The fleet n × t matrix (the PR-6 datapoint): the chain query on a
    // t-of-n multi-party deployment — per-server share stores, fan-out,
    // MAC-verified client-side reconstruction. Every cell must answer
    // exactly like the single-party plane, in exactly the same number of
    // waves: the fleet fans *under* the router, so the wave structure is
    // invariant by construction, and (1, 1) is the degenerate single-party
    // case down to the stored bytes.
    let mut fleet_cells = Vec::new();
    for (servers, threshold) in [(1usize, 1usize), (3, 1), (3, 2)] {
        let spec = ssx_core::FleetSpec::new(servers, threshold).expect("fleet spec");
        let mut db =
            ssx_core::FleetDb::encode_fleet(&xml, paper_map(), paper_seed(), spec).expect("fleet");
        let started = Instant::now();
        let out = db
            .query(&chain, EngineKind::Simple, MatchRule::Containment)
            .expect("fleet query");
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            reference.as_ref().expect("reference set"),
            &out.pres(),
            "n={servers} t={threshold}: fleet results must match single-party"
        );
        assert_eq!(
            out.stats.round_trips, rt_batched_s1,
            "n={servers} t={threshold}: fleet waves must equal the n=1 wave count"
        );
        fleet_cells.push(format!(
            "    {{ \"servers\": {servers}, \"threshold\": {threshold}, \
             \"round_trips\": {}, \"query_ms\": {ms:.3} }}",
            out.stats.round_trips
        ));
    }

    // The clients × transport matrix (the PR-5 datapoint): N concurrent
    // clients each run the chain query REPS times against a live TCP host,
    // S = 2 — thread-per-connection (every client opens its own per-shard
    // sockets, each costing a server thread) vs multiplexed (every client
    // rides one shared pool, one socket per shard, fixed server pool).
    // Every query's result is asserted against the single-client answer.
    const MUX_BENCH_CLIENTS: [usize; 3] = [1, 2, 8];
    const MUX_BENCH_REPS: usize = 4;
    const MUX_BENCH_SHARDS: u32 = 2;
    let mux_doc = document(24 * 1024);
    let chain_query = ssx_xpath::parse_query(&chain)
        .expect("chain parses")
        .expand_text_predicates();
    let chain_reference = {
        let mut db = EncryptedDb::encode(&mux_doc, paper_map(), paper_seed()).expect("db");
        db.query(&chain, EngineKind::Simple, MatchRule::Containment)
            .expect("query")
            .pres()
    };
    let transport_cell = |clients: usize, mux: bool| -> f64 {
        let out = encode_document(&mux_doc, &map, &seed).expect("encode");
        let server =
            ShardedServer::from_table(out.table, out.ring, MUX_BENCH_SHARDS).expect("shard");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let host = std::thread::spawn(move || {
            if mux {
                serve_tcp_mux(listener, server, 0).expect("mux host")
            } else {
                serve_tcp_sharded(listener, server).expect("threaded host")
            }
        });
        let started = Instant::now();
        let pool = mux.then(|| MuxPool::connect(addr, MUX_BENCH_SHARDS).expect("pool"));
        std::thread::scope(|scope| {
            for _ in 0..clients {
                let pool = pool.clone();
                let (map, seed) = (map.clone(), seed.clone());
                let query = chain_query.clone();
                let expect = &chain_reference;
                scope.spawn(move || {
                    let run = |out: ssx_core::QueryOutcome| {
                        assert_eq!(&out.pres(), expect, "transport changed the answer");
                    };
                    if let Some(pool) = pool {
                        let mut c =
                            ClientFilter::new(ShardRouter::mux(&pool), map, seed).expect("client");
                        for _ in 0..MUX_BENCH_REPS {
                            run(Engine::run(
                                EngineKind::Simple,
                                MatchRule::Containment,
                                &query,
                                &mut c,
                            )
                            .expect("query"));
                        }
                    } else {
                        let router = ShardRouter::connect(addr, MUX_BENCH_SHARDS).expect("connect");
                        let mut c = ClientFilter::new(router, map, seed).expect("client");
                        for _ in 0..MUX_BENCH_REPS {
                            run(Engine::run(
                                EngineKind::Simple,
                                MatchRule::Containment,
                                &query,
                                &mut c,
                            )
                            .expect("query"));
                        }
                    }
                });
            }
        });
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        drop(pool);
        let mut closer = ssx_core::TcpTransport::connect(addr).expect("closer");
        use ssx_core::Transport as _;
        closer
            .call(&ssx_core::protocol::Request::Shutdown)
            .expect("shutdown");
        drop(closer);
        host.join().expect("host join");
        wall_ms
    };
    let mut mux_cells = Vec::new();
    let mut threaded_8_ms = f64::INFINITY;
    let mut mux_8_ms = f64::INFINITY;
    for clients in MUX_BENCH_CLIENTS {
        for mux in [false, true] {
            // Best of two runs per cell: the figure of merit is the plane's
            // capability, not a scheduler hiccup.
            let ms = transport_cell(clients, mux).min(transport_cell(clients, mux));
            if clients == 8 {
                if mux {
                    mux_8_ms = ms;
                } else {
                    threaded_8_ms = ms;
                }
            }
            let qps = (clients * MUX_BENCH_REPS) as f64 / (ms / 1e3);
            mux_cells.push(format!(
                "    {{ \"clients\": {clients}, \"mux\": {mux}, \
                 \"shards\": {MUX_BENCH_SHARDS}, \"wall_ms\": {ms:.3}, \
                 \"queries_per_s\": {qps:.1} }}"
            ));
        }
    }
    let mux_speedup_8 = threaded_8_ms / mux_8_ms.max(0.001);

    // The aggregation matrix (the PR-10 datapoint): COUNT/SUM/AVG over
    // the auction document's numeric plane, with and without a range
    // predicate, on the sharded single-party plane (S = 2) and on a
    // 3-party t = 2 fleet. Every cell is asserted bit-identical to the
    // plaintext oracle; the closing blind share-sum is asserted to cost
    // exactly ONE wave beyond the frontier walk (two with a range: one
    // value-fetch wave, one share-sum wave) regardless of match count or
    // shard count; and the fleet's total wave count must equal the
    // single-party plane's — the fleet fans *under* the router, so
    // aggregation inherits the wave invariant by construction.
    let mut agg_cells = Vec::new();
    let mut agg_sum_qps = 0.0f64;
    {
        use ssx_core::{reference_aggregate, AggOp, AggregateSpec};
        let agg_doc = Document::parse(&mux_doc).expect("bench doc parses");
        let fleet_spec = ssx_core::FleetSpec::new(3, 2).expect("fleet spec");
        let agg_runs = 3;
        for (qtext, range) in [
            ("//item/quantity", None),
            ("//item/quantity", Some((1u64, u64::MAX))),
        ] {
            let query = ssx_xpath::parse_query(qtext)
                .expect("agg query parses")
                .expand_text_predicates();
            let oracle = reference_aggregate(&agg_doc, &query, MatchRule::Containment, 82, range)
                .expect("oracle");
            let mut db = EncryptedDb::encode_sharded(&mux_doc, paper_map(), paper_seed(), 2)
                .expect("sharded db");
            let mut fdb =
                ssx_core::FleetDb::encode_fleet(&mux_doc, paper_map(), paper_seed(), fleet_spec)
                    .expect("fleet db");
            for op in [AggOp::Count, AggOp::Sum, AggOp::Avg] {
                let spec = AggregateSpec {
                    query: query.clone(),
                    op,
                    range,
                };
                let run = |db: &mut dyn FnMut() -> ssx_core::AggregateOutcome| {
                    let started = Instant::now();
                    let mut out = db();
                    for _ in 1..agg_runs {
                        out = db();
                    }
                    (out, started.elapsed().as_secs_f64() * 1e3 / agg_runs as f64)
                };
                let (out, ms) = run(&mut || {
                    db.run_aggregate(&spec, EngineKind::Simple, MatchRule::Containment)
                        .expect("aggregate")
                });
                let (fout, fleet_ms) = run(&mut || {
                    fdb.run_aggregate(&spec, EngineKind::Simple, MatchRule::Containment)
                        .expect("fleet aggregate")
                });
                // COUNT closes with pure fence probes — it never touches
                // the numeric plane, so only its count is comparable
                // against the oracle; SUM/AVG carry the full triple.
                match op {
                    AggOp::Count => assert_eq!(
                        out.count, oracle.count,
                        "COUNT({qtext}) range={range:?} diverged from the oracle"
                    ),
                    AggOp::Sum | AggOp::Avg => assert_eq!(
                        (out.count, out.contributing, out.sum),
                        (oracle.count, oracle.contributing, oracle.sum),
                        "{op:?}({qtext}) range={range:?} diverged from the oracle"
                    ),
                }
                let expect_close = if range.is_some() { 2 } else { 1 };
                assert_eq!(
                    out.closing_waves, expect_close,
                    "{op:?}({qtext}): the close must cost exactly \
                     {expect_close} wave(s) beyond the frontier walk"
                );
                assert_eq!(
                    (fout.count, fout.contributing, fout.sum),
                    (out.count, out.contributing, out.sum),
                    "{op:?}({qtext}): 3-party fleet answer diverged from single-party"
                );
                assert_eq!(
                    fout.walk.round_trips + fout.closing_waves,
                    out.walk.round_trips + out.closing_waves,
                    "{op:?}({qtext}): fleet aggregate waves must equal the n=1 wave count"
                );
                if op == AggOp::Sum && range.is_none() {
                    agg_sum_qps = 1e3 / ms.max(0.001);
                }
                agg_cells.push(format!(
                    "    {{ \"op\": \"{op:?}\", \"query\": \"{qtext}\", \
                     \"ranged\": {}, \"matches\": {}, \"contributing\": {}, \
                     \"walk_waves\": {}, \"closing_waves\": {}, \
                     \"query_ms\": {ms:.3}, \"fleet_query_ms\": {fleet_ms:.3} }}",
                    range.is_some(),
                    out.count,
                    out.contributing,
                    out.walk.round_trips,
                    out.closing_waves
                ));
            }
        }
    }

    // The degraded-mode row (the PR-7 datapoint): a 3-party t=2 fleet in
    // which party 3 answers every call exactly DEGRADED_DELAY_MS late
    // (seeded chaos, deterministic). With hedged reconstruction on, each
    // wave completes from the first t verified shares, so the chain
    // query's wall-clock tracks the 2nd-fastest party — asserted to stay
    // under half the laggard-bound (waves × delay) it would cost to wait
    // for party 3 every wave.
    const DEGRADED_DELAY_MS: u64 = 50;
    let degraded_cell = {
        let spec = ssx_core::FleetSpec::new(3, 2).expect("fleet spec");
        let fleet =
            ssx_core::encode_document_fleet(&mux_doc, &map, &seed, spec).expect("fleet encode");
        let mut router = ssx_core::local_fleet_router_wrapped(fleet, &seed, 1, |party, t| {
            let cfg = if party == 3 {
                ssx_core::ChaosConfig::fixed_delay(7, Duration::from_millis(DEGRADED_DELAY_MS))
            } else {
                ssx_core::ChaosConfig::quiet(7)
            };
            ssx_core::ChaosTransport::new(t, cfg)
        })
        .expect("degraded router");
        for pipe in router.transports_mut() {
            pipe.set_resilience(ssx_core::ResilienceConfig {
                hedge: true,
                ..Default::default()
            });
        }
        let mut client = ClientFilter::new(router, map.clone(), seed.clone()).expect("client");
        let started = Instant::now();
        let out = Engine::run(
            EngineKind::Simple,
            MatchRule::Containment,
            &chain_query,
            &mut client,
        )
        .expect("degraded fleet query");
        let ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            &out.pres(),
            &chain_reference,
            "degraded hedged fleet must answer exactly like the clean plane"
        );
        let waves = out.stats.round_trips;
        let laggard_bound_ms = (waves * DEGRADED_DELAY_MS) as f64;
        assert!(
            out.stats.hedged_wins > 0,
            "a {DEGRADED_DELAY_MS} ms laggard must trigger t-first hedged completion"
        );
        assert!(
            ms < laggard_bound_ms / 2.0,
            "hedged wall-clock must track the 2nd-fastest party \
             ({ms:.1} ms vs {laggard_bound_ms:.1} ms waiting for the laggard every wave)"
        );
        format!(
            "    {{ \"servers\": 3, \"threshold\": 2, \"delayed_party\": 3, \
             \"delay_ms\": {DEGRADED_DELAY_MS}, \"waves\": {waves}, \
             \"wall_ms\": {ms:.3}, \"laggard_bound_ms\": {laggard_bound_ms:.1}, \
             \"hedged_wins\": {}, \"straggler_ms\": {} }}",
            out.stats.hedged_wins, out.stats.straggler_ms
        )
    };

    // Sustained ingest under concurrent query load (the PR-9 datapoint):
    // a live S=2 thread-per-connection TCP host; one writer client streams
    // whole-document inserts (deleting every 4th inserted document to mix
    // the load) for a bounded window while query clients run the chain
    // continuously. Invariants asserted live: the baseline document's
    // matches appear in every concurrent answer (writes only add or remove
    // whole *inserted* documents — baseline `pre`s are never reused), and
    // once the writer deletes everything it inserted, the chain answers
    // exactly like the untouched baseline.
    const INGEST_SHARDS: u32 = 2;
    const INGEST_QUERY_THREADS: usize = 2;
    const INGEST_WINDOW_MS: u64 = 1200;
    let (ingest_rows_per_s, ingest_cell) = {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        let out = encode_document(&mux_doc, &map, &seed).expect("encode");
        let server = ShardedServer::from_table(out.table, out.ring, INGEST_SHARDS).expect("shard");
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let host = std::thread::spawn(move || serve_tcp_sharded(listener, server).expect("host"));
        let ingest_doc = document(2 * 1024);
        let stop = AtomicBool::new(false);
        let queries_done = AtomicU64::new(0);
        let conflicts = AtomicU64::new(0);
        let (rows, docs_in, docs_del, wall_ms) = std::thread::scope(|scope| {
            for _ in 0..INGEST_QUERY_THREADS {
                let (map, seed) = (map.clone(), seed.clone());
                let query = chain_query.clone();
                let (expect, stop) = (&chain_reference, &stop);
                let (queries_done, conflicts) = (&queries_done, &conflicts);
                scope.spawn(move || {
                    let router = ShardRouter::connect(addr, INGEST_SHARDS).expect("connect");
                    let mut c = ClientFilter::new(router, map, seed).expect("client");
                    while !stop.load(Ordering::Relaxed) {
                        // A multi-wave query races the writer without
                        // snapshot isolation: a frontier node can vanish
                        // between waves, surfacing as a *typed* conflict the
                        // client retries — never as a silently wrong merge.
                        match Engine::run(
                            EngineKind::Simple,
                            MatchRule::Containment,
                            &query,
                            &mut c,
                        ) {
                            Ok(out) => {
                                let pres = out.pres();
                                for p in expect {
                                    assert!(
                                        pres.contains(p),
                                        "a concurrent write dropped baseline match pre={p}"
                                    );
                                }
                                queries_done.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                let msg = e.to_string();
                                assert!(
                                    msg.contains("no node") || msg.contains("epoch"),
                                    "concurrent query failed outside the conflict \
                                     contract: {msg}"
                                );
                                conflicts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            let mut db =
                ssx_core::RemoteDb::connect(addr, INGEST_SHARDS, map.clone(), seed.clone())
                    .expect("writer");
            let (mut rows, mut docs_in, mut docs_del) = (0u64, 0u64, 0u64);
            let mut live: Vec<u32> = Vec::new();
            let started = Instant::now();
            while started.elapsed() < Duration::from_millis(INGEST_WINDOW_MS) {
                let ins = db.insert_document(&ingest_doc).expect("insert");
                rows += ins.rows;
                docs_in += 1;
                live.push(ins.root_pre);
                if docs_in % 4 == 0 {
                    let pre = live.remove(0);
                    db.delete_document(pre).expect("delete");
                    docs_del += 1;
                }
            }
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            for pre in live {
                db.delete_document(pre).expect("restore delete");
            }
            stop.store(true, Ordering::Relaxed);
            (rows, docs_in, docs_del, wall_ms)
        });
        let router = ShardRouter::connect(addr, INGEST_SHARDS).expect("connect");
        let mut c = ClientFilter::new(router, map.clone(), seed.clone()).expect("client");
        let fin = Engine::run(
            EngineKind::Simple,
            MatchRule::Containment,
            &chain_query,
            &mut c,
        )
        .expect("final query");
        assert_eq!(
            &fin.pres(),
            &chain_reference,
            "deleting every inserted document must restore the baseline answer"
        );
        drop(c);
        let mut closer = ssx_core::TcpTransport::connect(addr).expect("closer");
        use ssx_core::Transport as _;
        closer
            .call(&ssx_core::protocol::Request::Shutdown)
            .expect("shutdown");
        drop(closer);
        host.join().expect("host join");
        let queries = queries_done.load(Ordering::Relaxed);
        let conflicts = conflicts.load(Ordering::Relaxed);
        assert!(
            queries > 0,
            "the query mix must make progress during ingest"
        );
        let rows_per_s = rows as f64 / (wall_ms / 1e3);
        let qps = queries as f64 / (wall_ms / 1e3);
        let cell = format!(
            "    {{ \"shards\": {INGEST_SHARDS}, \"query_threads\": {INGEST_QUERY_THREADS}, \
             \"rows_inserted\": {rows}, \"docs_inserted\": {docs_in}, \
             \"docs_deleted\": {docs_del}, \"wall_ms\": {wall_ms:.1}, \
             \"rows_per_s\": {rows_per_s:.0}, \"concurrent_queries\": {queries}, \
             \"concurrent_qps\": {qps:.1}, \"conflict_retries\": {conflicts} }}"
        );
        (rows_per_s, cell)
    };

    let spec_hit_rate = spec_hits_s1 as f64 / (spec_hits_s1 + spec_wasted_s1).max(1) as f64;
    let json = format!(
        "{{\n  \"schema\": \"ssxdb-bench/9\",\n  \"q\": 83,\n  \"elements\": {elements},\n  \
         \"ring_mul_coeff_ns\": {ring_mul_coeff_ns:.1},\n  \
         \"ring_mul_eval_ns\": {ring_mul_eval_ns:.1},\n  \
         \"ring_mul_speedup\": {:.1},\n  \
         \"to_evals_ns\": {to_evals_ns:.1},\n  \
         \"from_evals_ns\": {from_evals_ns:.1},\n  \
         \"eval_horner_ns\": {eval_horner_ns:.1},\n  \
         \"eval_o1_ns\": {eval_o1_ns:.1},\n  \
         \"mul_mod_batch_ns\": {mul_mod_batch_ns:.1},\n  \
         \"add_mod_batch_ns\": {add_mod_batch_ns:.1},\n  \
         \"pack_radix_ns\": {pack_ns:.1},\n  \
         \"unpack_radix_ns\": {unpack_ns:.1},\n  \
         \"node_encode_ns\": {node_encode_ns:.1},\n  \
         \"encode_rows_per_s_serial\": {encode_rows_per_s_serial:.0},\n  \
         \"encode_rows_per_s_parallel\": {encode_rows_per_s_parallel:.0},\n  \
         \"encode_threads\": {threads},\n  \
         \"decode_zero_copy_ns\": {decode_zero_copy_ns:.1},\n  \
         \"decode_owned_ns\": {decode_owned_ns:.1},\n  \
         \"query_table1_chain_simple_ms\": {query_simple_ms:.3},\n  \
         \"query_table1_chain_advanced_ms\": {query_advanced_ms:.3},\n  \
         \"round_trip_reduction_batched\": {rt_reduction:.1},\n  \
         \"fig5_chain_waves_baseline\": {rt_batched_s1},\n  \
         \"fig5_chain_waves_speculative\": {rt_speculative_s1},\n  \
         \"speculative_hits\": {spec_hits_s1},\n  \
         \"speculative_wasted\": {spec_wasted_s1},\n  \
         \"speculative_hit_rate\": {spec_hit_rate:.3},\n  \
         \"mux_speedup_8_clients\": {mux_speedup_8:.2},\n  \
         \"ingest_rows_per_s\": {ingest_rows_per_s:.0},\n  \
         \"agg_sum_qps\": {agg_sum_qps:.1},\n  \
         \"shard_batch_matrix\": [\n{}\n  ],\n  \
         \"fleet_matrix\": [\n{}\n  ],\n  \
         \"fleet_degraded\": [\n{degraded_cell}\n  ],\n  \
         \"ingest\": [\n{ingest_cell}\n  ],\n  \
         \"agg_matrix\": [\n{}\n  ],\n  \
         \"mux_matrix\": [\n{}\n  ]\n}}\n",
        ring_mul_coeff_ns / ring_mul_eval_ns.max(0.001),
        shard_cells.join(",\n"),
        fleet_cells.join(",\n"),
        agg_cells.join(",\n"),
        mux_cells.join(",\n"),
    );
    print!("{json}");
    std::fs::write(path, &json).expect("write bench json");
    println!("\nwrote {path}");
    // Asserted after the write so a regression still leaves the measured
    // numbers on disk (and in the CI log) for diagnosis.
    assert!(
        mux_8_ms <= threaded_8_ms,
        "mux must serve 8 concurrent clients in no more wall-clock than \
         thread-per-connection ({mux_8_ms:.3} ms vs {threaded_8_ms:.3} ms)"
    );
    // PR-9 no-regression pins against the committed BENCH_8.json baselines
    // (node_encode_ns 847.6, unpack_radix_ns 644.4, ring_mul_eval_ns 80.8).
    // These numbers are host-sensitive — the PR-8 seed itself measures ~40%
    // above its committed pin on a slower machine — so the tolerance is 2×:
    // wide enough to absorb host variance, tight enough that losing the
    // batched field plane (a 5-7× cliff) or an accidental O(n) in the
    // insert path still trips it.
    const BENCH8_NODE_ENCODE_NS: f64 = 847.6;
    const BENCH8_UNPACK_RADIX_NS: f64 = 644.4;
    const BENCH8_RING_MUL_EVAL_NS: f64 = 80.8;
    assert!(
        node_encode_ns <= BENCH8_NODE_ENCODE_NS * 2.0,
        "encode pin: node_encode_ns {node_encode_ns:.1} regressed past the \
         PR-8 baseline {BENCH8_NODE_ENCODE_NS} (2× host tolerance)"
    );
    assert!(
        unpack_ns <= BENCH8_UNPACK_RADIX_NS * 2.0,
        "decode pin: unpack_radix_ns {unpack_ns:.1} regressed past the \
         PR-8 baseline {BENCH8_UNPACK_RADIX_NS} (2× host tolerance)"
    );
    assert!(
        ring_mul_eval_ns <= BENCH8_RING_MUL_EVAL_NS * 2.0,
        "ring_mul_eval_ns {ring_mul_eval_ns:.1} regressed past the PR-8 \
         baseline {BENCH8_RING_MUL_EVAL_NS} (2× host tolerance)"
    );
    // PR-9 ingest gate, relative so it holds on any host: a wire insert is
    // an encode plus transport, fan-out and index maintenance, but it must
    // not cost more than 50× the pure serial encode path per row even with
    // a query mix running against the same store.
    assert!(
        ingest_rows_per_s * 50.0 >= encode_rows_per_s_serial,
        "ingest gate: {ingest_rows_per_s:.0} rows/s under query load is more \
         than 50× below the serial encode rate {encode_rows_per_s_serial:.0}"
    );
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Fig 4: encoding — output size, index size and time vs input size.
fn fig4() {
    banner("Figure 4 — Encoding: sizes and time vs input size (p=83, e=1)");
    let sizes: Vec<usize> = if full_sweep() {
        (1..=10).map(|mb| mb * 1024 * 1024).collect()
    } else {
        let base = (100.0 * 1024.0 * scale()) as usize;
        (1..=10).map(|i| i * base).collect()
    };
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "input(B)", "elements", "output(B)", "out/input", "index(B)", "structure%", "time(s)"
    );
    for target in sizes {
        let xml = document(target);
        let map = paper_map();
        let seed = paper_seed();
        let started = Instant::now();
        let out = encode_document(&xml, &map, &seed).expect("encode");
        let elapsed = started.elapsed();
        let report = out.table.size_report();
        println!(
            "{:>12} {:>10} {:>12} {:>12.2} {:>10} {:>11.1}% {:>10.3}",
            xml.len(),
            report.rows,
            report.data_bytes(),
            report.data_bytes() as f64 / xml.len() as f64,
            report.index_bytes,
            100.0 * report.structure_fraction(),
            elapsed.as_secs_f64()
        );
    }
    println!("\npaper shape: both sizes and time strictly linear in input;");
    println!("pre/post/parent ≈ 17% of output; output ≈ 1.5x input.");
}

/// Fig 5 / Table 1: evaluations vs query length, simple vs advanced.
fn fig5() {
    banner("Figure 5 / Table 1 — evaluations vs query length (containment test)");
    let bytes = (256.0 * 1024.0 * scale()) as usize;
    let mut db = build_db(bytes);
    println!("document: ~{bytes} bytes, {} elements\n", db.node_count());
    println!(
        "{:>3} {:<70} {:>10} {:>12} {:>14}",
        "#", "query", "output", "evals simple", "evals advanced"
    );
    for (i, q) in table1_queries().iter().enumerate() {
        let simple = db
            .query(q, EngineKind::Simple, MatchRule::Containment)
            .expect("simple");
        let advanced = db
            .query(q, EngineKind::Advanced, MatchRule::Containment)
            .expect("advanced");
        assert_eq!(simple.pres(), advanced.pres(), "engines must agree");
        println!(
            "{:>3} {:<70} {:>10} {:>12} {:>14}",
            i + 1,
            q,
            simple.result.len(),
            simple.stats.evaluations(),
            advanced.stats.evaluations()
        );
    }
    println!("\npaper shape: the two series differ by at most a constant factor;");
    println!("these chain queries are the advanced engine's worst case.");
}

/// Fig 6 / Table 2: execution time, engines x strictness.
fn fig6() {
    banner("Figure 6 / Table 2 — execution time (s): strictness x engine");
    let bytes = (256.0 * 1024.0 * scale()) as usize;
    let mut db = build_db(bytes);
    db.set_verify_equality(false); // timing runs skip the O(n^2) audit
    println!("document: ~{bytes} bytes, {} elements\n", db.node_count());
    println!(
        "{:>3} {:<34} {:>14} {:>14} {:>16} {:>14}",
        "#", "query", "nonstrict/simp", "strict/simp", "nonstrict/adv", "strict/adv"
    );
    for (i, q) in TABLE2.iter().enumerate() {
        let mut cells = Vec::new();
        for (kind, rule) in [
            (EngineKind::Simple, MatchRule::Containment),
            (EngineKind::Simple, MatchRule::Equality),
            (EngineKind::Advanced, MatchRule::Containment),
            (EngineKind::Advanced, MatchRule::Equality),
        ] {
            let out = db.query(q, kind, rule).expect("query");
            cells.push(out.stats.elapsed.as_secs_f64());
        }
        println!(
            "{:>3} {:<34} {:>14.4} {:>14.4} {:>16.4} {:>14.4}",
            i + 1,
            q,
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!("\npaper shape: advanced beats simple on every query; strict checking");
    println!("is sometimes slight overhead, sometimes a major improvement.");
}

/// Fig 7: accuracy of the containment test (E/C in percent).
fn fig7() {
    banner("Figure 7 — accuracy of the containment test (E/C, %)");
    let bytes = (256.0 * 1024.0 * scale()) as usize;
    let mut db = build_db(bytes);
    println!("document: ~{bytes} bytes, {} elements\n", db.node_count());
    println!(
        "{:>3} {:<34} {:>8} {:>8} {:>10} {:>6}",
        "#", "query", "|E|", "|C|", "accuracy", "//s"
    );
    for (i, q) in TABLE2.iter().enumerate() {
        let e = db
            .query(q, EngineKind::Advanced, MatchRule::Equality)
            .expect("E");
        let c = db
            .query(q, EngineKind::Advanced, MatchRule::Containment)
            .expect("C");
        let query = ssx_xpath::parse_query(q).unwrap();
        println!(
            "{:>3} {:<34} {:>8} {:>8} {:>9.1}% {:>6}",
            i + 1,
            q,
            e.result.len(),
            c.result.len(),
            accuracy_percent(e.result.len(), c.result.len()),
            query.descendant_step_count()
        );
    }
    // The paper's extra claim: absolute queries reach 100%.
    let absolute = "/site/regions/europe/item";
    let e = db
        .query(absolute, EngineKind::Advanced, MatchRule::Equality)
        .unwrap();
    let c = db
        .query(absolute, EngineKind::Advanced, MatchRule::Containment)
        .unwrap();
    println!(
        "\nabsolute control {absolute}: accuracy {:.1}%",
        accuracy_percent(e.result.len(), c.result.len())
    );
    println!("paper shape: accuracy drops with each // in the query.");
}

/// Ablation: the ring reduction (fig 1(c) → 1(d)).
///
/// The paper's §7 "storage overhead is reduced to 50%" refers to the 1.5×
/// output/input ratio of Fig 4 (overhead = 50% of the input). This
/// experiment quantifies the *reduction itself*: the unreduced encoding
/// stores `subtree_size + 1` coefficients per node (the root alone costs
/// one per document element, and sizes leak every subtree's cardinality to
/// the server); the reduced ring caps every node at `q − 1` coefficients —
/// uniform rows, no size leak, O(q) worst case instead of O(n).
fn reduction() {
    banner("Ablation — the ring reduction (unreduced vs reduced storage)");
    let bytes = (64.0 * 1024.0 * scale()) as usize;
    let xml = document(bytes);
    let doc = Document::parse(&xml).expect("parse");
    let q = 83u64;
    let n = (q - 1) as usize;
    // Subtree sizes via one pass (elements only).
    let mut unreduced_coeffs = 0usize;
    let mut capped_coeffs = 0usize; // sparse storage of the *reduced* polys
    let mut largest_node = 0usize;
    let mut oversized = 0usize; // nodes whose unreduced poly exceeds the ring
    let mut elements = 0usize;
    let mut zero_evals = 0usize; // zero components in the evaluation domain
    for id in doc.descendants(doc.root()) {
        if doc.name(id).is_none() {
            continue;
        }
        let subtree_elems = doc
            .descendants(id)
            .into_iter()
            .filter(|&d| doc.name(d).is_some())
            .count();
        // Unreduced degree = number of factors = subtree size.
        unreduced_coeffs += subtree_elems + 1;
        capped_coeffs += (subtree_elems + 1).min(n);
        largest_node = largest_node.max(subtree_elems + 1);
        if subtree_elems + 1 > n {
            oversized += 1;
        }
        elements += 1;
        // In the evaluation domain a node's component at v is zero iff v is
        // a tag value occurring in the subtree: distinct tags = zeros.
        let distinct: std::collections::HashSet<&str> = doc
            .descendants(id)
            .into_iter()
            .filter_map(|d| doc.name(d))
            .collect();
        zero_evals += distinct.len().min(n);
    }
    let dense_coeffs = elements * n; // what the system stores: uniform rows
    let bits = (q as f64).log2();
    let to_bytes = |coeffs: usize| (coeffs as f64 * bits / 8.0) as usize;
    println!(
        "document: {} elements ({} input bytes), q = {q}",
        elements,
        xml.len()
    );
    println!(
        "unreduced, sparse:      {:>10} coefficients = {:>9} B (largest node: {})",
        unreduced_coeffs,
        to_bytes(unreduced_coeffs),
        largest_node
    );
    println!(
        "reduced, sparse bound:  {:>10} coefficients = {:>9} B ({} nodes were over the cap)",
        capped_coeffs,
        to_bytes(capped_coeffs),
        oversized
    );
    println!(
        "reduced, dense (ours):  {:>10} coefficients = {:>9} B (uniform {}-coeff rows)",
        dense_coeffs,
        to_bytes(dense_coeffs),
        n
    );
    // The dual (evaluation-domain) representation is an isomorphic image:
    // n values per node, so its dense cost is identical — the speedup is
    // free of storage cost. The zero-component analysis below concerns the
    // *plaintext* node polynomials (zeros sit exactly at the subtree's
    // distinct tag values): even there a bitmap+nonzeros encoding barely
    // pays and would leak tag-set sizes — and what the server actually
    // stores are additive *shares*, which are uniformly random (zeros w.p.
    // 1/q at positions unrelated to tags), so no sparse encoding applies to
    // the stored rows at all. Quantified only to size the design space.
    let nonzero_vals = dense_coeffs - zero_evals;
    let bitmap_bytes = elements * n / 8;
    let sparse_eval_bytes = bitmap_bytes + to_bytes(nonzero_vals);
    println!(
        "reduced, dense, eval domain: {:>5} values       = {:>9} B (isomorphic image; identical cost)",
        dense_coeffs,
        to_bytes(dense_coeffs)
    );
    println!(
        "  …zero components of the *plaintext* polys: {} ({:.1}% — subtree tag sets);",
        zero_evals,
        100.0 * zero_evals as f64 / dense_coeffs.max(1) as f64
    );
    println!(
        "  …even plaintext bitmap+nonzeros would be {} B and leak tag-set sizes,",
        sparse_eval_bytes
    );
    println!("  …and the stored rows are uniformly random shares — not sparse at all");
    println!(
        "gap to the sparse lower bound: dense/capped = {:.1}x in either domain",
        dense_coeffs as f64 / capped_coeffs.max(1) as f64
    );
    println!("\nfindings: the reduction caps the worst node at q-1 = {n} coefficients");
    println!(
        "({}x smaller than the unreduced root here) and makes every row the",
        largest_node.div_ceil(n)
    );
    println!("same size — variable-length unreduced rows would leak every subtree's");
    println!("cardinality to the server. The paper's §7 '50% overhead' refers to the");
    println!("Fig 4 output/input ratio, which the fig4 experiment reproduces.");
}

/// §4 trie compression claims.
fn trie() {
    banner("Section 4 — trie compression statistics");
    let bytes = (256.0 * 1024.0 * scale()) as usize;
    let xml = document(bytes);
    let doc = Document::parse(&xml).expect("parse");
    let texts: Vec<&str> = doc
        .descendants(doc.root())
        .into_iter()
        .filter_map(|id| doc.text(id))
        .collect();
    let stats = corpus_stats(texts.iter().copied());
    // Polynomial cost at the paper's p = 29 example and at the trie-capable
    // p = 131 configuration.
    let poly29 = ssx_poly::radix_len(29, 28) as f64;
    let poly131 = ssx_poly::radix_len(131, 130) as f64;
    println!(
        "corpus: {} words, {} distinct",
        stats.word_occurrences, stats.distinct_words
    );
    println!("original characters:          {:>10}", stats.original_chars);
    println!(
        "after word dedup:             {:>10}  ({:.1}% reduction; paper: ~50%)",
        stats.deduped_chars,
        100.0 * stats.dedup_reduction()
    );
    println!(
        "compressed trie char nodes:   {:>10}  ({:.1}% reduction; paper: 75-80%)",
        stats.trie_char_nodes,
        100.0 * stats.trie_reduction()
    );
    println!("trie terminators:             {:>10}", stats.trie_terminals);
    println!(
        "bytes/letter at p=29 ({} B/poly):  {:>6.2}  (paper: ~3.5-4.5)",
        poly29,
        stats.bytes_per_letter(poly29)
    );
    // The paper's own arithmetic (17 B x 20-25% trie nodes) excludes the
    // terminator nodes; report that figure too for a like-for-like check.
    println!(
        "  …excluding terminators:          {:>6.2}  (the paper's arithmetic)",
        poly29 * stats.trie_char_nodes as f64 / stats.original_chars.max(1) as f64
    );
    println!(
        "bytes/letter at p=131 ({} B/poly): {:>6.2}  (our trie-enabled field)",
        poly131,
        stats.bytes_per_letter(poly131)
    );

    // End-to-end sizes: encode a small document with and without tries.
    let small = document((16.0 * 1024.0 * scale()) as usize);
    let small_doc = Document::parse(&small).unwrap();
    let base = EncryptedDb::encode(&small, paper_map(), paper_seed()).unwrap();
    let trie_doc = ssx_trie::transform_document(&small_doc, ssx_trie::TrieMode::Compressed);
    let mut names: Vec<String> = ssx_xmark::DTD_ELEMENTS
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend(ssx_trie::trie_alphabet());
    let trie_map = ssx_core::MapFile::sequential(131, 1, &names).unwrap();
    let trie_db = EncryptedDb::encode_doc(&trie_doc, trie_map, paper_seed()).unwrap();
    println!(
        "\nend-to-end on a {} input:",
        ssx_bench::human_bytes(small.len())
    );
    println!(
        "  tags only  (p=83):  {:>8} nodes, {:>10} B",
        base.node_count(),
        base.size_report().data_bytes()
    );
    println!(
        "  with tries (p=131): {:>8} nodes, {:>10} B  (text searchable)",
        trie_db.node_count(),
        trie_db.size_report().data_bytes()
    );
}
