//! Deterministic Miller–Rabin primality testing for `u64`.
//!
//! Validating the field characteristic `p` must not rely on probabilistic
//! guarantees: a composite `p` silently breaks every inverse computed by the
//! equality test. The witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31,
//! 37}` is proven deterministic for all `n < 3.317e24`, which covers `u64`.

/// Multiplies `a * b mod m` without overflow.
///
/// When the operands are already reduced and `m` fits in 32 bits — the
/// field-arithmetic hot path, where `m = p ≤ 2^24` — the product fits in a
/// `u64` and a single native reduction suffices. The 128-bit intermediate
/// path remains for large moduli (Miller–Rabin witnesses on `u64`
/// candidates) and unreduced operands.
#[inline]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    if m < (1 << 32) && a < m && b < m {
        (a * b) % m
    } else {
        ((a as u128 * b as u128) % m as u128) as u64
    }
}

/// Computes `base^exp mod m` by square-and-multiply.
#[inline]
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test for all `u64` values.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the extended-Euclid modular inverse of `a` modulo prime `p`.
///
/// Returns `None` when `a ≡ 0 (mod p)`.
pub fn inv_mod_prime(a: u64, p: u64) -> Option<u64> {
    let a = a % p;
    if a == 0 {
        return None;
    }
    // Extended Euclid on (a, p) tracking only the coefficient of `a`.
    let (mut old_r, mut r) = (a as i128, p as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    debug_assert_eq!(old_r, 1, "gcd(a, p) must be 1 for prime p and a != 0");
    let inv = old_s.rem_euclid(p as i128) as u64;
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_detected() {
        let primes = [2u64, 3, 5, 7, 11, 13, 29, 83, 97, 101, 131, 257, 65537];
        for p in primes {
            assert!(is_prime_u64(p), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 27, 49, 77, 91, 121, 561, 1105];
        for c in composites {
            assert!(!is_prime_u64(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that fool weak tests.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841] {
            assert!(!is_prime_u64(c), "Carmichael number {c} must be rejected");
        }
    }

    #[test]
    fn large_primes_and_neighbours() {
        assert!(is_prime_u64(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime_u64(18_446_744_073_709_551_555));
        assert!(is_prime_u64((1 << 61) - 1)); // Mersenne prime M61
    }

    #[test]
    fn pow_mod_matches_naive() {
        for m in [2u64, 3, 83, 97] {
            for b in 0..m.min(20) {
                let mut naive = 1u64 % m;
                for e in 0..12u64 {
                    assert_eq!(pow_mod(b, e, m), naive, "b={b} e={e} m={m}");
                    naive = mul_mod(naive, b, m);
                }
            }
        }
    }

    #[test]
    fn mul_mod_fast_and_wide_paths_agree() {
        // Small modulus, reduced operands: fast u64 path.
        assert_eq!(mul_mod(82, 82, 83), (82 * 82) % 83);
        // Small modulus, unreduced operands: must still be exact.
        assert_eq!(mul_mod(1 << 40, 1 << 40, 97), ((1u128 << 80) % 97) as u64);
        // Boundary: m just below and above 2^32.
        let m_small = (1u64 << 32) - 1;
        let m_large = (1u64 << 32) + 15;
        for (a, b) in [(m_small - 1, m_small - 2), (123_456_789, 987_654_321)] {
            assert_eq!(
                mul_mod(a, b, m_small),
                ((a as u128 * b as u128) % m_small as u128) as u64
            );
            assert_eq!(
                mul_mod(a, b, m_large),
                ((a as u128 * b as u128) % m_large as u128) as u64
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        for p in [2u64, 3, 5, 83, 131, 1009] {
            for a in 1..p.min(200) {
                let inv = inv_mod_prime(a, p).unwrap();
                assert_eq!(mul_mod(a, inv, p), 1, "a={a} p={p}");
            }
        }
        assert_eq!(inv_mod_prime(0, 83), None);
        assert_eq!(
            inv_mod_prime(83, 83),
            None,
            "multiples of p have no inverse"
        );
    }
}
