#![warn(missing_docs)]

//! Finite field arithmetic `F_{p^e}` for the secret-sharing XML database.
//!
//! The scheme of Brinkman et al. (SDM 2005) maps XML tag names into the
//! multiplicative part of a finite field `F_q` with `q = p^e` a prime power,
//! and encodes trees as polynomials over the ring `F_q[x]/(x^{q-1} - 1)`.
//! This crate provides the field layer:
//!
//! * [`FieldCtx`] — a runtime-parameterised field context supporting both
//!   prime fields (`e = 1`, the paper's `p = 83` configuration) and true
//!   extension fields (`e > 1`, constructed from a deterministically chosen
//!   irreducible polynomial).
//! * Deterministic Miller–Rabin primality testing for validating `p`
//!   ([`is_prime_u64`]).
//! * Rabin's irreducibility test over `F_p` used to build extension fields
//!   ([`fp_poly`]).
//!
//! Field elements are passed around as opaque `u64` *codes*: for `e = 1` the
//! code is the canonical representative in `[0, p)`; for `e > 1` the code is
//! the little-endian base-`p` digit packing of the polynomial-basis
//! coordinates. Codes are dense in `[0, q)`, which lets higher layers store
//! coefficients compactly and enumerate the field cheaply.
//!
//! # Example
//!
//! ```
//! use ssx_field::FieldCtx;
//!
//! // The paper's experimental configuration: F_83.
//! let f = FieldCtx::new(83, 1).unwrap();
//! let a = 17;
//! let b = 55;
//! let prod = f.mul(a, b);
//! assert_eq!(f.mul(prod, f.inv(b).unwrap()), a);
//!
//! // A true extension field, F_{3^4}.
//! let f81 = FieldCtx::new(3, 4).unwrap();
//! assert_eq!(f81.order(), 81);
//! let x = f81.element_from_digits(&[0, 1]); // the generator "x"
//! assert_eq!(f81.pow(x, 80), f81.one());    // x^(q-1) = 1
//! ```

pub mod ctx;
pub mod fp_poly;
pub mod primality;

pub use ctx::{Barrett, FieldCtx, FieldError, BATCH_LANES};
pub use primality::is_prime_u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_holds() {
        let f = FieldCtx::new(83, 1).unwrap();
        assert_eq!(f.order(), 83);
        assert_eq!(f.mul(f.inv(55).unwrap(), 55), 1);
    }
}
