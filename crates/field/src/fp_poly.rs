//! Polynomials over the prime field `F_p`, used to construct extension
//! fields `F_{p^e}`.
//!
//! This module is intentionally separate from the shared-polynomial ring in
//! `ssx-poly`: here polynomials are *construction scaffolding* (finding an
//! irreducible modulus, Rabin's test), whereas `ssx-poly` implements the
//! paper's encoding ring. Coefficients are canonical representatives in
//! `[0, p)` stored little-endian (index = degree).

use crate::primality::{inv_mod_prime, mul_mod};

/// A dense polynomial over `F_p`, little-endian coefficients, no trailing
/// zeros (the zero polynomial is the empty vector).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FpPoly {
    coeffs: Vec<u64>,
}

impl FpPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        FpPoly { coeffs: Vec::new() }
    }

    /// Builds a polynomial from little-endian coefficients, normalising
    /// trailing zeros and reducing mod `p`.
    pub fn from_coeffs(coeffs: &[u64], p: u64) -> Self {
        let mut c: Vec<u64> = coeffs.iter().map(|&x| x % p).collect();
        while c.last() == Some(&0) {
            c.pop();
        }
        FpPoly { coeffs: c }
    }

    /// The monomial `x`.
    pub fn x(p: u64) -> Self {
        FpPoly::from_coeffs(&[0, 1], p)
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Little-endian coefficient view.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Polynomial addition mod `p`.
    pub fn add(&self, other: &FpPoly, p: u64) -> FpPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u64; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *o = (a + b) % p;
        }
        FpPoly::from_coeffs(&out, p)
    }

    /// Polynomial subtraction mod `p`.
    pub fn sub(&self, other: &FpPoly, p: u64) -> FpPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u64; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *o = (a + p - b) % p;
        }
        FpPoly::from_coeffs(&out, p)
    }

    /// Schoolbook polynomial multiplication mod `p`.
    pub fn mul(&self, other: &FpPoly, p: u64) -> FpPoly {
        if self.is_zero() || other.is_zero() {
            return FpPoly::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] = (out[i + j] + mul_mod(a, b, p)) % p;
            }
        }
        FpPoly::from_coeffs(&out, p)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * div + r` and `deg r < deg div`. Panics if `div` is zero.
    pub fn divrem(&self, div: &FpPoly, p: u64) -> (FpPoly, FpPoly) {
        assert!(!div.is_zero(), "division by the zero polynomial");
        let dd = div.coeffs.len() - 1;
        let lead_inv = inv_mod_prime(*div.coeffs.last().unwrap(), p)
            .expect("leading coefficient invertible mod prime");
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (FpPoly::zero(), self.clone());
        }
        let mut quot = vec![0u64; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let factor = mul_mod(c, lead_inv, p);
            quot[i - dd] = factor;
            for (j, &dc) in div.coeffs.iter().enumerate() {
                let idx = i - dd + j;
                rem[idx] = (rem[idx] + p - mul_mod(factor, dc, p)) % p;
            }
        }
        (FpPoly::from_coeffs(&quot, p), FpPoly::from_coeffs(&rem, p))
    }

    /// Remainder of `self` modulo `m`.
    pub fn rem(&self, m: &FpPoly, p: u64) -> FpPoly {
        self.divrem(m, p).1
    }

    /// Monic greatest common divisor.
    pub fn gcd(&self, other: &FpPoly, p: u64) -> FpPoly {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.rem(&b, p);
            a = b;
            b = r;
        }
        a.make_monic(p);
        a
    }

    /// Scales so the leading coefficient is 1 (no-op on zero).
    pub fn make_monic(&mut self, p: u64) {
        if let Some(&lead) = self.coeffs.last() {
            if lead != 1 {
                let inv = inv_mod_prime(lead, p).expect("nonzero leading coeff");
                for c in &mut self.coeffs {
                    *c = mul_mod(*c, inv, p);
                }
            }
        }
    }

    /// Computes `base^exp mod (m, p)` by square-and-multiply.
    pub fn pow_mod(base: &FpPoly, mut exp: u64, m: &FpPoly, p: u64) -> FpPoly {
        let mut acc = FpPoly::from_coeffs(&[1], p);
        let mut b = base.rem(m, p);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&b, p).rem(m, p);
            }
            b = b.mul(&b, p).rem(m, p);
            exp >>= 1;
        }
        acc
    }
}

/// Rabin's irreducibility test over `F_p`.
///
/// A monic `f` of degree `e` is irreducible over `F_p` iff
/// `x^(p^e) ≡ x (mod f)` and for every prime divisor `r` of `e`,
/// `gcd(x^(p^(e/r)) − x, f) = 1`.
pub fn is_irreducible(f: &FpPoly, p: u64) -> bool {
    let e = match f.degree() {
        Some(d) if d >= 1 => d as u64,
        _ => return false,
    };
    let x = FpPoly::x(p);
    // x^(p^e) mod f, computed as e nested Frobenius powers to keep exponents
    // within u64 even for large p^e.
    let frob = |g: &FpPoly| FpPoly::pow_mod(g, p, f, p);
    let mut xq = x.clone();
    for _ in 0..e {
        xq = frob(&xq);
    }
    if xq.sub(&x, p) != FpPoly::zero() {
        return false;
    }
    for r in prime_divisors(e) {
        let mut xk = x.clone();
        for _ in 0..(e / r) {
            xk = frob(&xk);
        }
        let g = xk.sub(&x, p).gcd(f, p);
        if g.degree() != Some(0) {
            return false;
        }
    }
    true
}

/// Finds the lexicographically first monic irreducible polynomial of degree
/// `e` over `F_p` (deterministic so client and server always agree on the
/// field construction).
///
/// Returns the little-endian coefficients including the leading 1.
pub fn find_irreducible(p: u64, e: u32) -> Vec<u64> {
    assert!(e >= 2, "extension fields need e >= 2");
    let e = e as usize;
    // Enumerate the e low coefficients in base-p counting order.
    let mut digits = vec![0u64; e];
    loop {
        let mut coeffs = digits.clone();
        coeffs.push(1); // monic
        let f = FpPoly::from_coeffs(&coeffs, p);
        // Constant term 0 means divisible by x — skip cheaply.
        if digits[0] != 0 && is_irreducible(&f, p) {
            return coeffs;
        }
        // Increment base-p counter.
        let mut i = 0;
        loop {
            digits[i] += 1;
            if digits[i] < p {
                break;
            }
            digits[i] = 0;
            i += 1;
            assert!(i < e, "no irreducible polynomial found (impossible)");
        }
    }
}

fn prime_divisors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divrem_reconstructs() {
        let p = 7;
        let a = FpPoly::from_coeffs(&[3, 0, 5, 1, 6], p);
        let b = FpPoly::from_coeffs(&[2, 1, 1], p);
        let (q, r) = a.divrem(&b, p);
        let back = q.mul(&b, p).add(&r, p);
        assert_eq!(back, a);
        assert!(r.degree().is_none_or(|d| d < 2));
    }

    #[test]
    fn gcd_of_known_factors() {
        let p = 5;
        // (x-1)(x-2) and (x-1)(x-3) share the monic factor (x-1).
        let f1 = FpPoly::from_coeffs(&[4, 1], p).mul(&FpPoly::from_coeffs(&[3, 1], p), p);
        let f2 = FpPoly::from_coeffs(&[4, 1], p).mul(&FpPoly::from_coeffs(&[2, 1], p), p);
        let g = f1.gcd(&f2, p);
        assert_eq!(g, FpPoly::from_coeffs(&[4, 1], p));
    }

    #[test]
    fn known_irreducibles() {
        // x^2 + 1 over F_3 is irreducible (-1 is a non-residue mod 3).
        assert!(is_irreducible(&FpPoly::from_coeffs(&[1, 0, 1], 3), 3));
        // x^2 - 1 = (x-1)(x+1) is not.
        assert!(!is_irreducible(&FpPoly::from_coeffs(&[2, 0, 1], 3), 3));
        // x^2 + x + 1 over F_2 is the classic GF(4) modulus.
        assert!(is_irreducible(&FpPoly::from_coeffs(&[1, 1, 1], 2), 2));
        // x^8 + x^4 + x^3 + x + 1 (the AES modulus) over F_2.
        let aes = FpPoly::from_coeffs(&[1, 1, 0, 1, 1, 0, 0, 0, 1], 2);
        assert!(is_irreducible(&aes, 2));
        // x^8 + 1 = (x+1)^8 over F_2 is not irreducible.
        assert!(!is_irreducible(
            &FpPoly::from_coeffs(&[1, 0, 0, 0, 0, 0, 0, 0, 1], 2),
            2
        ));
    }

    #[test]
    fn find_irreducible_is_irreducible() {
        for (p, e) in [
            (2u64, 2u32),
            (2, 4),
            (2, 8),
            (3, 2),
            (3, 4),
            (5, 3),
            (7, 2),
            (29, 2),
        ] {
            let coeffs = find_irreducible(p, e);
            assert_eq!(coeffs.len(), e as usize + 1);
            assert_eq!(*coeffs.last().unwrap(), 1, "monic");
            let f = FpPoly::from_coeffs(&coeffs, p);
            assert!(is_irreducible(&f, p), "p={p} e={e}");
        }
    }

    #[test]
    fn find_irreducible_deterministic() {
        assert_eq!(find_irreducible(2, 2), find_irreducible(2, 2));
        assert_eq!(find_irreducible(3, 4), find_irreducible(3, 4));
    }

    #[test]
    fn prime_divisor_lists() {
        assert_eq!(prime_divisors(1), vec![]);
        assert_eq!(prime_divisors(2), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(97), vec![97]);
    }
}
