//! Runtime-parameterised finite field context.
//!
//! A [`FieldCtx`] fixes `q = p^e` once and then performs all element
//! arithmetic on dense `u64` codes in `[0, q)`. The context owns the
//! extension-field modulus (for `e > 1`) and precomputed powers of `p` so the
//! per-operation cost is a handful of integer instructions for prime fields
//! and `O(e^2)` digit work for extensions.

use crate::fp_poly::{find_irreducible, is_irreducible, FpPoly};
use crate::primality::{is_prime_u64, mul_mod};
use std::fmt;

/// Lane width of the batched kernels: slices are processed in explicit
/// 8-element chunks (branch-free, bounds-check-free straight-line bodies the
/// compiler can unroll or vectorize) with a scalar tail.
pub const BATCH_LANES: usize = 8;

/// Barrett reducer for a prime `p ≤ 2^24`: `reduce(r) = r mod p` for any
/// `u64` input using one widening multiply, one truncating multiply and one
/// conditional subtract — no hardware division.
///
/// With `recip = ⌊(2^64 − 1)/p⌋` the quotient estimate
/// `q̂ = ⌊r·recip/2^64⌋` satisfies `⌊r/p⌋ − 1 ≤ q̂ ≤ ⌊r/p⌋` for every
/// `r < 2^64`: the estimate undershoots `r/p` by at most `r/2^64 < 1` plus
/// the floor's sub-1 loss, and never overshoots because
/// `recip ≤ (2^64 − 1)/p`. Hence `r − q̂·p ∈ [0, 2p)` and a single
/// conditional subtract canonicalises.
#[derive(Clone, Copy, Debug)]
pub struct Barrett {
    p: u64,
    recip: u64,
}

impl Barrett {
    /// Builds the reducer for modulus `p` (`2 ≤ p ≤ 2^24`).
    #[inline]
    pub fn new(p: u64) -> Self {
        debug_assert!((2..=MAX_ORDER).contains(&p));
        Barrett {
            p,
            recip: u64::MAX / p,
        }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// `r mod p`, division-free.
    #[inline]
    pub fn reduce(&self, r: u64) -> u64 {
        let q = ((r as u128 * self.recip as u128) >> 64) as u64;
        let rem = r - q * self.p;
        if rem >= self.p {
            rem - self.p
        } else {
            rem
        }
    }

    /// `(a · b) mod p` for reduced operands.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce(a * b)
    }
}

/// Distinct prime factors of `n` by trial division (`n ≤ 2^24`, so the scan
/// is at most 4096 candidates).
fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Maximum supported extension degree. Extension elements are manipulated in
/// fixed stack buffers of this size.
pub const MAX_EXTENSION_DEGREE: u32 = 16;

/// Maximum supported field order. The shared-polynomial ring has `q - 1`
/// coefficients per node, so anything beyond this limit would be unusable in
/// practice anyway (the paper uses `q = 83`).
pub const MAX_ORDER: u64 = 1 << 24;

/// Errors raised while constructing or using a [`FieldCtx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// `p` failed the deterministic Miller–Rabin test.
    NotPrime(u64),
    /// `e` was zero or exceeded [`MAX_EXTENSION_DEGREE`].
    BadExtensionDegree(u32),
    /// `p^e` overflowed or exceeded [`MAX_ORDER`].
    OrderTooLarge {
        /// Characteristic.
        p: u64,
        /// Extension degree.
        e: u32,
    },
    /// A supplied modulus polynomial was not irreducible / not monic of
    /// degree `e`.
    BadModulus,
    /// An element code was out of range `[0, q)`.
    InvalidElement(u64),
}

impl fmt::Display for FieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldError::NotPrime(p) => write!(f, "{p} is not prime"),
            FieldError::BadExtensionDegree(e) => {
                write!(f, "extension degree {e} outside 1..={MAX_EXTENSION_DEGREE}")
            }
            FieldError::OrderTooLarge { p, e } => {
                write!(
                    f,
                    "field order {p}^{e} exceeds the supported maximum {MAX_ORDER}"
                )
            }
            FieldError::BadModulus => write!(f, "modulus is not a monic irreducible of degree e"),
            FieldError::InvalidElement(c) => write!(f, "element code {c} out of range"),
        }
    }
}

impl std::error::Error for FieldError {}

/// Precomputed multiplicative structure of `F_q^*`: powers of a fixed
/// generator and discrete logarithms. Built once per context (`O(q)` time
/// and space; `q ≤ 2^24` by [`MAX_ORDER`]), it turns `mul`/`inv`/`pow` into
/// table lookups that are uniform across prime and extension fields — no
/// per-call dispatch on `e`, no 128-bit `%`, no digit unpacking.
struct MulTables {
    /// The chosen generator `g`: the smallest element code of
    /// multiplicative order `q − 1`.
    generator: u64,
    /// `exp[i] = g^i` for `i in 0..n`, `n = q − 1`.
    exp: Vec<u32>,
    /// `log[a] = i` with `g^i = a` for `a in 1..q`; index 0 is unused.
    log: Vec<u32>,
}

/// A finite field `F_{p^e}` with elements encoded as dense `u64` codes.
#[derive(Clone)]
pub struct FieldCtx {
    p: u64,
    e: u32,
    q: u64,
    /// Little-endian coefficients of the monic irreducible modulus, length
    /// `e + 1`. Empty for prime fields.
    modulus: Vec<u64>,
    /// `p^i` for `i in 0..e` (code packing radix powers).
    p_pows: Vec<u64>,
    /// Barrett reducer mod `p` — the division-free reduction behind the
    /// batched kernels (prime fields reduce mod `p = q` directly).
    barrett: Barrett,
    /// Shared exp/log tables (cheap to clone).
    tables: std::sync::Arc<MulTables>,
}

impl fmt::Debug for FieldCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FieldCtx")
            .field("p", &self.p)
            .field("e", &self.e)
            .field("q", &self.q)
            .field("modulus", &self.modulus)
            .field("generator", &self.tables.generator)
            .finish()
    }
}

impl PartialEq for FieldCtx {
    fn eq(&self, other: &Self) -> bool {
        // The tables are derived data: two contexts are the same field iff
        // their defining parameters agree.
        self.p == other.p && self.e == other.e && self.modulus == other.modulus
    }
}

impl Eq for FieldCtx {}

impl FieldCtx {
    /// Constructs `F_{p^e}`, deterministically choosing the modulus for
    /// `e > 1` (lexicographically first monic irreducible).
    pub fn new(p: u64, e: u32) -> Result<Self, FieldError> {
        if !is_prime_u64(p) {
            return Err(FieldError::NotPrime(p));
        }
        if e == 0 || e > MAX_EXTENSION_DEGREE {
            return Err(FieldError::BadExtensionDegree(e));
        }
        let mut q: u64 = 1;
        for _ in 0..e {
            q = q.checked_mul(p).ok_or(FieldError::OrderTooLarge { p, e })?;
            if q > MAX_ORDER {
                return Err(FieldError::OrderTooLarge { p, e });
            }
        }
        let modulus = if e == 1 {
            Vec::new()
        } else {
            find_irreducible(p, e)
        };
        Ok(Self::assemble(p, e, q, modulus))
    }

    /// Constructs `F_{p^e}` with an explicitly supplied modulus (little-endian
    /// coefficients, must be monic irreducible of degree `e`). Useful when
    /// interoperating with an externally fixed field representation.
    pub fn with_modulus(p: u64, e: u32, modulus: Vec<u64>) -> Result<Self, FieldError> {
        if !is_prime_u64(p) {
            return Err(FieldError::NotPrime(p));
        }
        if !(2..=MAX_EXTENSION_DEGREE).contains(&e) {
            return Err(FieldError::BadExtensionDegree(e));
        }
        let mut q: u64 = 1;
        for _ in 0..e {
            q = q.checked_mul(p).ok_or(FieldError::OrderTooLarge { p, e })?;
            if q > MAX_ORDER {
                return Err(FieldError::OrderTooLarge { p, e });
            }
        }
        let f = FpPoly::from_coeffs(&modulus, p);
        if f.degree() != Some(e as usize)
            || *f.coeffs().last().unwrap() != 1
            || !is_irreducible(&f, p)
        {
            return Err(FieldError::BadModulus);
        }
        Ok(Self::assemble(p, e, q, f.coeffs().to_vec()))
    }

    fn assemble(p: u64, e: u32, q: u64, modulus: Vec<u64>) -> Self {
        let mut p_pows = Vec::with_capacity(e as usize);
        let mut acc = 1u64;
        for _ in 0..e {
            p_pows.push(acc);
            acc = acc.saturating_mul(p);
        }
        let mut ctx = FieldCtx {
            p,
            e,
            q,
            modulus,
            p_pows,
            barrett: Barrett::new(p),
            tables: std::sync::Arc::new(MulTables {
                generator: 1,
                exp: Vec::new(),
                log: Vec::new(),
            }),
        };
        ctx.tables = std::sync::Arc::new(ctx.build_tables());
        ctx
    }

    /// Multiplication from first principles (digit arithmetic / `mul_mod`),
    /// used only while the tables are being built.
    fn raw_mul(&self, a: u64, b: u64) -> u64 {
        if self.e == 1 {
            mul_mod(a, b, self.p)
        } else {
            self.ext_mul(a, b)
        }
    }

    fn raw_pow(&self, mut base: u64, mut exp: u64) -> u64 {
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.raw_mul(acc, base);
            }
            base = self.raw_mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Smallest element code generating the cyclic group `F_q^*`: `g` is a
    /// generator iff `g^{n/r} ≠ 1` for every prime `r | n`.
    fn find_generator(&self) -> u64 {
        let n = self.q - 1;
        if n == 1 {
            return 1;
        }
        let factors = distinct_prime_factors(n);
        'candidate: for g in 2..self.q {
            for &r in &factors {
                if self.raw_pow(g, n / r) == 1 {
                    continue 'candidate;
                }
            }
            return g;
        }
        unreachable!("F_q^* is cyclic, so a generator exists")
    }

    fn build_tables(&self) -> MulTables {
        let n = (self.q - 1) as usize;
        let generator = self.find_generator();
        let mut exp = vec![0u32; n];
        let mut log = vec![0u32; self.q as usize];
        let mut acc = 1u64;
        for (i, slot) in exp.iter_mut().enumerate() {
            *slot = acc as u32;
            log[acc as usize] = i as u32;
            acc = self.raw_mul(acc, generator);
        }
        debug_assert_eq!(acc, 1, "generator must have order q - 1");
        MulTables {
            generator,
            exp,
            log,
        }
    }

    /// Field characteristic `p`.
    #[inline]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Extension degree `e`.
    #[inline]
    pub fn e(&self) -> u32 {
        self.e
    }

    /// Field order `q = p^e`.
    #[inline]
    pub fn order(&self) -> u64 {
        self.q
    }

    /// Bits needed to store one element code: `ceil(log2 q)`.
    #[inline]
    pub fn bits_per_element(&self) -> u32 {
        64 - (self.q - 1).leading_zeros()
    }

    /// Exact information content of one element in bits: `log2 q`.
    pub fn exact_bits_per_element(&self) -> f64 {
        (self.q as f64).log2()
    }

    /// The modulus coefficients for `e > 1` (empty slice for prime fields).
    pub fn modulus(&self) -> &[u64] {
        &self.modulus
    }

    /// The additive identity.
    #[inline]
    pub fn zero(&self) -> u64 {
        0
    }

    /// The multiplicative identity.
    #[inline]
    pub fn one(&self) -> u64 {
        1
    }

    /// True iff `code` denotes a field element.
    #[inline]
    pub fn is_valid(&self, code: u64) -> bool {
        code < self.q
    }

    /// Iterates over every element code, `0..q`.
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        0..self.q
    }

    /// Iterates over the nonzero element codes, `1..q`. These are the values
    /// tag names may map to (the scheme evaluates at nonzero points only,
    /// since `x^{q-1} = 1` there).
    pub fn nonzero_elements(&self) -> impl Iterator<Item = u64> {
        1..self.q
    }

    /// Packs base-`p` digits (little-endian) into an element code. Digits
    /// beyond index `e - 1` must be zero; missing digits are zero.
    pub fn element_from_digits(&self, digits: &[u64]) -> u64 {
        let mut code = 0u64;
        for (i, &d) in digits.iter().enumerate() {
            assert!(d < self.p, "digit {d} out of range for p = {}", self.p);
            if i < self.e as usize {
                code += d * self.p_pows[i];
            } else {
                assert_eq!(d, 0, "digit index {i} beyond extension degree");
            }
        }
        code
    }

    /// Unpacks an element code into its `e` base-`p` digits (little-endian).
    pub fn digits_of(&self, code: u64) -> Vec<u64> {
        debug_assert!(self.is_valid(code));
        let mut c = code;
        let mut out = Vec::with_capacity(self.e as usize);
        for _ in 0..self.e {
            out.push(c % self.p);
            c /= self.p;
        }
        out
    }

    /// Addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.is_valid(a) && self.is_valid(b));
        if self.e == 1 {
            let s = a + b;
            if s >= self.p {
                s - self.p
            } else {
                s
            }
        } else {
            self.digitwise(a, b, |x, y| {
                let s = x + y;
                if s >= self.p {
                    s - self.p
                } else {
                    s
                }
            })
        }
    }

    /// Subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.is_valid(a) && self.is_valid(b));
        if self.e == 1 {
            if a >= b {
                a - b
            } else {
                a + self.p - b
            }
        } else {
            self.digitwise(a, b, |x, y| if x >= y { x - y } else { x + self.p - y })
        }
    }

    /// Additive inverse.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        self.sub(0, a)
    }

    /// Multiplication: one table-indexed exponent addition, uniform across
    /// prime and extension fields.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(self.is_valid(a) && self.is_valid(b));
        if a == 0 || b == 0 {
            return 0;
        }
        let t = &*self.tables;
        let n = self.q - 1;
        let s = t.log[a as usize] as u64 + t.log[b as usize] as u64;
        t.exp[(if s >= n { s - n } else { s }) as usize] as u64
    }

    /// Multiplicative inverse; `None` for zero. `g^{-k} = g^{n-k}`.
    #[inline]
    pub fn inv(&self, a: u64) -> Option<u64> {
        debug_assert!(self.is_valid(a));
        if a == 0 {
            return None;
        }
        let t = &*self.tables;
        let la = t.log[a as usize] as u64;
        Some(if la == 0 {
            1
        } else {
            t.exp[(self.q - 1 - la) as usize] as u64
        })
    }

    /// Division `a / b`; `None` when `b` is zero.
    pub fn div(&self, a: u64, b: u64) -> Option<u64> {
        self.inv(b).map(|ib| self.mul(a, ib))
    }

    /// Exponentiation: one multiplication in the exponent group `Z_{q-1}`.
    pub fn pow(&self, base: u64, exp: u64) -> u64 {
        debug_assert!(self.is_valid(base));
        if base == 0 {
            return if exp == 0 { 1 } else { 0 };
        }
        let n = (self.q - 1) as u128;
        let la = self.tables.log[base as usize] as u128;
        self.tables.exp[((la * exp as u128) % n) as usize] as u64
    }

    /// A fixed generator of the cyclic group `F_q^*` — the evaluation-point
    /// basis of the dual (evaluation-domain) polynomial representation.
    #[inline]
    pub fn generator(&self) -> u64 {
        self.tables.generator
    }

    /// Discrete logarithm base [`FieldCtx::generator`]: the unique
    /// `k ∈ [0, q−1)` with `g^k = a`. `None` for zero, which lies outside
    /// the multiplicative group. O(1) table lookup.
    #[inline]
    pub fn dlog(&self, a: u64) -> Option<u64> {
        debug_assert!(self.is_valid(a));
        if a == 0 {
            None
        } else {
            Some(self.tables.log[a as usize] as u64)
        }
    }

    /// `generator()^k` for `k ∈ [0, q−1)` — the inverse of
    /// [`FieldCtx::dlog`]. O(1) table lookup.
    #[inline]
    pub fn generator_pow(&self, k: u64) -> u64 {
        debug_assert!(k < self.q - 1);
        self.tables.exp[k as usize] as u64
    }

    /// The Barrett reducer mod `p`. For prime fields (`e = 1`) this reduces
    /// full element products; callers holding raw `u64` accumulators (packed
    /// radix conversion, DFT matrix-vector rows) reduce through it instead
    /// of dividing.
    #[inline]
    pub fn barrett(&self) -> Barrett {
        self.barrett
    }

    /// The full generator-power table `[g^0, g^1, …, g^{q−2}]` as `u32`
    /// element codes — the evaluation-point basis read sequentially by the
    /// batched evaluation-domain kernels.
    #[inline]
    pub fn generator_powers(&self) -> &[u32] {
        &self.tables.exp
    }

    // ------------------------------------------------------------------
    // Batched kernels.
    //
    // Each kernel walks its slices in explicit BATCH_LANES-wide chunks with
    // a scalar tail. The chunk bodies are branch-free and bounds-check-free
    // (fixed-size array patterns), so the compiler can unroll and, where the
    // ISA offers 64-bit lane products, vectorize them. Prime fields (e = 1)
    // take the Barrett path; extension fields fall back to the scalar ops
    // element by element — identical results either way, which the
    // proptests pin.
    // ------------------------------------------------------------------

    /// Elementwise `acc[i] ← acc[i] + rhs[i]`. Slices must be equal length.
    pub fn add_mod_batch(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "batch length mismatch");
        if self.e != 1 {
            for (a, &b) in acc.iter_mut().zip(rhs) {
                *a = self.add(*a, b);
            }
            return;
        }
        let p = self.p;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        let mut rt = rhs.chunks_exact(BATCH_LANES);
        for (ca, cb) in it.by_ref().zip(rt.by_ref()) {
            for (a, &b) in ca.iter_mut().zip(cb) {
                let s = *a + b;
                *a = if s >= p { s - p } else { s };
            }
        }
        for (a, &b) in it.into_remainder().iter_mut().zip(rt.remainder()) {
            let s = *a + b;
            *a = if s >= p { s - p } else { s };
        }
    }

    /// Elementwise `acc[i] ← acc[i] − rhs[i]`. Slices must be equal length.
    pub fn sub_mod_batch(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "batch length mismatch");
        if self.e != 1 {
            for (a, &b) in acc.iter_mut().zip(rhs) {
                *a = self.sub(*a, b);
            }
            return;
        }
        let p = self.p;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        let mut rt = rhs.chunks_exact(BATCH_LANES);
        for (ca, cb) in it.by_ref().zip(rt.by_ref()) {
            for (a, &b) in ca.iter_mut().zip(cb) {
                let d = *a + p - b;
                *a = if d >= p { d - p } else { d };
            }
        }
        for (a, &b) in it.into_remainder().iter_mut().zip(rt.remainder()) {
            let d = *a + p - b;
            *a = if d >= p { d - p } else { d };
        }
    }

    /// Elementwise `acc[i] ← acc[i] · rhs[i]`. Slices must be equal length.
    pub fn mul_mod_batch(&self, acc: &mut [u64], rhs: &[u64]) {
        assert_eq!(acc.len(), rhs.len(), "batch length mismatch");
        if self.e != 1 {
            for (a, &b) in acc.iter_mut().zip(rhs) {
                *a = self.mul(*a, b);
            }
            return;
        }
        let br = self.barrett;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        let mut rt = rhs.chunks_exact(BATCH_LANES);
        for (ca, cb) in it.by_ref().zip(rt.by_ref()) {
            for (a, &b) in ca.iter_mut().zip(cb) {
                *a = br.reduce(*a * b);
            }
        }
        for (a, &b) in it.into_remainder().iter_mut().zip(rt.remainder()) {
            *a = br.reduce(*a * b);
        }
    }

    /// Elementwise `acc[i] ← acc[i] · s` for a fixed scalar `s`.
    pub fn mul_scalar_batch(&self, acc: &mut [u64], s: u64) {
        debug_assert!(self.is_valid(s));
        if self.e != 1 {
            for a in acc.iter_mut() {
                *a = self.mul(*a, s);
            }
            return;
        }
        let br = self.barrett;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        for ca in it.by_ref() {
            for a in ca.iter_mut() {
                *a = br.reduce(*a * s);
            }
        }
        for a in it.into_remainder() {
            *a = br.reduce(*a * s);
        }
    }

    /// Elementwise fused multiply-add `acc[i] ← acc[i] + src[i] · s` — the
    /// inner step of the Lagrange combine. Slices must be equal length.
    pub fn mul_scalar_add_batch(&self, acc: &mut [u64], src: &[u64], s: u64) {
        assert_eq!(acc.len(), src.len(), "batch length mismatch");
        debug_assert!(self.is_valid(s));
        if self.e != 1 {
            for (a, &b) in acc.iter_mut().zip(src) {
                *a = self.add(*a, self.mul(b, s));
            }
            return;
        }
        let br = self.barrett;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        let mut rt = src.chunks_exact(BATCH_LANES);
        for (ca, cb) in it.by_ref().zip(rt.by_ref()) {
            for (a, &b) in ca.iter_mut().zip(cb) {
                *a = br.reduce(*a + b * s);
            }
        }
        for (a, &b) in it.into_remainder().iter_mut().zip(rt.remainder()) {
            *a = br.reduce(*a + b * s);
        }
    }

    /// Elementwise Horner step `acc[i] ← acc[i] · x + addend[i]` — the inner
    /// step of batched share splitting. Slices must be equal length.
    pub fn horner_scalar_batch(&self, acc: &mut [u64], addend: &[u64], x: u64) {
        assert_eq!(acc.len(), addend.len(), "batch length mismatch");
        debug_assert!(self.is_valid(x));
        if self.e != 1 {
            for (a, &b) in acc.iter_mut().zip(addend) {
                *a = self.add(self.mul(*a, x), b);
            }
            return;
        }
        let br = self.barrett;
        let mut it = acc.chunks_exact_mut(BATCH_LANES);
        let mut rt = addend.chunks_exact(BATCH_LANES);
        for (ca, cb) in it.by_ref().zip(rt.by_ref()) {
            for (a, &b) in ca.iter_mut().zip(cb) {
                *a = br.reduce(*a * x + b);
            }
        }
        for (a, &b) in it.into_remainder().iter_mut().zip(rt.remainder()) {
            *a = br.reduce(*a * x + b);
        }
    }

    /// Batched exp-table gather: `out[i] ← g^{ks[i]}` with every
    /// `ks[i] < q − 1`. Slices must be equal length.
    pub fn generator_pow_batch(&self, ks: &[u64], out: &mut [u64]) {
        assert_eq!(ks.len(), out.len(), "batch length mismatch");
        let exp = &self.tables.exp;
        for (o, &k) in out.iter_mut().zip(ks) {
            *o = exp[k as usize] as u64;
        }
    }

    /// Batched log-table gather: `out[i] ← dlog(src[i])` for nonzero inputs;
    /// zero (outside the multiplicative group) gathers the sentinel
    /// `u64::MAX`. Slices must be equal length.
    pub fn dlog_batch(&self, src: &[u64], out: &mut [u64]) {
        assert_eq!(src.len(), out.len(), "batch length mismatch");
        let log = &self.tables.log;
        for (o, &a) in out.iter_mut().zip(src) {
            debug_assert!(self.is_valid(a));
            *o = if a == 0 {
                u64::MAX
            } else {
                log[a as usize] as u64
            };
        }
    }

    #[inline]
    fn digitwise(&self, a: u64, b: u64, f: impl Fn(u64, u64) -> u64) -> u64 {
        let e = self.e as usize;
        let (mut ca, mut cb) = (a, b);
        let mut code = 0u64;
        for i in 0..e {
            let da = ca % self.p;
            let db = cb % self.p;
            ca /= self.p;
            cb /= self.p;
            code += f(da, db) * self.p_pows[i];
        }
        code
    }

    fn ext_mul(&self, a: u64, b: u64) -> u64 {
        let e = self.e as usize;
        debug_assert!(e <= MAX_EXTENSION_DEGREE as usize);
        let mut da = [0u64; MAX_EXTENSION_DEGREE as usize];
        let mut db = [0u64; MAX_EXTENSION_DEGREE as usize];
        let (mut ca, mut cb) = (a, b);
        for i in 0..e {
            da[i] = ca % self.p;
            db[i] = cb % self.p;
            ca /= self.p;
            cb /= self.p;
        }
        // Schoolbook product, degree up to 2e - 2.
        let mut prod = [0u64; 2 * MAX_EXTENSION_DEGREE as usize];
        #[allow(clippy::needless_range_loop)] // i indexes da, db and prod together
        for i in 0..e {
            if da[i] == 0 {
                continue;
            }
            for j in 0..e {
                prod[i + j] = (prod[i + j] + mul_mod(da[i], db[j], self.p)) % self.p;
            }
        }
        // Reduce by the monic modulus of degree e.
        #[allow(clippy::needless_range_loop)] // i walks prod from the top degree down
        for i in (e..2 * e - 1).rev() {
            let c = prod[i];
            if c == 0 {
                continue;
            }
            prod[i] = 0;
            for (j, &mc) in self.modulus[..e].iter().enumerate() {
                let idx = i - e + j;
                prod[idx] = (prod[idx] + self.p - mul_mod(c, mc, self.p)) % self.p;
            }
        }
        let mut code = 0u64;
        for (digit, pow) in prod[..e].iter().zip(&self.p_pows) {
            code += digit * pow;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(FieldCtx::new(84, 1).unwrap_err(), FieldError::NotPrime(84));
        assert_eq!(
            FieldCtx::new(83, 0).unwrap_err(),
            FieldError::BadExtensionDegree(0)
        );
        assert!(matches!(
            FieldCtx::new(83, 16).unwrap_err(),
            FieldError::OrderTooLarge { .. }
        ));
    }

    #[test]
    fn prime_field_arithmetic_small() {
        let f = FieldCtx::new(5, 1).unwrap();
        assert_eq!(f.add(3, 4), 2);
        assert_eq!(f.sub(1, 3), 3);
        assert_eq!(f.mul(3, 4), 2);
        assert_eq!(f.neg(2), 3);
        assert_eq!(f.inv(4), Some(4));
        assert_eq!(f.inv(0), None);
        assert_eq!(f.pow(2, 4), 1);
    }

    #[test]
    fn paper_field_f83() {
        let f = FieldCtx::new(83, 1).unwrap();
        assert_eq!(f.order(), 83);
        assert_eq!(f.bits_per_element(), 7);
        for a in f.nonzero_elements() {
            assert_eq!(f.pow(a, 82), 1, "Fermat little theorem at {a}");
        }
    }

    #[test]
    fn extension_field_gf4_table() {
        // GF(4) with modulus x^2 + x + 1; codes 0..4 = {0, 1, x, x+1}.
        let f = FieldCtx::new(2, 2).unwrap();
        assert_eq!(f.order(), 4);
        assert_eq!(f.modulus(), &[1, 1, 1]);
        let x = f.element_from_digits(&[0, 1]);
        let x1 = f.element_from_digits(&[1, 1]);
        assert_eq!(f.mul(x, x), x1, "x^2 = x + 1");
        assert_eq!(f.mul(x, x1), 1, "x * (x+1) = x^2 + x = 1");
        assert_eq!(f.inv(x), Some(x1));
    }

    #[test]
    fn extension_field_axioms_exhaustive_small() {
        for (p, e) in [(2u64, 2u32), (2, 3), (3, 2), (5, 2)] {
            let f = FieldCtx::new(p, e).unwrap();
            let q = f.order();
            for a in 0..q {
                assert_eq!(f.add(a, f.neg(a)), 0);
                if a != 0 {
                    let inv = f.inv(a).unwrap();
                    assert_eq!(f.mul(a, inv), 1, "p={p} e={e} a={a}");
                    assert_eq!(f.pow(a, q - 1), 1, "Lagrange at {a}");
                }
                for b in 0..q {
                    assert_eq!(f.add(a, b), f.add(b, a));
                    assert_eq!(f.mul(a, b), f.mul(b, a));
                    assert_eq!(f.sub(f.add(a, b), b), a);
                    for c in 0..q {
                        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                    }
                }
            }
        }
    }

    #[test]
    fn generator_and_dlog_invert_each_other() {
        for (p, e) in [(2u64, 1u32), (5, 1), (29, 1), (83, 1), (2, 2), (3, 3)] {
            let f = FieldCtx::new(p, e).unwrap();
            let g = f.generator();
            let n = f.order() - 1;
            // g generates: the dlog of every nonzero element is defined and
            // generator_pow inverts it.
            let mut seen = std::collections::HashSet::new();
            for a in f.nonzero_elements() {
                let k = f.dlog(a).unwrap();
                assert!(k < n, "p={p} e={e}");
                assert_eq!(f.generator_pow(k), a);
                assert!(seen.insert(k), "dlog must be injective");
            }
            assert_eq!(f.dlog(0), None);
            assert_eq!(f.dlog(g), if n == 1 { Some(0) } else { Some(1) });
            assert_eq!(f.pow(g, n), 1, "Lagrange on the generator");
        }
    }

    #[test]
    fn table_mul_matches_first_principles() {
        // Exhaustive cross-check of the table path against digit/`mul_mod`
        // arithmetic for one prime and one extension field.
        for (p, e) in [(83u64, 1u32), (3, 3)] {
            let f = FieldCtx::new(p, e).unwrap();
            for a in f.elements() {
                for b in f.elements() {
                    assert_eq!(f.mul(a, b), f.raw_mul(a, b), "p={p} e={e} {a}*{b}");
                }
                assert_eq!(f.pow(a, 5), f.raw_pow(a, 5));
            }
        }
    }

    #[test]
    fn pow_edge_cases() {
        let f = FieldCtx::new(5, 1).unwrap();
        assert_eq!(f.pow(0, 0), 1, "0^0 = 1 by convention");
        assert_eq!(f.pow(0, 7), 0);
        assert_eq!(f.pow(3, 0), 1);
        // Exponents far beyond q - 1 reduce correctly.
        assert_eq!(f.pow(2, u64::MAX), f.pow(2, u64::MAX % 4));
    }

    #[test]
    fn digit_packing_round_trips() {
        let f = FieldCtx::new(3, 4).unwrap();
        for code in f.elements() {
            let digits = f.digits_of(code);
            assert_eq!(f.element_from_digits(&digits), code);
        }
    }

    #[test]
    fn with_modulus_validates() {
        // x^2 + 1 is irreducible over F_3.
        assert!(FieldCtx::with_modulus(3, 2, vec![1, 0, 1]).is_ok());
        // x^2 + 2 = x^2 - 1 is reducible over F_3.
        assert_eq!(
            FieldCtx::with_modulus(3, 2, vec![2, 0, 1]).unwrap_err(),
            FieldError::BadModulus
        );
        // Wrong degree.
        assert_eq!(
            FieldCtx::with_modulus(3, 2, vec![1, 1]).unwrap_err(),
            FieldError::BadModulus
        );
    }

    #[test]
    fn bits_per_element_matches_paper_numbers() {
        // p = 29: the paper says a polynomial costs (q-1)·log2 q = 136.02 bits
        // and quotes "17 bytes" (truncated). The lossless size is 18 bytes;
        // the truncated figure is 17.
        let f = FieldCtx::new(29, 1).unwrap();
        let bits = (f.order() - 1) as f64 * f.exact_bits_per_element();
        assert_eq!((bits / 8.0).floor() as u64, 17, "paper's truncated figure");
        assert_eq!((bits / 8.0).ceil() as u64, 18, "lossless figure");
    }
}
