//! Property-based tests for the field layer: the axioms must hold for every
//! supported `(p, e)` combination and random elements.

use proptest::prelude::*;
use ssx_field::FieldCtx;

/// Strategy producing a supported field plus a sampler for elements of it.
fn arb_field() -> impl Strategy<Value = FieldCtx> {
    prop_oneof![
        Just(FieldCtx::new(2, 1).unwrap()),
        Just(FieldCtx::new(5, 1).unwrap()),
        Just(FieldCtx::new(29, 1).unwrap()),
        Just(FieldCtx::new(83, 1).unwrap()),
        Just(FieldCtx::new(131, 1).unwrap()),
        Just(FieldCtx::new(2, 8).unwrap()),
        Just(FieldCtx::new(3, 4).unwrap()),
        Just(FieldCtx::new(5, 3).unwrap()),
        Just(FieldCtx::new(29, 2).unwrap()),
    ]
}

fn field_and_elems(n: usize) -> impl Strategy<Value = (FieldCtx, Vec<u64>)> {
    arb_field().prop_flat_map(move |f| {
        let q = f.order();
        (Just(f), proptest::collection::vec(0..q, n))
    })
}

proptest! {
    #[test]
    fn additive_group((f, v) in field_and_elems(3)) {
        let (a, b, c) = (v[0], v[1], v[2]);
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        prop_assert_eq!(f.add(a, f.zero()), a);
        prop_assert_eq!(f.add(a, f.neg(a)), f.zero());
        prop_assert_eq!(f.sub(a, b), f.add(a, f.neg(b)));
    }

    #[test]
    fn multiplicative_structure((f, v) in field_and_elems(3)) {
        let (a, b, c) = (v[0], v[1], v[2]);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, f.one()), a);
        prop_assert_eq!(f.mul(a, f.zero()), f.zero());
        // Distributivity ties the two structures together.
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    }

    #[test]
    fn inverses_and_division((f, v) in field_and_elems(2)) {
        let (a, b) = (v[0], v[1]);
        if a != 0 {
            let inv = f.inv(a).unwrap();
            prop_assert_eq!(f.mul(a, inv), f.one());
            prop_assert_eq!(f.div(b, a), Some(f.mul(b, inv)));
        } else {
            prop_assert_eq!(f.inv(a), None);
            prop_assert_eq!(f.div(b, a), None);
        }
    }

    #[test]
    fn lagrange_and_pow((f, v) in field_and_elems(1)) {
        let a = v[0];
        if a != 0 {
            prop_assert_eq!(f.pow(a, f.order() - 1), f.one());
        }
        prop_assert_eq!(f.pow(a, 0), f.one());
        prop_assert_eq!(f.pow(a, 3), f.mul(f.mul(a, a), a));
    }

    #[test]
    fn digit_codec_round_trip((f, v) in field_and_elems(1)) {
        let a = v[0];
        prop_assert_eq!(f.element_from_digits(&f.digits_of(a)), a);
    }
}

/// A random prime `q ≤ 2^24` (the full supported order range): sample a bit
/// width, then scan upward from a random candidate to the next prime,
/// wrapping to the bottom of the width class if the scan leaves it.
fn arb_prime_q() -> impl Strategy<Value = u64> {
    (2u32..=24, any::<u64>()).prop_map(|(bits, raw)| {
        let lo = 1u64 << (bits - 1);
        let hi = 1u64 << bits;
        let mut cand = lo + raw % (hi - lo);
        loop {
            if cand >= hi {
                cand = lo;
            }
            if ssx_field::is_prime_u64(cand) {
                return cand;
            }
            cand += 1;
        }
    })
}

proptest! {
    /// The batched kernels must be element-for-element identical to the
    /// scalar ops for random primes across the whole supported order range
    /// and for every lane-tail length 0..=17 (BATCH_LANES = 8, so this
    /// covers empty, sub-lane, exactly-one-lane, lane+tail and two-lane+tail
    /// shapes).
    #[test]
    fn batched_kernels_match_scalar_random_prime(
        p in arb_prime_q(),
        raw_a in proptest::collection::vec(any::<u64>(), 17),
        raw_b in proptest::collection::vec(any::<u64>(), 17),
        raw_s in any::<u64>(),
        raw_x in any::<u64>(),
    ) {
        let f = FieldCtx::new(p, 1).unwrap();
        let q = f.order();
        let s = raw_s % q;
        let x = raw_x % q;
        for len in 0..=17usize {
            let a: Vec<u64> = raw_a[..len].iter().map(|&v| v % q).collect();
            let b: Vec<u64> = raw_b[..len].iter().map(|&v| v % q).collect();

            let mut got = a.clone();
            f.add_mod_batch(&mut got, &b);
            for i in 0..len {
                prop_assert_eq!(got[i], f.add(a[i], b[i]), "add p={} len={}", p, len);
            }

            let mut got = a.clone();
            f.sub_mod_batch(&mut got, &b);
            for i in 0..len {
                prop_assert_eq!(got[i], f.sub(a[i], b[i]), "sub p={} len={}", p, len);
            }

            let mut got = a.clone();
            f.mul_mod_batch(&mut got, &b);
            for i in 0..len {
                prop_assert_eq!(got[i], f.mul(a[i], b[i]), "mul p={} len={}", p, len);
            }

            let mut got = a.clone();
            f.mul_scalar_batch(&mut got, s);
            for i in 0..len {
                prop_assert_eq!(got[i], f.mul(a[i], s), "mul_scalar p={} len={}", p, len);
            }

            let mut got = a.clone();
            f.mul_scalar_add_batch(&mut got, &b, s);
            for i in 0..len {
                prop_assert_eq!(got[i], f.add(a[i], f.mul(b[i], s)), "fma p={} len={}", p, len);
            }

            let mut got = a.clone();
            f.horner_scalar_batch(&mut got, &b, x);
            for i in 0..len {
                prop_assert_eq!(got[i], f.add(f.mul(a[i], x), b[i]), "horner p={} len={}", p, len);
            }

            let ks: Vec<u64> = raw_a[..len].iter().map(|&v| v % (q - 1)).collect();
            let mut got = vec![0u64; len];
            f.generator_pow_batch(&ks, &mut got);
            for i in 0..len {
                prop_assert_eq!(got[i], f.generator_pow(ks[i]), "exp gather p={} len={}", p, len);
            }

            let mut got = vec![0u64; len];
            f.dlog_batch(&a, &mut got);
            for i in 0..len {
                prop_assert_eq!(got[i], f.dlog(a[i]).unwrap_or(u64::MAX), "log gather p={} len={}", p, len);
            }
        }
    }

    /// Same identity over the shared field menu — this is what exercises the
    /// extension-field (`e > 1`) fallback arm of every batched kernel.
    #[test]
    fn batched_kernels_match_scalar_all_fields(
        (f, v) in field_and_elems(34),
        raw_s in any::<u64>(),
    ) {
        let (a, b) = v.split_at(17);
        let s = raw_s % f.order();
        let mut add = a.to_vec();
        f.add_mod_batch(&mut add, b);
        let mut sub = a.to_vec();
        f.sub_mod_batch(&mut sub, b);
        let mut mul = a.to_vec();
        f.mul_mod_batch(&mut mul, b);
        let mut fma = a.to_vec();
        f.mul_scalar_add_batch(&mut fma, b, s);
        for i in 0..17 {
            prop_assert_eq!(add[i], f.add(a[i], b[i]));
            prop_assert_eq!(sub[i], f.sub(a[i], b[i]));
            prop_assert_eq!(mul[i], f.mul(a[i], b[i]));
            prop_assert_eq!(fma[i], f.add(a[i], f.mul(b[i], s)));
        }
    }
}
