//! Property-based tests for the field layer: the axioms must hold for every
//! supported `(p, e)` combination and random elements.

use proptest::prelude::*;
use ssx_field::FieldCtx;

/// Strategy producing a supported field plus a sampler for elements of it.
fn arb_field() -> impl Strategy<Value = FieldCtx> {
    prop_oneof![
        Just(FieldCtx::new(2, 1).unwrap()),
        Just(FieldCtx::new(5, 1).unwrap()),
        Just(FieldCtx::new(29, 1).unwrap()),
        Just(FieldCtx::new(83, 1).unwrap()),
        Just(FieldCtx::new(131, 1).unwrap()),
        Just(FieldCtx::new(2, 8).unwrap()),
        Just(FieldCtx::new(3, 4).unwrap()),
        Just(FieldCtx::new(5, 3).unwrap()),
        Just(FieldCtx::new(29, 2).unwrap()),
    ]
}

fn field_and_elems(n: usize) -> impl Strategy<Value = (FieldCtx, Vec<u64>)> {
    arb_field().prop_flat_map(move |f| {
        let q = f.order();
        (Just(f), proptest::collection::vec(0..q, n))
    })
}

proptest! {
    #[test]
    fn additive_group((f, v) in field_and_elems(3)) {
        let (a, b, c) = (v[0], v[1], v[2]);
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        prop_assert_eq!(f.add(a, f.zero()), a);
        prop_assert_eq!(f.add(a, f.neg(a)), f.zero());
        prop_assert_eq!(f.sub(a, b), f.add(a, f.neg(b)));
    }

    #[test]
    fn multiplicative_structure((f, v) in field_and_elems(3)) {
        let (a, b, c) = (v[0], v[1], v[2]);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, f.one()), a);
        prop_assert_eq!(f.mul(a, f.zero()), f.zero());
        // Distributivity ties the two structures together.
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    }

    #[test]
    fn inverses_and_division((f, v) in field_and_elems(2)) {
        let (a, b) = (v[0], v[1]);
        if a != 0 {
            let inv = f.inv(a).unwrap();
            prop_assert_eq!(f.mul(a, inv), f.one());
            prop_assert_eq!(f.div(b, a), Some(f.mul(b, inv)));
        } else {
            prop_assert_eq!(f.inv(a), None);
            prop_assert_eq!(f.div(b, a), None);
        }
    }

    #[test]
    fn lagrange_and_pow((f, v) in field_and_elems(1)) {
        let a = v[0];
        if a != 0 {
            prop_assert_eq!(f.pow(a, f.order() - 1), f.one());
        }
        prop_assert_eq!(f.pow(a, 0), f.one());
        prop_assert_eq!(f.pow(a, 3), f.mul(f.mul(a, a), a));
    }

    #[test]
    fn digit_codec_round_trip((f, v) in field_and_elems(1)) {
        let a = v[0];
        prop_assert_eq!(f.element_from_digits(&f.digits_of(a)), a);
    }
}
