//! Extension-field correctness beyond the axioms: known field tables,
//! Frobenius identities and interop with an externally fixed modulus.

use ssx_field::FieldCtx;

#[test]
fn aes_field_interop() {
    // GF(2^8) with the AES modulus x^8 + x^4 + x^3 + x + 1. Element codes
    // coincide with the usual byte representation, so known AES facts hold.
    let f = FieldCtx::with_modulus(2, 8, vec![1, 1, 0, 1, 1, 0, 0, 0, 1]).unwrap();
    assert_eq!(f.order(), 256);
    // {02} * {87} = {15} xor ... classic AES mixcolumns fact: 0x02 * 0x87 = 0x15.
    assert_eq!(f.mul(0x02, 0x87), 0x15);
    // {53} * {CA} = {01} (a known inverse pair in the AES field).
    assert_eq!(f.mul(0x53, 0xCA), 0x01);
    assert_eq!(f.inv(0x53), Some(0xCA));
    // x^255 = 1 for all nonzero x.
    for x in [0x01u64, 0x02, 0x53, 0xCA, 0xFF] {
        assert_eq!(f.pow(x, 255), 1);
    }
}

#[test]
fn frobenius_is_additive() {
    // In characteristic p: (x + y)^p = x^p + y^p (the freshman's dream).
    for (p, e) in [(3u64, 3u32), (5, 2), (7, 2), (2, 8)] {
        let f = FieldCtx::new(p, e).unwrap();
        let q = f.order();
        let samples: Vec<u64> = (0..q).step_by((q / 17).max(1) as usize).collect();
        for &x in &samples {
            for &y in &samples {
                let lhs = f.pow(f.add(x, y), p);
                let rhs = f.add(f.pow(x, p), f.pow(y, p));
                assert_eq!(lhs, rhs, "p={p} e={e} x={x} y={y}");
            }
        }
    }
}

#[test]
fn frobenius_fixes_exactly_the_prime_subfield() {
    // x^p = x holds exactly for the p elements of the prime subfield.
    let f = FieldCtx::new(3, 4).unwrap();
    let fixed: Vec<u64> = f.elements().filter(|&x| f.pow(x, 3) == x).collect();
    assert_eq!(fixed, vec![0, 1, 2], "prime subfield of F_81");
}

#[test]
fn multiplicative_group_is_cyclic_of_order_q_minus_1() {
    // Some element must have full order q-1 (a generator exists).
    let f = FieldCtx::new(2, 6).unwrap(); // F_64
    let q = f.order();
    let order_of = |g: u64| -> u64 {
        let mut acc = g;
        let mut k = 1;
        while acc != 1 {
            acc = f.mul(acc, g);
            k += 1;
        }
        k
    };
    let has_generator = f.nonzero_elements().any(|g| order_of(g) == q - 1);
    assert!(has_generator, "F_64* must be cyclic with a generator");
    // Element orders divide q - 1 (Lagrange).
    for g in f.nonzero_elements() {
        assert_eq!((q - 1) % order_of(g), 0);
    }
}

#[test]
fn subfield_embedding_consistency() {
    // Elements 0..p of F_{p^e} behave exactly like F_p under +/*.
    let base = FieldCtx::new(5, 1).unwrap();
    let ext = FieldCtx::new(5, 3).unwrap();
    for a in 0..5u64 {
        for b in 0..5u64 {
            assert_eq!(base.add(a, b), ext.add(a, b));
            assert_eq!(base.mul(a, b), ext.mul(a, b));
            if b != 0 {
                assert_eq!(base.inv(b), ext.inv(b), "prime-subfield inverses agree");
            }
        }
    }
}

#[test]
fn order_and_degree_limits_enforced() {
    // The largest supported extension degree works…
    assert!(FieldCtx::new(2, 16).is_ok());
    // …one beyond it is rejected (degree limit),
    assert!(FieldCtx::new(2, 17).is_err());
    // and orders above MAX_ORDER = 2^24 are rejected even at small degree:
    // 257^3 ≈ 16.9M > 16.7M.
    assert!(FieldCtx::new(257, 3).is_err());
    assert!(FieldCtx::new(257, 2).is_ok(), "257^2 = 66049 is fine");
}
