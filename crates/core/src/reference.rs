//! Plaintext reference evaluation — the ground truth.
//!
//! Runs the same query semantics directly on the parsed document. Under
//! [`MatchRule::Equality`] this is exact XPath-subset evaluation; under
//! [`MatchRule::Containment`] it mirrors the paper's weaker test ("keep the
//! node when its subtree contains the tag"). The encrypted engines must
//! agree with this oracle node-for-node — that is the central correctness
//! property of the reproduction, and the denominator/numerator source for
//! the Fig 7 accuracy metric.

use crate::engine::MatchRule;
use crate::error::CoreError;
use ssx_xml::{Document, NodeId};
use ssx_xpath::{Axis, NodeTest, Query};
use std::collections::{BTreeSet, HashMap};

/// Evaluates `query` on the plaintext document, returning matching element
/// `pre` numbers (paper numbering) in document order.
pub fn reference_eval(
    doc: &Document,
    query: &Query,
    rule: MatchRule,
) -> Result<Vec<u32>, CoreError> {
    if query.has_text_predicates() {
        return Err(CoreError::Unsupported(
            "expand_text_predicates() before reference evaluation".into(),
        ));
    }
    let ctx = RefCtx::new(doc);
    let mut frontier: Vec<NodeId> = vec![doc.root()];
    for (i, step) in query.steps.iter().enumerate() {
        if frontier.is_empty() {
            break;
        }
        frontier = match &step.test {
            NodeTest::Parent => {
                if step.axis == Axis::Descendant {
                    return Err(CoreError::Unsupported("'//..' is not supported".into()));
                }
                if i == 0 {
                    return Err(CoreError::Unsupported("'/..' cannot start a query".into()));
                }
                let set: BTreeSet<NodeId> =
                    frontier.iter().filter_map(|&n| doc.parent(n)).collect();
                set.into_iter().collect()
            }
            NodeTest::Star => ctx.expand(doc, &frontier, step.axis, i == 0),
            NodeTest::Name(name) => {
                let candidates = ctx.expand(doc, &frontier, step.axis, i == 0);
                let mut out = Vec::new();
                for c in candidates {
                    let keep = match rule {
                        MatchRule::Equality => doc.name(c) == Some(name.as_str()),
                        MatchRule::Containment => ctx.contains(doc, c, name),
                    };
                    if keep {
                        out.push(c);
                    }
                }
                out
            }
        };
    }
    let mut pres: Vec<u32> = frontier.iter().map(|n| ctx.pre_of[n]).collect();
    pres.sort_unstable();
    Ok(pres)
}

struct RefCtx {
    pre_of: HashMap<NodeId, u32>,
}

impl RefCtx {
    fn new(doc: &Document) -> Self {
        let pre_of = doc
            .pre_post_numbering()
            .into_iter()
            .map(|(id, pre, ..)| (id, pre))
            .collect();
        RefCtx { pre_of }
    }

    /// Candidate expansion identical to the engines' (elements only).
    fn expand(&self, doc: &Document, frontier: &[NodeId], axis: Axis, first: bool) -> Vec<NodeId> {
        let mut set: BTreeSet<NodeId> = BTreeSet::new();
        match axis {
            Axis::Child => {
                if first {
                    set.extend(frontier.iter().copied());
                } else {
                    for &f in frontier {
                        set.extend(doc.child_elements(f));
                    }
                }
            }
            Axis::Descendant => {
                if first {
                    set.extend(frontier.iter().copied());
                }
                for &f in frontier {
                    set.extend(
                        doc.descendants(f)
                            .into_iter()
                            .filter(|&d| d != f && doc.name(d).is_some()),
                    );
                }
            }
        }
        set.into_iter().collect()
    }

    /// Subtree-contains check (includes the node itself, like the
    /// polynomial containment test).
    fn contains(&self, doc: &Document, node: NodeId, name: &str) -> bool {
        doc.descendants(node)
            .into_iter()
            .any(|d| doc.name(d) == Some(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_xpath::parse_query;

    fn doc() -> Document {
        Document::parse("<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>").unwrap()
    }

    fn eval(q: &str, rule: MatchRule) -> Vec<u32> {
        reference_eval(&doc(), &parse_query(q).unwrap(), rule).unwrap()
    }

    #[test]
    fn equality_results() {
        assert_eq!(eval("/site", MatchRule::Equality), vec![1]);
        assert_eq!(eval("/site/a", MatchRule::Equality), vec![2, 5]);
        assert_eq!(eval("//c", MatchRule::Equality), vec![4, 6, 9]);
        assert_eq!(eval("/site/b//c", MatchRule::Equality), vec![9]);
        assert_eq!(eval("/site/a/../b", MatchRule::Equality), vec![7]);
        assert_eq!(eval("/*/*", MatchRule::Equality), vec![2, 5, 7]);
    }

    #[test]
    fn containment_results() {
        assert_eq!(eval("/site/a", MatchRule::Containment), vec![2, 5, 7]);
        // Children whose subtree contains a c: b(3), c(6), a(8).
        assert_eq!(eval("/site/a/c", MatchRule::Containment), vec![3, 6, 8]);
    }

    #[test]
    fn containment_superset_of_equality() {
        for q in ["/site/a", "//c", "/site//a", "//b/c"] {
            let e = eval(q, MatchRule::Equality);
            let c = eval(q, MatchRule::Containment);
            assert!(e.iter().all(|p| c.contains(p)), "{q}");
        }
    }

    #[test]
    fn text_nodes_invisible() {
        let doc = Document::parse("<site><a>text here</a></site>").unwrap();
        let res =
            reference_eval(&doc, &parse_query("/site/a").unwrap(), MatchRule::Equality).unwrap();
        assert_eq!(res, vec![2]);
    }
}
