//! Plaintext reference evaluation — the ground truth.
//!
//! Runs the same query semantics directly on the parsed document. Under
//! [`MatchRule::Equality`] this is exact XPath-subset evaluation; under
//! [`MatchRule::Containment`] it mirrors the paper's weaker test ("keep the
//! node when its subtree contains the tag"). The encrypted engines must
//! agree with this oracle node-for-node — that is the central correctness
//! property of the reproduction, and the denominator/numerator source for
//! the Fig 7 accuracy metric.

use crate::encode::parse_numeric_text;
use crate::engine::MatchRule;
use crate::error::CoreError;
use ssx_xml::{Document, NodeId, NodeKind};
use ssx_xpath::{Axis, NodeTest, Query};
use std::collections::{BTreeSet, HashMap};

/// Evaluates `query` on the plaintext document, returning matching element
/// `pre` numbers (paper numbering) in document order.
pub fn reference_eval(
    doc: &Document,
    query: &Query,
    rule: MatchRule,
) -> Result<Vec<u32>, CoreError> {
    if query.has_text_predicates() {
        return Err(CoreError::Unsupported(
            "expand_text_predicates() before reference evaluation".into(),
        ));
    }
    let ctx = RefCtx::new(doc);
    let mut frontier: Vec<NodeId> = vec![doc.root()];
    for (i, step) in query.steps.iter().enumerate() {
        if frontier.is_empty() {
            break;
        }
        frontier = match &step.test {
            NodeTest::Parent => {
                if step.axis == Axis::Descendant {
                    return Err(CoreError::Unsupported("'//..' is not supported".into()));
                }
                if i == 0 {
                    return Err(CoreError::Unsupported("'/..' cannot start a query".into()));
                }
                let set: BTreeSet<NodeId> =
                    frontier.iter().filter_map(|&n| doc.parent(n)).collect();
                set.into_iter().collect()
            }
            NodeTest::Star => ctx.expand(doc, &frontier, step.axis, i == 0),
            NodeTest::Name(name) => {
                let candidates = ctx.expand(doc, &frontier, step.axis, i == 0);
                let mut out = Vec::new();
                for c in candidates {
                    let keep = match rule {
                        MatchRule::Equality => doc.name(c) == Some(name.as_str()),
                        MatchRule::Containment => ctx.contains(doc, c, name),
                    };
                    if keep {
                        out.push(c);
                    }
                }
                out
            }
        };
    }
    let mut pres: Vec<u32> = frontier.iter().map(|n| ctx.pre_of[n]).collect();
    pres.sort_unstable();
    Ok(pres)
}

/// A plaintext aggregate answer: the ground truth the encrypted
/// aggregation plane must reproduce bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefAggregate {
    /// Matching nodes (after the range filter, when one was given).
    pub count: u64,
    /// Matches that carried a numeric value into the sum.
    pub contributing: u64,
    /// Exact total of the contributing values.
    pub sum: u128,
}

impl RefAggregate {
    /// The exact average as `(numerator, denominator)`; `None` when no
    /// match contributed a value.
    pub fn avg(&self) -> Option<(u128, u64)> {
        (self.contributing > 0).then_some((self.sum, self.contributing))
    }
}

/// The numeric value of an element under the shared encoder rule
/// ([`parse_numeric_text`]): no element children, exactly one
/// non-whitespace text child, clean digits that fit the ring's capacity.
/// Mirrors the streaming encoder's `NumAcc` accumulator exactly — the two
/// planes must never disagree about which elements are numeric.
pub fn reference_numeric_value(doc: &Document, id: NodeId, ring_len: usize) -> Option<u64> {
    if doc.child_elements(id).next().is_some() {
        return None;
    }
    let mut value_text: Option<&str> = None;
    for &c in doc.children(id) {
        if let NodeKind::Text(t) = doc.kind(c) {
            if t.trim().is_empty() {
                continue;
            }
            if value_text.is_some() {
                return None; // a second non-whitespace run poisons
            }
            value_text = Some(t);
        }
    }
    parse_numeric_text(value_text?, ring_len)
}

/// Evaluates an aggregate on the plaintext document: runs the predicate
/// through [`reference_eval`], applies the optional inclusive value range,
/// and folds the numeric values in ordinary integers. COUNT is `count`,
/// SUM is `sum`, AVG is [`RefAggregate::avg`] — op-independent on purpose
/// so one oracle answer checks all three.
pub fn reference_aggregate(
    doc: &Document,
    query: &Query,
    rule: MatchRule,
    ring_len: usize,
    range: Option<(u64, u64)>,
) -> Result<RefAggregate, CoreError> {
    let pres = reference_eval(doc, query, rule)?;
    let id_of: HashMap<u32, NodeId> = doc
        .pre_post_numbering()
        .into_iter()
        .map(|(id, pre, ..)| (pre, id))
        .collect();
    let mut out = RefAggregate {
        count: 0,
        contributing: 0,
        sum: 0,
    };
    for pre in pres {
        let id = id_of[&pre];
        let v = reference_numeric_value(doc, id, ring_len);
        match range {
            Some((lo, hi)) => {
                if let Some(v) = v {
                    if lo <= v && v <= hi {
                        out.count += 1;
                        out.contributing += 1;
                        out.sum += v as u128;
                    }
                }
            }
            None => {
                out.count += 1;
                if let Some(v) = v {
                    out.contributing += 1;
                    out.sum += v as u128;
                }
            }
        }
    }
    Ok(out)
}

struct RefCtx {
    pre_of: HashMap<NodeId, u32>,
}

impl RefCtx {
    fn new(doc: &Document) -> Self {
        let pre_of = doc
            .pre_post_numbering()
            .into_iter()
            .map(|(id, pre, ..)| (id, pre))
            .collect();
        RefCtx { pre_of }
    }

    /// Candidate expansion identical to the engines' (elements only).
    fn expand(&self, doc: &Document, frontier: &[NodeId], axis: Axis, first: bool) -> Vec<NodeId> {
        let mut set: BTreeSet<NodeId> = BTreeSet::new();
        match axis {
            Axis::Child => {
                if first {
                    set.extend(frontier.iter().copied());
                } else {
                    for &f in frontier {
                        set.extend(doc.child_elements(f));
                    }
                }
            }
            Axis::Descendant => {
                if first {
                    set.extend(frontier.iter().copied());
                }
                for &f in frontier {
                    set.extend(
                        doc.descendants(f)
                            .into_iter()
                            .filter(|&d| d != f && doc.name(d).is_some()),
                    );
                }
            }
        }
        set.into_iter().collect()
    }

    /// Subtree-contains check (includes the node itself, like the
    /// polynomial containment test).
    fn contains(&self, doc: &Document, node: NodeId, name: &str) -> bool {
        doc.descendants(node)
            .into_iter()
            .any(|d| doc.name(d) == Some(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_xpath::parse_query;

    fn doc() -> Document {
        Document::parse("<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>").unwrap()
    }

    fn eval(q: &str, rule: MatchRule) -> Vec<u32> {
        reference_eval(&doc(), &parse_query(q).unwrap(), rule).unwrap()
    }

    #[test]
    fn equality_results() {
        assert_eq!(eval("/site", MatchRule::Equality), vec![1]);
        assert_eq!(eval("/site/a", MatchRule::Equality), vec![2, 5]);
        assert_eq!(eval("//c", MatchRule::Equality), vec![4, 6, 9]);
        assert_eq!(eval("/site/b//c", MatchRule::Equality), vec![9]);
        assert_eq!(eval("/site/a/../b", MatchRule::Equality), vec![7]);
        assert_eq!(eval("/*/*", MatchRule::Equality), vec![2, 5, 7]);
    }

    #[test]
    fn containment_results() {
        assert_eq!(eval("/site/a", MatchRule::Containment), vec![2, 5, 7]);
        // Children whose subtree contains a c: b(3), c(6), a(8).
        assert_eq!(eval("/site/a/c", MatchRule::Containment), vec![3, 6, 8]);
    }

    #[test]
    fn containment_superset_of_equality() {
        for q in ["/site/a", "//c", "/site//a", "//b/c"] {
            let e = eval(q, MatchRule::Equality);
            let c = eval(q, MatchRule::Containment);
            assert!(e.iter().all(|p| c.contains(p)), "{q}");
        }
    }

    #[test]
    fn numeric_rule_mirrors_the_encoder() {
        let doc = Document::parse(
            "<s><a>42</a><b> 7 </b><c>4 2</c><d>-1</d><e>x1</e><f><g/>3</f><h></h></s>",
        )
        .unwrap();
        let vals: Vec<Option<u64>> = doc
            .child_elements(doc.root())
            .map(|id| reference_numeric_value(&doc, id, 82))
            .collect();
        assert_eq!(
            vals,
            vec![
                Some(42), // clean digits
                Some(7),  // surrounding whitespace trims
                None,     // inner space is not a number
                None,     // signs are plain text
                None,     // mixed alphanumerics
                None,     // element children poison
                None,     // empty
            ]
        );
        // Capacity: a value needing more bits than the ring has digits is
        // plain text, exactly like the encoder.
        let big = Document::parse("<s><a>16</a></s>").unwrap();
        let a = big.child_elements(big.root()).next().unwrap();
        assert_eq!(reference_numeric_value(&big, a, 4), None, "16 needs 5 bits");
        assert_eq!(reference_numeric_value(&big, a, 5), Some(16));
    }

    #[test]
    fn aggregate_counts_sums_and_ranges() {
        let doc = Document::parse(
            "<site><item><price>10</price></item><item><price>25</price></item>\
             <item><price>7</price></item><item><name>x</name></item></site>",
        )
        .unwrap();
        let q = parse_query("//price").unwrap();
        let all = reference_aggregate(&doc, &q, MatchRule::Equality, 82, None).unwrap();
        assert_eq!(
            all,
            RefAggregate {
                count: 3,
                contributing: 3,
                sum: 42
            }
        );
        assert_eq!(all.avg(), Some((42, 3)));
        let ranged = reference_aggregate(&doc, &q, MatchRule::Equality, 82, Some((8, 30))).unwrap();
        assert_eq!(ranged.count, 2);
        assert_eq!(ranged.sum, 35);
        // Matches without values count but do not contribute…
        let items = parse_query("/site/item").unwrap();
        let i = reference_aggregate(&doc, &items, MatchRule::Equality, 82, None).unwrap();
        assert_eq!((i.count, i.contributing, i.sum), (4, 0, 0));
        assert_eq!(i.avg(), None);
        // …and fail a range outright.
        let r = reference_aggregate(&doc, &items, MatchRule::Equality, 82, Some((0, u64::MAX)))
            .unwrap();
        assert_eq!(r.count, 0);
    }

    #[test]
    fn text_nodes_invisible() {
        let doc = Document::parse("<site><a>text here</a></site>").unwrap();
        let res =
            reference_eval(&doc, &parse_query("/site/a").unwrap(), MatchRule::Equality).unwrap();
        assert_eq!(res, vec![2]);
    }
}
