//! The unified error type for the core system.

use ssx_poly::{PackError, RingError};
use ssx_store::StoreError;
use ssx_xml::XmlError;
use ssx_xpath::ParseError;
use std::fmt;

/// Anything that can go wrong between parsing a document and answering a
/// query.
#[derive(Debug)]
pub enum CoreError {
    /// Map file problems: duplicate values, zero values, syntax errors.
    Map(String),
    /// A tag in the document or query has no map entry.
    UnknownTag(String),
    /// Field/ring construction or arithmetic failure.
    Ring(RingError),
    /// Storage layer failure.
    Store(StoreError),
    /// Packed polynomial decode failure.
    Pack(PackError),
    /// XML parse failure.
    Xml(XmlError),
    /// Query parse failure.
    Query(ParseError),
    /// Transport-level failure (socket I/O, codec, protocol mismatch).
    Transport(String),
    /// A call exceeded its deadline (see `transport::Deadline`): the peer
    /// is alive enough to hold the connection open but too slow to answer.
    Timeout(String),
    /// A query construct the engines cannot execute (e.g. `//..`).
    Unsupported(String),
    /// The equality test could not form a quotient (children cover the
    /// whole multiplicative group) — degenerate, see `ssx_poly::extract_root`.
    Indeterminate {
        /// `pre` of the node whose equality test failed.
        pre: u32,
    },
    /// Share reconstruction produced an inconsistent polynomial (corruption).
    Corrupt(String),
    /// A writer raced a multi-wave read: the store epoch moved between the
    /// snapshot wave and the closing wave, so the answer would mix two
    /// states. Retry from a fresh snapshot — the typed twin of the cursor
    /// epoch fence.
    EpochConflict(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Map(m) => write!(f, "map error: {m}"),
            CoreError::UnknownTag(t) => write!(f, "tag '{t}' has no map entry"),
            CoreError::Ring(e) => write!(f, "ring error: {e}"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Pack(e) => write!(f, "pack error: {e}"),
            CoreError::Xml(e) => write!(f, "xml error: {e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Transport(m) => write!(f, "transport error: {m}"),
            CoreError::Timeout(m) => write!(f, "deadline exceeded: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            CoreError::Indeterminate { pre } => {
                write!(f, "equality test indeterminate at node pre={pre}")
            }
            CoreError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            CoreError::EpochConflict(m) => write!(f, "epoch conflict: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<RingError> for CoreError {
    fn from(e: RingError) -> Self {
        CoreError::Ring(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<PackError> for CoreError {
    fn from(e: PackError) -> Self {
        CoreError::Pack(e)
    }
}

impl From<XmlError> for CoreError {
    fn from(e: XmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::UnknownTag("zap".into()), "zap"),
            (CoreError::Map("dup".into()), "dup"),
            (CoreError::Indeterminate { pre: 7 }, "pre=7"),
            (CoreError::Unsupported("//..".into()), "//.."),
            (CoreError::Timeout("call exceeded 100ms".into()), "deadline"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
