//! The map file: the secret injective assignment `tag name → F_q \ {0}`.
//!
//! "The map file is a property file where each line is of the form
//! `name = value` … The map file is just a text file which stores the
//! mapping between tag names and corresponding values from `F_{p^e}`"
//! (§5.1). Like the seed, it must be kept on the client: with it an
//! adversary can evaluate containment tests of its own.

use crate::error::CoreError;
use ssx_field::FieldCtx;
use ssx_prg::Prg;
use std::collections::BTreeMap;
use std::path::Path;

/// A validated tag-name ↔ field-value mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapFile {
    p: u64,
    e: u32,
    by_name: BTreeMap<String, u64>,
}

impl MapFile {
    /// Assigns values `1, 2, 3, …` to `names` in order — deterministic and
    /// compact; used by tests and the benchmarks.
    pub fn sequential<S: AsRef<str>>(p: u64, e: u32, names: &[S]) -> Result<Self, CoreError> {
        let field = FieldCtx::new(p, e).map_err(|err| CoreError::Map(err.to_string()))?;
        if names.len() as u64 > field.order() - 1 {
            return Err(CoreError::Map(format!(
                "{} names need q > {}, got q = {}",
                names.len(),
                names.len(),
                field.order()
            )));
        }
        let mut by_name = BTreeMap::new();
        for (i, n) in names.iter().enumerate() {
            if by_name
                .insert(n.as_ref().to_string(), i as u64 + 1)
                .is_some()
            {
                return Err(CoreError::Map(format!("duplicate name '{}'", n.as_ref())));
            }
        }
        Ok(MapFile { p, e, by_name })
    }

    /// Assigns uniformly random distinct nonzero values (a fresh secret
    /// mapping — what a real deployment would use).
    pub fn random<S: AsRef<str>>(
        p: u64,
        e: u32,
        names: &[S],
        prg: &mut Prg,
    ) -> Result<Self, CoreError> {
        let field = FieldCtx::new(p, e).map_err(|err| CoreError::Map(err.to_string()))?;
        let q = field.order();
        if names.len() as u64 > q - 1 {
            return Err(CoreError::Map(format!(
                "{} names do not fit in F_{q} (only {} nonzero values)",
                names.len(),
                q - 1
            )));
        }
        // Partial Fisher-Yates over the nonzero values.
        let mut pool: Vec<u64> = (1..q).collect();
        let mut by_name = BTreeMap::new();
        for n in names {
            let i = prg.next_below(pool.len() as u64) as usize;
            let v = pool.swap_remove(i);
            if by_name.insert(n.as_ref().to_string(), v).is_some() {
                return Err(CoreError::Map(format!("duplicate name '{}'", n.as_ref())));
            }
        }
        Ok(MapFile { p, e, by_name })
    }

    /// Field characteristic.
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Extension degree.
    pub fn e(&self) -> u32 {
        self.e
    }

    /// Number of mapped names.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when no names are mapped.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The value of `name`, or [`CoreError::UnknownTag`].
    pub fn value(&self, name: &str) -> Result<u64, CoreError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownTag(name.to_string()))
    }

    /// Non-failing lookup.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).copied()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.by_name.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Serialises to the property format, with `#`-comment header carrying
    /// the field parameters.
    pub fn to_property_string(&self) -> String {
        let mut out = format!("# ssxdb map file\n# p = {}\n# e = {}\n", self.p, self.e);
        for (name, value) in &self.by_name {
            out.push_str(&format!("{name} = {value}\n"));
        }
        out
    }

    /// Parses the property format produced by
    /// [`MapFile::to_property_string`]; validates injectivity, nonzero
    /// values and field membership.
    pub fn from_property_string(text: &str) -> Result<Self, CoreError> {
        let mut p = None;
        let mut e = None;
        let mut entries: Vec<(String, u64)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let c = comment.trim();
                if let Some(v) = c.strip_prefix("p =") {
                    p = Some(
                        v.trim()
                            .parse::<u64>()
                            .map_err(|_| CoreError::Map(format!("line {}: bad p", lineno + 1)))?,
                    );
                } else if let Some(v) = c.strip_prefix("e =") {
                    e = Some(
                        v.trim()
                            .parse::<u32>()
                            .map_err(|_| CoreError::Map(format!("line {}: bad e", lineno + 1)))?,
                    );
                }
                continue;
            }
            let (name, value) = line.split_once('=').ok_or_else(|| {
                CoreError::Map(format!("line {}: expected 'name = value'", lineno + 1))
            })?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| CoreError::Map(format!("line {}: bad value", lineno + 1)))?;
            entries.push((name.trim().to_string(), value));
        }
        let p = p.ok_or_else(|| CoreError::Map("missing '# p = …' header".into()))?;
        let e = e.ok_or_else(|| CoreError::Map("missing '# e = …' header".into()))?;
        let field = FieldCtx::new(p, e).map_err(|err| CoreError::Map(err.to_string()))?;
        let mut by_name = BTreeMap::new();
        let mut seen_values = std::collections::BTreeSet::new();
        for (name, value) in entries {
            if value == 0 || !field.is_valid(value) {
                return Err(CoreError::Map(format!(
                    "value {value} for '{name}' outside 1..{}",
                    field.order()
                )));
            }
            if !seen_values.insert(value) {
                return Err(CoreError::Map(format!("value {value} assigned twice")));
            }
            if by_name.insert(name.clone(), value).is_some() {
                return Err(CoreError::Map(format!("name '{name}' assigned twice")));
            }
        }
        Ok(MapFile { p, e, by_name })
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| CoreError::Map(format!("read {}: {err}", path.display())))?;
        Self::from_property_string(&text)
    }

    /// Saves to a file.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        std::fs::write(path, self.to_property_string())
            .map_err(|err| CoreError::Map(format!("write {}: {err}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_assignment() {
        let m = MapFile::sequential(5, 1, &["a", "b", "c"]).unwrap();
        // The paper's figure 1(b): a=2, b=1, c=3 is one valid assignment;
        // sequential gives a=1, b=2, c=3 — any injective nonzero map works.
        assert_eq!(m.value("a").unwrap(), 1);
        assert_eq!(m.value("c").unwrap(), 3);
        assert!(matches!(m.value("zap"), Err(CoreError::UnknownTag(_))));
    }

    #[test]
    fn too_many_names_rejected() {
        let names: Vec<String> = (0..5).map(|i| format!("n{i}")).collect();
        assert!(
            MapFile::sequential(5, 1, &names).is_err(),
            "only 4 nonzero values in F_5"
        );
        assert!(MapFile::sequential(7, 1, &names).is_ok());
    }

    #[test]
    fn random_assignment_is_injective_and_nonzero() {
        let names: Vec<String> = (0..77).map(|i| format!("tag{i}")).collect();
        let m = MapFile::random(83, 1, &names, &mut Prg::from_u64(3)).unwrap();
        let mut values: Vec<u64> = m.iter().map(|(_, v)| v).collect();
        assert!(values.iter().all(|&v| (1..83).contains(&v)));
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 77);
    }

    #[test]
    fn property_round_trip() {
        let names: Vec<String> = (0..10).map(|i| format!("el{i}")).collect();
        let m = MapFile::random(29, 1, &names, &mut Prg::from_u64(1)).unwrap();
        let text = m.to_property_string();
        let back = MapFile::from_property_string(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_validations() {
        let base = "# p = 5\n# e = 1\n";
        assert!(
            MapFile::from_property_string(&format!("{base}a = 0\n")).is_err(),
            "zero value"
        );
        assert!(
            MapFile::from_property_string(&format!("{base}a = 5\n")).is_err(),
            "out of field"
        );
        assert!(
            MapFile::from_property_string(&format!("{base}a = 1\nb = 1\n")).is_err(),
            "value collision"
        );
        assert!(
            MapFile::from_property_string(&format!("{base}a = 1\na = 2\n")).is_err(),
            "name collision"
        );
        assert!(
            MapFile::from_property_string("a = 1\n").is_err(),
            "missing header"
        );
        assert!(MapFile::from_property_string(&format!("{base}garbage\n")).is_err());
        // Clean parse with whitespace and blank lines.
        let ok = MapFile::from_property_string(&format!("{base}\n  a  =  3 \n")).unwrap();
        assert_eq!(ok.value("a").unwrap(), 3);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ssx_core_map_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.properties");
        let m = MapFile::sequential(83, 1, &["x", "y"]).unwrap();
        m.save(&path).unwrap();
        assert_eq!(MapFile::load(&path).unwrap(), m);
        std::fs::remove_file(&path).ok();
    }
}
