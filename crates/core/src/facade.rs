//! One-stop construction: encode a document, keep the server in-process,
//! query it. What examples, tests and benchmarks use when they do not need
//! to wire the pieces manually.

use crate::client::ClientFilter;
use crate::encode::{encode_document, encode_dom, EncodeStats};
use crate::engine::{Engine, EngineKind, MatchRule, QueryOutcome};
use crate::error::CoreError;
use crate::map::MapFile;
use crate::server::ServerFilter;
use crate::transport::LocalTransport;
use ssx_poly::RingCtx;
use ssx_prg::Seed;
use ssx_store::SizeReport;
use ssx_xml::Document;
use ssx_xpath::parse_query;
use std::path::Path;

/// An encrypted database with an in-process server.
pub struct EncryptedDb {
    client: ClientFilter<LocalTransport>,
    encode_stats: EncodeStats,
}

impl EncryptedDb {
    /// Encodes `xml` under `map` and `seed`.
    pub fn encode(xml: &str, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        let out = encode_document(xml, &map, &seed)?;
        let server = ServerFilter::new(out.table, out.ring);
        let client = ClientFilter::new(LocalTransport::new(server), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: out.stats,
        })
    }

    /// Encodes a DOM (for trie-transformed documents).
    pub fn encode_doc(doc: &Document, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        let out = encode_dom(doc, &map, &seed)?;
        let server = ServerFilter::new(out.table, out.ring);
        let client = ClientFilter::new(LocalTransport::new(server), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: out.stats,
        })
    }

    /// Parses and runs a query text.
    pub fn query(
        &mut self,
        query_text: &str,
        kind: EngineKind,
        rule: MatchRule,
    ) -> Result<QueryOutcome, CoreError> {
        let query = parse_query(query_text)?.expand_text_predicates();
        Engine::run(kind, rule, &query, &mut self.client)
    }

    /// Runs an already-parsed query.
    pub fn run(
        &mut self,
        query: &ssx_xpath::Query,
        kind: EngineKind,
        rule: MatchRule,
    ) -> Result<QueryOutcome, CoreError> {
        Engine::run(kind, rule, query, &mut self.client)
    }

    /// The client filter (tests and custom protocols).
    pub fn client_mut(&mut self) -> &mut ClientFilter<LocalTransport> {
        &mut self.client
    }

    /// Encoding statistics of the build.
    pub fn encode_stats(&self) -> EncodeStats {
        self.encode_stats
    }

    /// Server-side table sizes (Fig 4 series).
    pub fn size_report(&self) -> SizeReport {
        self.client.transport().server().table().size_report()
    }

    /// Number of encoded elements.
    pub fn node_count(&self) -> usize {
        self.client.transport().server().table().len()
    }

    /// Toggle full verification of equality-test quotients.
    pub fn set_verify_equality(&mut self, verify: bool) {
        self.client.verify_equality = verify;
    }

    /// Toggle the client-share cache (memory for speed; transparent to
    /// query results). Enabling uses
    /// [`crate::client::DEFAULT_SHARE_CACHE_CAP`].
    pub fn set_share_cache(&mut self, enabled: bool) {
        self.client.set_share_cache(enabled);
    }

    /// Enable the client-share cache with an explicit capacity (in shares);
    /// `cap = 0` disables it. The cache is a bounded clock cache: memory
    /// stays under `cap · (q − 1)` words no matter the database size.
    pub fn set_share_cache_capacity(&mut self, cap: usize) {
        self.client.set_share_cache_capacity(cap);
    }

    /// Persists the server table. The map and seed are *not* written — they
    /// are the client's secrets and travel separately.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        ssx_store::save_table(self.client.transport().server().table(), path)?;
        Ok(())
    }

    /// Reopens a persisted table with the client secrets. Fails with a
    /// descriptive error when the map's field parameters do not match the
    /// table's packed polynomial size.
    pub fn load(path: &Path, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        let table = ssx_store::load_table(path)?;
        let ring = RingCtx::new(map.p(), map.e())?;
        let expected = ssx_poly::Packer::new(&ring).radix_len();
        if expected != table.poly_len() {
            return Err(CoreError::Map(format!(
                "map is for F_{}^{} ({} B/polynomial) but the table stores {} B/polynomial",
                map.p(),
                map.e(),
                expected,
                table.poly_len()
            )));
        }
        let server = ServerFilter::new(table, ring);
        let client = ClientFilter::new(LocalTransport::new(server), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> EncryptedDb {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        EncryptedDb::encode("<site><a><b/></a><c/></site>", map, seed).unwrap()
    }

    #[test]
    fn query_through_facade() {
        let mut db = demo();
        let out = db
            .query("/site/a/b", EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.pres(), vec![3]);
        assert_eq!(db.node_count(), 4);
        assert!(db.size_report().data_bytes() > 0);
        assert_eq!(db.encode_stats().elements, 4);
    }

    #[test]
    fn save_load_requery() {
        let db = demo();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.ssxdb");
        db.save(&path).unwrap();

        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        let mut back = EncryptedDb::load(&path, map, seed).unwrap();
        let out = back
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.pres(), vec![3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_map_parameters_rejected_on_load() {
        let db = demo();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db2.ssxdb");
        db.save(&path).unwrap();
        // p = 29 produces a different packed length: a typed error, no panic.
        let wrong_map = MapFile::sequential(29, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        match EncryptedDb::load(&path, wrong_map, seed) {
            Err(CoreError::Map(msg)) => assert!(msg.contains("polynomial"), "{msg}"),
            other => panic!("expected a Map error, got {:?}", other.map(|_| "db")),
        }
        std::fs::remove_file(&path).ok();
    }
}
