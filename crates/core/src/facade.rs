//! One-stop construction: encode a document, keep the server in-process,
//! query it. What examples, tests and benchmarks use when they do not need
//! to wire the pieces manually.
//!
//! The in-process query plane is the sharded one: a
//! [`ShardRouter`] over one [`crate::transport::LocalTransport`] per shard.
//! The default is a single shard — byte- and round-trip-identical to the
//! monolithic server — and [`EncryptedDb::encode_sharded`] (or
//! [`EncryptedDb::load_sharded`]) partitions the same table across `S`
//! independent server filters.
//!
//! The facade is generic over its transport: the default parameter is the
//! in-process plane, [`EncryptedDb::connect`] opens the same interface onto
//! a remote thread-per-connection host, and [`EncryptedDb::connect_mux`]
//! onto a multiplexed [`crate::transport::serve_tcp_mux`] host — many
//! `connect_mux` databases built on one [`MuxPool`] overlap their query
//! waves on a single socket per shard.

use crate::aggregate::{run_aggregate, AggOp, AggregateOutcome, AggregateSpec};
use crate::client::ClientFilter;
use crate::encode::{
    encode_document, encode_document_at, encode_document_fleet, encode_dom, numeric_pre,
    EncodeOutput, EncodeStats, FleetEncodeOutput, FleetSpec,
};
use crate::engine::{Engine, EngineKind, MatchRule, QueryOutcome};
use crate::error::CoreError;
use crate::fleet::{
    connect_fleet, connect_fleet_mux, local_fleet_router, FleetTransport, LocalPartyTransport,
    PartyStatus, ResilienceConfig,
};
use crate::map::MapFile;
use crate::router::ShardRouter;
use crate::shard::ShardedServer;
use crate::transport::{LocalTransport, MuxPool, MuxTransport, TcpTransport, Transport};
use ssx_poly::RingCtx;
use ssx_prg::Seed;
use ssx_store::{Loc, Row, SizeReport, Table, Wal, WalReplay};
use ssx_xml::Document;
use ssx_xpath::parse_query;
use std::net::ToSocketAddrs;
use std::path::Path;

/// An encrypted database over some query-plane transport. The default type
/// parameter is the in-process (optionally sharded) server every encode
/// constructor builds; [`EncryptedDb::connect`]/[`EncryptedDb::connect_mux`]
/// put the identical query interface on a remote host.
pub struct EncryptedDb<T: Transport + Send = ShardRouter<LocalTransport>> {
    client: ClientFilter<T>,
    encode_stats: EncodeStats,
    /// Optional write-ahead log: document mutations are appended (and
    /// fsynced) as they are applied, so a crash between mutations and the
    /// next [`EncryptedDb::checkpoint`] loses nothing.
    wal: Option<Wal>,
}

/// What [`EncryptedDb::insert_document`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// `pre` of the new document's root (the handle for
    /// [`EncryptedDb::delete_document`] / [`EncryptedDb::update_document`]).
    pub root_pre: u32,
    /// Rows (elements) the store accepted.
    pub rows: u64,
    /// Numbering offset the document was encoded at (`root_pre - 1`).
    pub offset: u32,
}

/// An [`EncryptedDb`] over a remote thread-per-connection TCP host.
pub type RemoteDb = EncryptedDb<ShardRouter<TcpTransport>>;

/// An [`EncryptedDb`] over a remote multiplexed host, riding a shared
/// [`MuxPool`].
pub type RemoteMuxDb = EncryptedDb<ShardRouter<MuxTransport>>;

impl EncryptedDb {
    /// Encodes `xml` under `map` and `seed` (single shard).
    pub fn encode(xml: &str, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        Self::encode_sharded(xml, map, seed, 1)
    }

    /// Encodes `xml` and partitions the table across `shards` server
    /// filters. Query results are identical for every shard count; what
    /// changes is placement, per-shard state and the concurrency available
    /// to a networked deployment.
    pub fn encode_sharded(
        xml: &str,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let out = encode_document(xml, &map, &seed)?;
        Self::from_encode_output(out, map, seed, shards)
    }

    /// Encodes a DOM (for trie-transformed documents; single shard).
    pub fn encode_doc(doc: &Document, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        Self::encode_doc_sharded(doc, map, seed, 1)
    }

    /// Encodes a DOM across `shards` server filters.
    pub fn encode_doc_sharded(
        doc: &Document,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let out = encode_dom(doc, &map, &seed)?;
        Self::from_encode_output(out, map, seed, shards)
    }

    /// Builds a database around an already-finished encode — e.g. one
    /// produced by [`crate::encode_document_parallel`] — partitioned across
    /// `shards` server filters. The `map` and `seed` must be the ones the
    /// encode ran under (the client regenerates its shares from them).
    pub fn from_encode_output(
        out: EncodeOutput,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let server = ShardedServer::from_table(out.table, out.ring, shards)?;
        let client = ClientFilter::new(ShardRouter::local(server), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: out.stats,
            wal: None,
        })
    }

    /// Repartitions the in-process fleet across `shards` filters **online**
    /// — no save/load cycle, rows move bit-identically (only placement
    /// changes), query results are unaffected. See
    /// [`crate::router::ShardRouter::reshard`].
    pub fn reshard(&mut self, shards: u32) -> Result<(), CoreError> {
        self.client.transport_mut().reshard(shards)
    }

    /// Server-side table sizes, summed across shards (Fig 4 series; the
    /// partition moves rows, it does not change their cost).
    pub fn size_report(&self) -> SizeReport {
        let mut total = SizeReport {
            poly_bytes: 0,
            structure_bytes: 0,
            index_bytes: 0,
            rows: 0,
        };
        for server in self.client.transport().servers() {
            let r = server.table().size_report();
            total.poly_bytes += r.poly_bytes;
            total.structure_bytes += r.structure_bytes;
            total.index_bytes += r.index_bytes;
            total.rows += r.rows;
        }
        total
    }

    /// Number of encoded elements (across all shards).
    pub fn node_count(&self) -> usize {
        self.client
            .transport()
            .servers()
            .map(|s| s.table().len())
            .sum()
    }

    /// Persists the server table — shard partitions are merged back into
    /// one document-ordered table, so the on-disk format is independent of
    /// the shard count (and bit-identical per row). The map and seed are
    /// *not* written — they are the client's secrets and travel separately.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        ssx_store::save_table(&self.merged_table()?, path)?;
        Ok(())
    }

    /// Shard partitions merged back into one document-ordered table.
    fn merged_table(&self) -> Result<Table, CoreError> {
        let mut rows: Vec<Row> = self
            .client
            .transport()
            .servers()
            .flat_map(|s| s.table().rows().iter().cloned())
            .collect();
        rows.sort_by_key(|r| r.loc.pre);
        let poly_len = self
            .client
            .transport()
            .servers()
            .next()
            .map_or(0, |s| s.table().poly_len());
        let mut merged = Table::new(poly_len);
        for row in rows {
            merged.insert(row)?;
        }
        Ok(merged)
    }

    /// Opens (or bootstraps) a durable store: loads the snapshot at
    /// `snapshot` when present (an empty store otherwise), replays the log
    /// at `wal` over it — recovering every mutation acked since the last
    /// [`EncryptedDb::checkpoint`], truncating any torn tail — and
    /// attaches the log so later mutations append to it.
    pub fn open_durable(
        snapshot: &Path,
        wal: &Path,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<(Self, WalReplay), CoreError> {
        let ring = RingCtx::new(map.p(), map.e())?;
        let expected = ssx_poly::Packer::new(&ring).radix_len();
        let (table, replay) = if snapshot.exists() {
            let (table, replay) = ssx_store::load_table_with_wal(snapshot, wal)?;
            if expected != table.poly_len() {
                return Err(CoreError::Map(format!(
                    "map is for F_{}^{} ({} B/polynomial) but the table stores {} B/polynomial",
                    map.p(),
                    map.e(),
                    expected,
                    table.poly_len()
                )));
            }
            (table, replay)
        } else {
            let mut table = Table::new(expected);
            let replay = ssx_store::replay_wal(wal, &mut table)?;
            (table, replay)
        };
        let server = ShardedServer::from_table(table, ring, shards)?;
        let client = ClientFilter::new(ShardRouter::local(server), map, seed)?;
        let mut db = EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        };
        db.attach_wal(wal)?;
        Ok((db, replay))
    }

    /// Snapshots the merged table to `snapshot` atomically, then truncates
    /// the attached log ([`ssx_store::checkpoint`]): a crash between the
    /// two steps merely replays records the snapshot already contains,
    /// which replay skips idempotently.
    pub fn checkpoint(&mut self, snapshot: &Path) -> Result<(), CoreError> {
        let merged = self.merged_table()?;
        let wal = self.wal.as_mut().ok_or_else(|| {
            CoreError::Unsupported(
                "checkpoint requires an attached WAL (attach_wal or open_durable)".into(),
            )
        })?;
        ssx_store::checkpoint(&merged, snapshot, wal)?;
        Ok(())
    }

    /// Reopens a persisted table with the client secrets (single shard).
    /// Fails with a descriptive error when the map's field parameters do
    /// not match the table's packed polynomial size.
    pub fn load(path: &Path, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        Self::load_sharded(path, map, seed, 1)
    }

    /// Reopens a persisted table and partitions it across `shards` server
    /// filters — any table can be re-sharded on load.
    pub fn load_sharded(
        path: &Path,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let table = ssx_store::load_table(path)?;
        let ring = RingCtx::new(map.p(), map.e())?;
        let expected = ssx_poly::Packer::new(&ring).radix_len();
        if expected != table.poly_len() {
            return Err(CoreError::Map(format!(
                "map is for F_{}^{} ({} B/polynomial) but the table stores {} B/polynomial",
                map.p(),
                map.e(),
                expected,
                table.poly_len()
            )));
        }
        let server = ShardedServer::from_table(table, ring, shards)?;
        let client = ClientFilter::new(ShardRouter::local(server), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        })
    }
}

impl<T: Transport + Send> EncryptedDb<T> {
    /// Parses and runs a query text.
    pub fn query(
        &mut self,
        query_text: &str,
        kind: EngineKind,
        rule: MatchRule,
    ) -> Result<QueryOutcome, CoreError> {
        let query = parse_query(query_text)?.expand_text_predicates();
        Engine::run(kind, rule, &query, &mut self.client)
    }

    /// Runs an already-parsed query.
    pub fn run(
        &mut self,
        query: &ssx_xpath::Query,
        kind: EngineKind,
        rule: MatchRule,
    ) -> Result<QueryOutcome, CoreError> {
        Engine::run(kind, rule, query, &mut self.client)
    }

    /// Parses and runs an aggregation query: COUNT/SUM/AVG over the
    /// matches of `query_text`, optionally keeping only matches whose
    /// numeric value lies in the inclusive `range`. Servers accumulate
    /// share partials blindly; the exact answer exists only client-side.
    /// Retries automatically when a racing writer trips the epoch fence.
    pub fn aggregate(
        &mut self,
        query_text: &str,
        kind: EngineKind,
        rule: MatchRule,
        op: AggOp,
        range: Option<(u64, u64)>,
    ) -> Result<AggregateOutcome, CoreError> {
        let query = parse_query(query_text)?.expand_text_predicates();
        let spec = AggregateSpec { query, op, range };
        run_aggregate(&mut self.client, kind, rule, &spec)
    }

    /// Runs an already-built [`AggregateSpec`].
    pub fn run_aggregate(
        &mut self,
        spec: &AggregateSpec,
        kind: EngineKind,
        rule: MatchRule,
    ) -> Result<AggregateOutcome, CoreError> {
        run_aggregate(&mut self.client, kind, rule, spec)
    }

    /// The client filter (tests and custom protocols).
    pub fn client_mut(&mut self) -> &mut ClientFilter<T> {
        &mut self.client
    }

    /// Encoding statistics of the build (zeroed on loaded or remote
    /// databases — the encode happened elsewhere).
    pub fn encode_stats(&self) -> EncodeStats {
        self.encode_stats
    }

    /// Toggle full verification of equality-test quotients.
    pub fn set_verify_equality(&mut self, verify: bool) {
        self.client.verify_equality = verify;
    }

    /// Toggle the client-share cache (memory for speed; transparent to
    /// query results). Enabling uses
    /// [`crate::client::DEFAULT_SHARE_CACHE_CAP`].
    pub fn set_share_cache(&mut self, enabled: bool) {
        self.client.set_share_cache(enabled);
    }

    /// Enable the client-share cache with an explicit capacity (in shares);
    /// `cap = 0` disables it. The cache is a bounded clock cache: memory
    /// stays under `cap · (q − 1)` words no matter the database size.
    pub fn set_share_cache_capacity(&mut self, cap: usize) {
        self.client.set_share_cache_capacity(cap);
    }

    /// Caps batch frames at `limit` sub-requests (`None` = whole-frontier
    /// batches; `Some(1)` = the unbatched wire shape, the ablation
    /// baseline).
    pub fn set_batch_limit(&mut self, limit: Option<usize>) {
        self.client.set_batch_limit(limit);
    }

    /// Applies a per-call deadline to every transport under the facade
    /// (`None` = wait forever). A call that exceeds it fails with
    /// [`CoreError::Timeout`] instead of hanging the query.
    pub fn set_deadline(&mut self, budget: Option<std::time::Duration>) {
        self.client.transport_mut().set_call_budget(budget);
    }

    // ---- the write plane --------------------------------------------------

    /// Attaches a write-ahead log at `path`: every later document mutation
    /// is appended (and fsynced) after the store applies it, so the log
    /// holds exactly the acked mutations since the last
    /// [`EncryptedDb::checkpoint`]. An existing log is appended to, not
    /// replayed — replay happens in [`EncryptedDb::open_durable`].
    pub fn attach_wal(&mut self, path: &Path) -> Result<(), CoreError> {
        let poly_len = ssx_poly::Packer::new(self.client.ring()).radix_len();
        self.wal = Some(Wal::open(path, poly_len)?);
        Ok(())
    }

    /// The attached log, if any (tuning — e.g. [`Wal::set_sync`]).
    pub fn wal_mut(&mut self) -> Option<&mut Wal> {
        self.wal.as_mut()
    }

    /// Encodes `xml` as a new document and inserts it into the live store.
    ///
    /// The document is numbered from `offset = max_pre` (a `MaxPre`
    /// handshake, max-merged across shards and agreed across fleet
    /// parties), so its rows extend the forest exactly as
    /// [`crate::encode::encode_document_at`] would have at build time —
    /// including the client-share PRG keys, which is what keeps the
    /// store bit-identical to a fresh encode of the same document set.
    /// Over a fleet, each row is re-split per party in the transport.
    /// Applied atomically: on any shard failure, already-applied shards
    /// are compensated and the store is unchanged.
    pub fn insert_document(&mut self, xml: &str) -> Result<InsertOutcome, CoreError> {
        let offset = self.client.max_pre()?;
        let map = self.client.map().clone();
        let seed = self.client.seed().clone();
        let out = encode_document_at(xml, &map, &seed, offset)?;
        let rows = out.table.into_rows();
        let wire: Vec<(Loc, Vec<u8>)> = rows.iter().map(|r| (r.loc, r.poly.to_vec())).collect();
        let n = self.client.insert_rows(wire)?;
        if n != rows.len() as u64 {
            return Err(CoreError::Transport(format!(
                "store accepted {n} of {} rows",
                rows.len()
            )));
        }
        // Log after the store acks: the in-process table dies with the
        // process anyway, so the durable truth is snapshot + log, and
        // logging only acked mutations means replay never redoes a
        // mutation the caller was told failed.
        if let Some(wal) = &mut self.wal {
            wal.append_insert(&rows)?;
        }
        Ok(InsertOutcome {
            root_pre: offset + 1,
            rows: n,
            offset,
        })
    }

    /// Deletes a whole document by its root `pre` (as returned in
    /// [`InsertOutcome::root_pre`]): the root plus every descendant row is
    /// removed from every shard (and, over a fleet, from both planes of
    /// every party). Returns how many rows were removed.
    pub fn delete_document(&mut self, root_pre: u32) -> Result<u64, CoreError> {
        let loc = self
            .client
            .loc_of(root_pre)?
            .ok_or_else(|| CoreError::Transport(format!("no node with pre={root_pre}")))?;
        if loc.parent != 0 {
            return Err(CoreError::Unsupported(format!(
                "pre={root_pre} is not a document root (parent={}); deletes are whole-document",
                loc.parent
            )));
        }
        let mut pres = vec![root_pre];
        pres.extend(self.client.descendants(loc)?.into_iter().map(|l| l.pre));
        // Every deleted element drops its numeric-plane value row too —
        // idempotent, elements without one are simply skipped — so no
        // orphaned value share outlives its element.
        let numeric: Vec<u32> = pres.iter().map(|&p| numeric_pre(p)).collect();
        pres.extend(numeric);
        let n = self.client.delete_pres(pres.clone())?;
        if let Some(wal) = &mut self.wal {
            wal.append_remove(&pres)?;
        }
        Ok(n)
    }

    /// Replaces the document rooted at `root_pre` with a fresh encode of
    /// `xml` (delete + insert). The replacement gets new `pre` numbers:
    /// `max_pre` is a high-water mark, so `pre`s are never reused and an
    /// open cursor can never see a reborn node under a stale number.
    pub fn update_document(
        &mut self,
        root_pre: u32,
        xml: &str,
    ) -> Result<InsertOutcome, CoreError> {
        self.delete_document(root_pre)?;
        self.insert_document(xml)
    }
}

impl<T: Transport + Send> EncryptedDb<ShardRouter<T>> {
    /// Number of shards the table is partitioned across.
    pub fn shards(&self) -> u32 {
        self.client.transport().spec().shards()
    }

    /// The shard count the observed per-shard traffic argues for (the
    /// auto-tuning heuristic; see
    /// [`crate::router::ShardRouter::suggest_shards`]). Pair with
    /// [`EncryptedDb::reshard`] (local) or `ssxdb reshard` (remote) — the
    /// facade never repartitions on its own.
    pub fn suggest_shards(&self) -> u32 {
        self.client.transport().suggest_shards()
    }

    /// Enables or disables speculative wave pipelining: dependent query
    /// waves overlap (the next frontier's expansion rides the current
    /// wave's frames), cutting round trips on chain queries at identical
    /// results. Off by default. See the
    /// [`crate::router::ShardRouter`] module docs.
    pub fn set_speculation(&mut self, enabled: bool) {
        self.client.transport_mut().set_speculation(enabled);
    }
}

impl RemoteDb {
    /// Opens the facade onto a remote thread-per-connection host
    /// ([`crate::transport::serve_tcp`] or
    /// [`crate::transport::serve_tcp_sharded`]): one connection per shard,
    /// shard count validated by the handshake. The map and seed stay
    /// client-side; the server never sees them.
    pub fn connect<A: ToSocketAddrs + Copy>(
        addr: A,
        shards: u32,
        map: MapFile,
        seed: Seed,
    ) -> Result<Self, CoreError> {
        let client = ClientFilter::new(ShardRouter::connect(addr, shards)?, map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        })
    }
}

impl RemoteMuxDb {
    /// Opens the facade onto a multiplexed host
    /// ([`crate::transport::serve_tcp_mux`]) through a shared [`MuxPool`]:
    /// every database built on the same pool multiplexes its query waves
    /// over the pool's one socket per shard, so any number of concurrent
    /// clients cost the server a fixed number of connections.
    pub fn connect_mux(pool: &MuxPool, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        let client = ClientFilter::new(ShardRouter::mux(pool), map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        })
    }
}

/// An [`EncryptedDb`] over an in-process t-of-n fleet: `n` party hosts,
/// each holding only a Shamir share of the data and MAC planes
/// ([`crate::fleet`]).
pub type FleetDb = EncryptedDb<ShardRouter<FleetTransport<LocalPartyTransport>>>;

/// An [`EncryptedDb`] over a TCP fleet of thread-per-connection party
/// hosts, one connection per party per data shard.
pub type RemoteFleetDb = EncryptedDb<ShardRouter<FleetTransport<TcpTransport>>>;

/// An [`EncryptedDb`] over a fleet of multiplexed party hosts, one
/// [`MuxPool`] per party.
pub type RemoteMuxFleetDb = EncryptedDb<ShardRouter<FleetTransport<MuxTransport>>>;

impl FleetDb {
    /// Encodes `xml` and splits it across an in-process `spec.servers`-party
    /// fleet (threshold `spec.threshold`), single data shard per party.
    pub fn encode_fleet(
        xml: &str,
        map: MapFile,
        seed: Seed,
        spec: FleetSpec,
    ) -> Result<Self, CoreError> {
        Self::encode_fleet_sharded(xml, map, seed, spec, 1)
    }

    /// Encodes `xml` across an in-process fleet with `shards` data
    /// partitions per party (each party hosts `2·shards` filters: data +
    /// MAC planes).
    pub fn encode_fleet_sharded(
        xml: &str,
        map: MapFile,
        seed: Seed,
        spec: FleetSpec,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let out = encode_document_fleet(xml, &map, &seed, spec)?;
        Self::from_fleet_output(out, map, seed, shards)
    }

    /// Wraps an already-split fleet encoding in the query facade.
    pub fn from_fleet_output(
        out: FleetEncodeOutput,
        map: MapFile,
        seed: Seed,
        shards: u32,
    ) -> Result<Self, CoreError> {
        let stats = out.stats;
        let router = local_fleet_router(out, &seed, shards)?;
        let client = ClientFilter::new(router, map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: stats,
            wal: None,
        })
    }
}

impl<T: Transport + Send + 'static> EncryptedDb<ShardRouter<FleetTransport<T>>> {
    /// Installs the resilience policy (deadline, bounded retry, hedged
    /// reconstruction, re-admission cooldown) on every fleet pipe. See
    /// [`crate::fleet::ResilienceConfig`].
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        for pipe in self.client.transport_mut().transports_mut() {
            pipe.set_resilience(cfg);
        }
    }

    /// Health snapshot of every party as seen by the first fleet pipe.
    /// Pipes track health independently; with a single data shard (the
    /// default) this is the whole picture.
    pub fn party_status(&self) -> Vec<PartyStatus> {
        self.client
            .transport()
            .transports()
            .first()
            .map(|p| p.party_status())
            .unwrap_or_default()
    }
}

impl RemoteFleetDb {
    /// Opens the facade onto an `addrs.len()`-party TCP fleet
    /// ([`crate::fleet::connect_fleet`]): parties dead at connect are
    /// tolerated down to `threshold` live legs, and every wave reconstructs
    /// with MAC verification client-side.
    pub fn connect_fleet(
        addrs: &[String],
        threshold: usize,
        map: MapFile,
        seed: Seed,
    ) -> Result<Self, CoreError> {
        let router = connect_fleet(addrs, threshold, &map, &seed)?;
        let client = ClientFilter::new(router, map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        })
    }
}

impl RemoteMuxFleetDb {
    /// Opens the facade onto a fleet of multiplexed party hosts
    /// ([`crate::fleet::connect_fleet_mux`]): one [`MuxPool`] per party.
    pub fn connect_fleet_mux(
        addrs: &[String],
        threshold: usize,
        map: MapFile,
        seed: Seed,
    ) -> Result<Self, CoreError> {
        let router = connect_fleet_mux(addrs, threshold, &map, &seed)?;
        let client = ClientFilter::new(router, map, seed)?;
        Ok(EncryptedDb {
            client,
            encode_stats: EncodeStats::default(),
            wal: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> EncryptedDb {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        EncryptedDb::encode("<site><a><b/></a><c/></site>", map, seed).unwrap()
    }

    #[test]
    fn query_through_facade() {
        let mut db = demo();
        let out = db
            .query("/site/a/b", EngineKind::Advanced, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.pres(), vec![3]);
        assert_eq!(db.node_count(), 4);
        assert!(db.size_report().data_bytes() > 0);
        assert_eq!(db.encode_stats().elements, 4);
    }

    #[test]
    fn save_load_requery() {
        let db = demo();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.ssxdb");
        db.save(&path).unwrap();

        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        let mut back = EncryptedDb::load(&path, map, seed).unwrap();
        let out = back
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.pres(), vec![3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_facade_matches_single_shard() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let mut single = EncryptedDb::encode(xml, map(), Seed::from_test_key(33)).unwrap();
        assert_eq!(single.shards(), 1);
        for shards in [2u32, 4] {
            let mut db =
                EncryptedDb::encode_sharded(xml, map(), Seed::from_test_key(33), shards).unwrap();
            assert_eq!(db.shards(), shards);
            assert_eq!(db.node_count(), single.node_count());
            let r = db.size_report();
            let r1 = single.size_report();
            assert_eq!(r.poly_bytes, r1.poly_bytes);
            assert_eq!(r.rows, r1.rows);
            for q in ["/site/a", "//c", "/site/b//c", "/site/*/c"] {
                for kind in [EngineKind::Simple, EngineKind::Advanced] {
                    for rule in [MatchRule::Containment, MatchRule::Equality] {
                        let a = single.query(q, kind, rule).unwrap();
                        let b = db.query(q, kind, rule).unwrap();
                        assert_eq!(a.pres(), b.pres(), "{q} {kind:?} {rule:?} S={shards}");
                        // Same logical round trips and protocol work.
                        assert_eq!(a.stats.round_trips, b.stats.round_trips, "{q} S={shards}");
                        assert_eq!(a.stats.evaluations(), b.stats.evaluations(), "{q}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_save_load_round_trips_any_shard_count() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let xml = "<site><a><b/></a><c/></site>";
        let db = EncryptedDb::encode_sharded(xml, map(), Seed::from_test_key(33), 3).unwrap();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db_sharded.ssxdb");
        db.save(&path).unwrap();
        // The file is shard-count independent: load unsharded and re-sharded.
        let mut flat = EncryptedDb::load(&path, map(), Seed::from_test_key(33)).unwrap();
        let mut wide = EncryptedDb::load_sharded(&path, map(), Seed::from_test_key(33), 2).unwrap();
        let a = flat
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        let b = wide
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(a.pres(), vec![3]);
        assert_eq!(b.pres(), vec![3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn online_reshard_round_trips_with_bit_identical_save_bytes() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let mut db = EncryptedDb::encode_sharded(xml, map(), Seed::from_test_key(33), 2).unwrap();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let before_path = dir.join("reshard_before.ssxdb");
        let after_path = dir.join("reshard_after.ssxdb");
        db.save(&before_path).unwrap();
        let baseline = db
            .query("//c", EngineKind::Simple, MatchRule::Equality)
            .unwrap()
            .pres();
        // S = 2 → 4 → 1 → 2, querying at every stop.
        for shards in [4u32, 1, 2] {
            db.reshard(shards).unwrap();
            assert_eq!(db.shards(), shards);
            assert_eq!(
                db.query("//c", EngineKind::Simple, MatchRule::Equality)
                    .unwrap()
                    .pres(),
                baseline,
                "S={shards}"
            );
        }
        db.save(&after_path).unwrap();
        let a = std::fs::read(&before_path).unwrap();
        let b = std::fs::read(&after_path).unwrap();
        assert_eq!(a, b, "reshard round trip must save bit-identical bytes");
        std::fs::remove_file(&before_path).ok();
        std::fs::remove_file(&after_path).ok();
    }

    #[test]
    fn speculation_through_the_facade_cuts_waves_not_answers() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let mut plain = EncryptedDb::encode(xml, map(), Seed::from_test_key(33)).unwrap();
        let mut spec = EncryptedDb::encode(xml, map(), Seed::from_test_key(33)).unwrap();
        spec.set_speculation(true);
        for q in ["/site/a/b/c", "/site/a/c"] {
            let a = plain
                .query(q, EngineKind::Simple, MatchRule::Containment)
                .unwrap();
            let b = spec
                .query(q, EngineKind::Simple, MatchRule::Containment)
                .unwrap();
            assert_eq!(a.pres(), b.pres(), "{q}");
            assert!(
                b.stats.round_trips < a.stats.round_trips,
                "{q}: speculative {} vs plain {}",
                b.stats.round_trips,
                a.stats.round_trips
            );
            assert!(b.stats.speculative_hits > 0, "{q}");
        }
    }

    /// The same facade, three transports: the in-process plane, a remote
    /// thread-per-connection host and a remote mux host (two databases on
    /// one shared pool) all answer identically.
    #[test]
    fn remote_facades_match_the_local_plane() {
        use crate::protocol::Request;
        use crate::transport::{serve_tcp_mux, serve_tcp_sharded};
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let shards = 2u32;
        let mut local =
            EncryptedDb::encode_sharded(xml, map(), Seed::from_test_key(33), shards).unwrap();

        let spawn_host = |mux: bool| {
            let out =
                crate::encode::encode_document(xml, &map(), &Seed::from_test_key(33)).unwrap();
            let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let handle = std::thread::spawn(move || {
                if mux {
                    serve_tcp_mux(listener, server, 0).unwrap()
                } else {
                    serve_tcp_sharded(listener, server).unwrap()
                }
            });
            (addr, handle)
        };

        let (tcp_addr, tcp_handle) = spawn_host(false);
        let (mux_addr, mux_handle) = spawn_host(true);
        let mut tcp = RemoteDb::connect(tcp_addr, shards, map(), Seed::from_test_key(33)).unwrap();
        let pool = MuxPool::connect(mux_addr, shards).unwrap();
        let mut mux_a = RemoteMuxDb::connect_mux(&pool, map(), Seed::from_test_key(33)).unwrap();
        let mut mux_b = RemoteMuxDb::connect_mux(&pool, map(), Seed::from_test_key(33)).unwrap();
        assert_eq!(tcp.shards(), shards);
        assert_eq!(mux_a.shards(), shards);

        for q in ["/site/a", "//c", "/site/b//c"] {
            let want = local
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            let got = tcp
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            assert_eq!(got.pres(), want.pres(), "{q} (threaded)");
            assert_eq!(got.stats.round_trips, want.stats.round_trips, "{q}");
            let got = mux_a
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            assert_eq!(got.pres(), want.pres(), "{q} (mux)");
            assert_eq!(got.stats.round_trips, want.stats.round_trips, "{q}");
            let got = mux_b
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            assert_eq!(got.pres(), want.pres(), "{q} (second pooled client)");
        }
        assert_eq!(pool.stray_responses(), 0);

        tcp.client_mut()
            .transport_mut()
            .call(&Request::Shutdown)
            .unwrap();
        drop(tcp);
        tcp_handle.join().unwrap();
        mux_a
            .client_mut()
            .transport_mut()
            .call(&Request::Shutdown)
            .unwrap();
        mux_handle.join().unwrap();
    }

    #[test]
    fn write_plane_matches_fresh_encode_of_final_document_set() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = || Seed::from_test_key(33);
        let doc_a = "<site><a><b/></a><c/></site>";
        let doc_b = "<site><a><b/><b/></a></site>";
        let mut db = EncryptedDb::encode(doc_a, map(), seed()).unwrap();
        let ins = db.insert_document(doc_b).unwrap();
        assert_eq!(
            ins,
            InsertOutcome {
                root_pre: 5,
                rows: 4,
                offset: 4
            }
        );
        assert_eq!(db.node_count(), 8);
        // Drop the original document; only doc B remains, at its offset.
        assert_eq!(db.delete_document(1).unwrap(), 4);
        assert_eq!(db.node_count(), 4);

        // Reference: the same final document set, freshly encoded at the
        // same offset. The mutated store must be bit-identical to it.
        let out = crate::encode::encode_document_at(doc_b, &map(), &seed(), 4).unwrap();
        let mut fresh = EncryptedDb::from_encode_output(out, map(), seed(), 1).unwrap();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let mutated_path = dir.join("write_mutated.ssxdb");
        let fresh_path = dir.join("write_fresh.ssxdb");
        db.save(&mutated_path).unwrap();
        fresh.save(&fresh_path).unwrap();
        assert_eq!(
            std::fs::read(&mutated_path).unwrap(),
            std::fs::read(&fresh_path).unwrap(),
            "mutated store must equal a fresh encode of the final document set"
        );
        for q in ["//b", "/site/a/b", "//a"] {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let a = db.query(q, EngineKind::Advanced, rule).unwrap();
                let b = fresh.query(q, EngineKind::Advanced, rule).unwrap();
                assert_eq!(a.pres(), b.pres(), "{q} {rule:?}");
            }
        }
        std::fs::remove_file(&mutated_path).ok();
        std::fs::remove_file(&fresh_path).ok();
    }

    #[test]
    fn queries_span_every_document_in_the_forest() {
        // A store holding two documents (the shape the write plane builds):
        // absolute queries must answer from both, not just the first root.
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = || Seed::from_test_key(33);
        let mut db = EncryptedDb::encode("<site><a><b/></a><c/></site>", map(), seed()).unwrap();
        db.insert_document("<site><a><b/><b/></a></site>").unwrap();
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let site = db.query("/site", kind, rule).unwrap();
                assert_eq!(site.pres(), vec![1, 5], "{kind:?} {rule:?}");
            }
            let b = db.query("//b", kind, MatchRule::Equality).unwrap();
            assert_eq!(b.pres(), vec![3, 7, 8], "{kind:?}");
            let c = db.query("//c", kind, MatchRule::Equality).unwrap();
            assert_eq!(c.pres(), vec![4], "{kind:?}");
        }
    }

    #[test]
    fn update_document_never_reuses_numbering() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = || Seed::from_test_key(33);
        let doc_a = "<site><a><b/></a><c/></site>";
        let doc_b = "<site><a><b/><b/></a></site>";
        let mut db = EncryptedDb::encode(doc_a, map(), seed()).unwrap();
        // max_pre is a high-water mark: even though the delete empties the
        // store, the replacement starts past the old block — a stale
        // cursor can never see a reborn node under an old number.
        let ins = db.update_document(1, doc_b).unwrap();
        assert_eq!(ins.root_pre, 5);
        let out = crate::encode::encode_document_at(doc_b, &map(), &seed(), 4).unwrap();
        let mut fresh = EncryptedDb::from_encode_output(out, map(), seed(), 1).unwrap();
        let a = db
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        let b = fresh
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(a.pres(), b.pres());
        // Non-roots are refused as delete handles.
        let err = db.delete_document(6).unwrap_err();
        assert!(err.to_string().contains("not a document root"), "{err}");
        // Unknown handles are refused.
        assert!(db.delete_document(99).is_err());
    }

    #[test]
    fn durable_store_recovers_acked_mutations_and_checkpoints() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = || Seed::from_test_key(33);
        let doc_a = "<site><a><b/></a><c/></site>";
        let doc_b = "<site><a><b/><b/></a></site>";
        let dir = std::env::temp_dir().join("ssx_core_facade_wal");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("db.ssxdb");
        let walp = dir.join("db.wal");
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&walp).ok();

        {
            // Bootstrap an empty durable store and mutate it, then drop it
            // without checkpointing — the moral equivalent of kill -9: the
            // in-memory table is gone, only snapshot + log survive.
            let (mut db, replay) =
                EncryptedDb::open_durable(&snap, &walp, map(), seed(), 1).unwrap();
            assert_eq!(replay.records, 0);
            assert_eq!(db.node_count(), 0);
            db.insert_document(doc_a).unwrap();
            let b = db.insert_document(doc_b).unwrap();
            db.delete_document(b.root_pre).unwrap();
        }
        assert!(!snap.exists(), "no checkpoint ran");

        let (mut db, replay) = EncryptedDb::open_durable(&snap, &walp, map(), seed(), 1).unwrap();
        assert_eq!(replay.records, 3, "two inserts and a remove replayed");
        assert_eq!(db.node_count(), 4);
        let out = db
            .query("//b", EngineKind::Simple, MatchRule::Equality)
            .unwrap();
        assert_eq!(out.pres(), vec![3]);

        // Checkpoint truncates the log to its header; reopening (at any
        // shard count) loads the snapshot with nothing to replay.
        db.checkpoint(&snap).unwrap();
        assert_eq!(db.wal_mut().unwrap().len_bytes(), 12);
        drop(db);
        let (mut db, replay) = EncryptedDb::open_durable(&snap, &walp, map(), seed(), 2).unwrap();
        assert_eq!(replay.records, 0);
        assert_eq!(
            db.query("//b", EngineKind::Simple, MatchRule::Equality)
                .unwrap()
                .pres(),
            vec![3]
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&walp).ok();
    }

    #[test]
    fn fleet_facade_write_plane_matches_fresh_fleet() {
        let map = || MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = || Seed::from_test_key(33);
        let doc_a = "<site><a><b/></a><c/></site>";
        let doc_b = "<site><a><b/><b/></a></site>";
        let spec = FleetSpec::new(3, 2).unwrap();
        let mut fleet = FleetDb::encode_fleet(doc_a, map(), seed(), spec).unwrap();
        let ins = fleet.insert_document(doc_b).unwrap();
        assert_eq!(ins.root_pre, 5);
        assert_eq!(fleet.delete_document(1).unwrap(), 4);
        // A plain store mutated the same way answers identically — the
        // fleet's per-party re-split is invisible to the query plane.
        let mut single = EncryptedDb::encode(doc_a, map(), seed()).unwrap();
        single.insert_document(doc_b).unwrap();
        single.delete_document(1).unwrap();
        for q in ["//b", "/site/a/b"] {
            let a = single
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            let b = fleet
                .query(q, EngineKind::Advanced, MatchRule::Equality)
                .unwrap();
            assert_eq!(a.pres(), b.pres(), "{q}");
            assert_eq!(a.stats.round_trips, b.stats.round_trips, "{q}");
        }
    }

    #[test]
    fn aggregates_match_the_oracle_across_shard_counts_and_the_fleet() {
        use crate::reference::reference_aggregate;
        use ssx_xml::Document;
        let map = || MapFile::sequential(83, 1, &["site", "item", "price", "name"]).unwrap();
        let seed = || Seed::from_test_key(41);
        let xml = "<site><item><name>ab</name><price>19</price></item>\
                   <item><price>7</price></item><item><price>30</price></item>\
                   <item><name>cd</name></item></site>";
        let doc = Document::parse(xml).unwrap();
        let cases: &[(&str, Option<(u64, u64)>)] = &[
            ("//price", None),
            ("//price", Some((8, 100))),
            ("/site/item", None),
            ("/site/item/name", Some((0, u64::MAX))),
        ];
        let mut dbs: Vec<(String, EncryptedDb)> = vec![
            (
                "S=1".into(),
                EncryptedDb::encode(xml, map(), seed()).unwrap(),
            ),
            (
                "S=2".into(),
                EncryptedDb::encode_sharded(xml, map(), seed(), 2).unwrap(),
            ),
            (
                "S=4".into(),
                EncryptedDb::encode_sharded(xml, map(), seed(), 4).unwrap(),
            ),
        ];
        let spec = FleetSpec::new(3, 2).unwrap();
        let mut fleet = FleetDb::encode_fleet(xml, map(), seed(), spec).unwrap();
        for &(q, range) in cases {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let want =
                    reference_aggregate(&doc, &ssx_xpath::parse_query(q).unwrap(), rule, 82, range)
                        .unwrap();
                for kind in [EngineKind::Simple, EngineKind::Advanced] {
                    for (label, db) in dbs.iter_mut() {
                        let count = db.aggregate(q, kind, rule, AggOp::Count, range).unwrap();
                        assert_eq!(count.count, want.count, "{q} {rule:?} {kind:?} {label}");
                        let sum = db.aggregate(q, kind, rule, AggOp::Sum, range).unwrap();
                        assert_eq!(sum.sum, want.sum, "{q} {rule:?} {kind:?} {label}");
                        assert_eq!(sum.contributing, want.contributing, "{q} {label}");
                        let avg = db.aggregate(q, kind, rule, AggOp::Avg, range).unwrap();
                        assert_eq!(avg.value(), want.avg(), "{q} {rule:?} {kind:?} {label}");
                        let expect_waves = if range.is_some() { 2 } else { 1 };
                        assert_eq!(
                            sum.closing_waves, expect_waves,
                            "{q} {label}: waves beyond the walk"
                        );
                    }
                    // The t-of-n fleet answers identically, MAC-verified.
                    let sum = fleet.aggregate(q, kind, rule, AggOp::Sum, range).unwrap();
                    assert_eq!((sum.count, sum.sum), (want.count, want.sum), "{q} fleet");
                }
            }
        }
    }

    #[test]
    fn delete_document_drops_numeric_rows_bit_identically() {
        let map = || MapFile::sequential(83, 1, &["site", "item", "price", "name"]).unwrap();
        let seed = || Seed::from_test_key(41);
        let doc_a = "<site><item><price>11</price></item></site>";
        let doc_b = "<site><item><price>23</price></item><item><name>x</name></item></site>";
        let mut db = EncryptedDb::encode(doc_a, map(), seed()).unwrap();
        db.insert_document(doc_b).unwrap();
        // Deleting doc A must also drop price 11's numeric-plane row.
        db.delete_document(1).unwrap();
        let out = crate::encode::encode_document_at(doc_b, &map(), &seed(), 3).unwrap();
        let fresh = EncryptedDb::from_encode_output(out, map(), seed(), 1).unwrap();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("agg_mutated.ssxdb");
        let b_path = dir.join("agg_fresh.ssxdb");
        db.save(&a_path).unwrap();
        fresh.save(&b_path).unwrap();
        assert_eq!(
            std::fs::read(&a_path).unwrap(),
            std::fs::read(&b_path).unwrap(),
            "numeric rows must come and go with their documents"
        );
        let sum = db
            .aggregate(
                "//price",
                EngineKind::Simple,
                MatchRule::Equality,
                AggOp::Sum,
                None,
            )
            .unwrap();
        assert_eq!((sum.count, sum.sum), (1, 23));
        std::fs::remove_file(&a_path).ok();
        std::fs::remove_file(&b_path).ok();
    }

    #[test]
    fn wrong_map_parameters_rejected_on_load() {
        let db = demo();
        let dir = std::env::temp_dir().join("ssx_core_facade_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db2.ssxdb");
        db.save(&path).unwrap();
        // p = 29 produces a different packed length: a typed error, no panic.
        let wrong_map = MapFile::sequential(29, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(33);
        match EncryptedDb::load(&path, wrong_map, seed) {
            Err(CoreError::Map(msg)) => assert!(msg.contains("polynomial"), "{msg}"),
            other => panic!("expected a Map error, got {:?}", other.map(|_| "db")),
        }
        std::fs::remove_file(&path).ok();
    }
}
