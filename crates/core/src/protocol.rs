//! The client/server message protocol (the RMI stand-in).
//!
//! Every interaction between `ClientFilter` and `ServerFilter` is a
//! request/response pair encoded with a small hand-rolled binary codec, so
//! byte counts and round trips are exact — the quantities the thin-client
//! story of the paper cares about. The same frames travel over the
//! in-process transport and TCP.

use crate::error::CoreError;
use ssx_store::Loc;

/// [`Request::Agg`] op: epoch validation only — no rows touched. Closes a
/// COUNT (whose tally is client-side) while proving no write raced it.
pub const AGG_CHECK: u8 = 0;
/// [`Request::Agg`] op: grouped pointwise share-sum of the listed rows.
pub const AGG_SUM: u8 = 1;
/// [`Request::Agg`] op: fetch the listed rows, skipping absentees.
pub const AGG_FETCH: u8 = 2;

/// Marker prefix of the [`Response::Err`] a server returns when an
/// [`Request::Agg`]'s `expect_epoch` no longer matches the store — a write
/// raced the aggregate. Clients map it to a typed conflict so callers can
/// retry from a fresh snapshot instead of parsing strings.
pub const AGG_FENCE: &str = "store epoch changed";

/// The multiplexed-transport protocol version this build speaks. A
/// [`Request::Hello`] carrying at least this version upgrades a connection
/// to correlation-tagged framing (see [`encode_corr_payload`]); every frame
/// that existed before the handshake keeps its exact legacy bytes.
pub const MUX_PROTOCOL_VERSION: u32 = 1;

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// The root node ("the only node without a parent", §5.3).
    Root,
    /// Location of a specific node.
    GetLoc {
        /// Node `pre`.
        pre: u32,
    },
    /// Children of a node, in document order.
    Children {
        /// Parent `pre`.
        pre: u32,
    },
    /// All descendants of a node, in document order.
    Descendants {
        /// Subtree root location.
        loc: Loc,
    },
    /// Evaluate the stored (server-share) polynomial of one node at a point.
    Eval {
        /// Node `pre`.
        pre: u32,
        /// Evaluation point (field element code).
        point: u64,
    },
    /// Evaluate many nodes at the same point — one round trip for a whole
    /// candidate set (the paper's server-side `Queue`).
    EvalMany {
        /// Node `pre`s.
        pres: Vec<u32>,
        /// Evaluation point.
        point: u64,
    },
    /// Fetch packed server-share polynomials (equality test).
    GetPolys {
        /// Node `pre`s.
        pres: Vec<u32>,
    },
    /// Open a server-buffered cursor over the children of a node set
    /// (models the `nextNode()` pipeline, §5.2).
    OpenChildrenCursor {
        /// Parent `pre`s.
        pres: Vec<u32>,
    },
    /// Open a cursor over the descendants of a node set.
    OpenDescendantsCursor {
        /// Subtree roots.
        locs: Vec<Loc>,
    },
    /// Pull the next node from a cursor.
    Next {
        /// Cursor id.
        cursor: u32,
    },
    /// Release a cursor.
    CloseCursor {
        /// Cursor id.
        cursor: u32,
    },
    /// Number of stored nodes.
    Count,
    /// Ask a TCP server loop to stop (tests/examples).
    Shutdown,
    /// How many shards this endpoint serves. A bare [`ServerFilter`]
    /// answers 1; a sharded host intercepts it and answers its fleet size —
    /// clients use this handshake to refuse a shard-count mismatch instead
    /// of silently querying a partition.
    ///
    /// [`ServerFilter`]: crate::server::ServerFilter
    ShardCount,
    /// Repartition a sharded host across `shards` filters, in memory,
    /// without a save/load cycle. Intercepted by the sharded TCP host (like
    /// [`Request::ShardCount`]); a bare [`ServerFilter`] refuses it.
    /// Answered with [`Response::Ok`] once every row has moved — shares
    /// move bit-identically, only placement changes. Clients connected
    /// under the old shard count must reconnect (their partition no longer
    /// matches; stale point requests surface as errors, never wrong
    /// answers).
    ///
    /// [`ServerFilter`]: crate::server::ServerFilter
    Reshard {
        /// The new shard count (clamped to ≥ 1 server-side).
        shards: u32,
    },
    /// Opens the multiplexed-transport handshake: "I speak
    /// correlation-tagged framing up to `version`". A mux-capable host
    /// answers [`Response::Hello`] and switches the connection to the
    /// correlation envelope ([`encode_corr_payload`]) from the next frame
    /// on; every other endpoint answers [`Response::Err`], and the client
    /// falls back or reports. This is the versioned extension of the
    /// [`Request::ShardCount`] exchange: the answer carries the fleet size,
    /// so one round trip both negotiates framing and validates the
    /// partition. Sent exactly once, as the first frame of a connection —
    /// inside a batch or after the upgrade it is an error.
    Hello {
        /// Highest envelope version the client understands (≥ 1).
        version: u32,
    },
    /// Insert pre-split share rows into the store (the write plane). The
    /// client splits a freshly encoded document into per-shard (and, in a
    /// fleet, per-party) rows and fans one `Insert` per destination — the
    /// server never sees anything but uniformly random share bytes plus the
    /// public `Loc` triples. Answered with [`Response::Count`] (rows
    /// applied); a failed row rolls the whole frame back before the error
    /// returns. Every applied insert bumps the store epoch, fencing off
    /// cursors opened before it. Allowed bare or inside `ToShard`, never
    /// inside a `Batch` (writes are not reorderable against reads).
    Insert {
        /// Rows to insert: location plus packed share polynomial.
        rows: Vec<(Loc, Vec<u8>)>,
    },
    /// Remove the rows with these `pre` numbers (a whole document block per
    /// frame on the facade path). Answered with [`Response::Count`] (rows
    /// removed; missing `pre`s are counted out but not an error, so delete
    /// is idempotent). Bumps the store epoch like [`Request::Insert`].
    Delete {
        /// `pre` numbers to remove.
        pres: Vec<u32>,
    },
    /// Largest `pre` ever stored on this endpoint (0 when empty) — the
    /// write plane's offset-allocation handshake. Fanned to every shard and
    /// max-merged by the router. Answered with [`Response::Count`].
    MaxPre,
    /// All document roots (`parent == 0`) in document order — the query
    /// engines' initial frontier. A store that has only ever held one
    /// document answers `[root]`, but the write plane grows a *forest*, so
    /// queries must start from every root. Fanned to every shard and
    /// merge-sorted by the router. Answered with [`Response::Locs`].
    Roots,
    /// Current store epoch of this endpoint — the aggregation plane's
    /// snapshot handshake. An aggregate captures every shard's epoch in its
    /// first wave (batched with [`Request::Roots`], so the capture is free)
    /// and replays it in the closing [`Request::Agg`] frame; a write landing
    /// in between changes the epoch and surfaces as a typed conflict instead
    /// of a silently torn answer. Answered with [`Response::Count`].
    Epoch,
    /// Per-shard partial aggregate over numeric-plane rows (PR 10). `pres`
    /// are *numeric-plane* row ids (element `pre` + `NUM_PLANE_BASE`); the
    /// server never learns which elements matched the predicate — it only
    /// sees that this shard was touched, like every other read wave. The
    /// frame is refused with a fence error unless the store epoch still
    /// equals `expect_epoch`.
    ///
    /// Ops ([`AGG_CHECK`], [`AGG_SUM`], [`AGG_FETCH`]):
    /// - check: epoch validation only (`pres` empty) — closes a COUNT.
    /// - sum: pointwise share-sum of the listed rows in groups of at most
    ///   `ring_len` rows per partial (so base-2 digit sums cannot wrap mod
    ///   q); rows without a numeric value are skipped and reported absent
    ///   via [`Response::Agg::found`].
    /// - fetch: the packed rows themselves (range-predicate evaluation),
    ///   missing rows skipped rather than erroring like [`Request::GetPolys`].
    Agg {
        /// One of [`AGG_CHECK`], [`AGG_SUM`], [`AGG_FETCH`].
        op: u8,
        /// Numeric-plane row ids to aggregate, in client order.
        pres: Vec<u32>,
        /// The store epoch the aggregate captured in its first wave.
        expect_epoch: u64,
    },
    /// Many sub-requests in one round trip; answered by a parallel
    /// [`Response::Batch`]. Sub-requests may not themselves be `Batch` or
    /// `ToShard` frames (enforced by the codec).
    Batch(Vec<Request>),
    /// Addresses `req` to one shard of a sharded server. The inner request
    /// may be anything except another `ToShard` (a `Batch` is common: one
    /// tagged frame carries a whole per-shard batch).
    ToShard {
        /// Target shard index.
        shard: u32,
        /// The request the shard should handle.
        req: Box<Request>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Zero or one location.
    MaybeLoc(Option<Loc>),
    /// A location list in document order.
    Locs(Vec<Loc>),
    /// One field element.
    Value(u64),
    /// Field elements, parallel to the request's `pres`.
    Values(Vec<u64>),
    /// Packed polynomials, parallel to the request's `pres`.
    Polys(Vec<Vec<u8>>),
    /// A cursor handle.
    Cursor(u32),
    /// Node count.
    Count(u64),
    /// Generic acknowledgement.
    Ok,
    /// Server-side failure description.
    Err(String),
    /// Sub-responses parallel to a [`Request::Batch`]'s sub-requests. A
    /// failed sub-request yields an inline [`Response::Err`] in its slot —
    /// one bad slot does not poison the rest of the batch.
    Batch(Vec<Response>),
    /// Answers a [`Request::Agg`]: which of the requested numeric-plane rows
    /// exist, and the per-group share partials. For `AGG_SUM` the partials
    /// are one packed share-sum per consecutive group of at most `ring_len`
    /// found rows (in `found` order); for `AGG_FETCH` they are the packed
    /// rows themselves, parallel to `found`; for `AGG_CHECK` both lists are
    /// empty.
    Agg {
        /// The requested `pres` that exist in this shard, in request order.
        found: Vec<u32>,
        /// Packed share partials (grouping depends on the request op).
        partials: Vec<Vec<u8>>,
    },
    /// Accepts a [`Request::Hello`]: the envelope version the server will
    /// speak (the minimum of both sides' maxima) and its shard count. The
    /// connection is correlation-framed from the next frame on.
    Hello {
        /// Negotiated envelope version.
        version: u32,
        /// How many shards this host partitions the table across (the same
        /// figure the [`Request::ShardCount`] handshake reports).
        shards: u32,
    },
}

// ---- correlation envelope ---------------------------------------------------

/// Bytes the correlation id occupies at the head of a mux-framed payload.
pub const CORR_BYTES: usize = 8;

/// Wire tag of [`Request::Hello`] — the one frame a mux host's reader must
/// recognise *before* full decoding, to switch a connection's framing
/// synchronously with the byte stream.
pub(crate) const REQ_HELLO_TAG: u8 = 17;

/// Wraps an encoded request or response frame in the correlation envelope a
/// multiplexed connection speaks after the [`Request::Hello`] upgrade:
/// `corr` as 8 little-endian bytes, then the untouched legacy frame. The
/// outer 4-byte length prefix of the stream framing is unchanged, so every
/// pre-mux decoder skill (length bounds, per-element checks) still applies
/// to the inner bytes.
pub fn encode_corr_payload(corr: u64, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CORR_BYTES + frame.len());
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(frame);
    out
}

/// Splits a mux-framed payload into its correlation id and the inner legacy
/// frame. Total: any payload shorter than the 8-byte id is a typed error,
/// never a panic — the id is returned exactly as the peer wrote it, so a
/// response can only ever complete the slot whose id it carries.
pub fn decode_corr_payload(payload: &[u8]) -> Result<(u64, &[u8]), CoreError> {
    if payload.len() < CORR_BYTES {
        return Err(CoreError::Transport("short mux frame".into()));
    }
    let corr = u64::from_le_bytes(payload[..CORR_BYTES].try_into().expect("8 bytes"));
    Ok((corr, &payload[CORR_BYTES..]))
}

// ---- codec -----------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: u8) -> Self {
        Writer { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn loc(&mut self, l: Loc) {
        self.u32(l.pre);
        self.u32(l.post);
        self.u32(l.parent);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn u32s(&mut self, vs: &[u32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.u32(v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, CoreError> {
        let v = *self.buf.get(self.pos).ok_or_else(short)?;
        self.pos += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, CoreError> {
        let end = self.pos.checked_add(4).ok_or_else(short)?;
        let s = self.buf.get(self.pos..end).ok_or_else(short)?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, CoreError> {
        let end = self.pos.checked_add(8).ok_or_else(short)?;
        let s = self.buf.get(self.pos..end).ok_or_else(short)?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
    fn loc(&mut self) -> Result<Loc, CoreError> {
        Ok(Loc {
            pre: self.u32()?,
            post: self.u32()?,
            parent: self.u32()?,
        })
    }
    fn bytes(&mut self) -> Result<Vec<u8>, CoreError> {
        Ok(self.bytes_ref()?.to_vec())
    }
    /// Length-prefixed byte run, borrowed from the frame.
    fn bytes_ref(&mut self) -> Result<&'a [u8], CoreError> {
        let len = self.u32()? as usize;
        self.take(len)
    }
    /// Borrows the next `len` raw bytes of the frame.
    fn take(&mut self, len: usize) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(len).ok_or_else(short)?;
        let s = self.buf.get(self.pos..end).ok_or_else(short)?;
        self.pos = end;
        Ok(s)
    }
    /// Validates a wire-declared element count against the bytes actually
    /// left in the frame: `n` elements of at least `elem_min` bytes each
    /// cannot fit in fewer than `n * elem_min` bytes. Checking *before*
    /// collecting keeps a hostile length prefix from pre-allocating
    /// gigabytes through a collector's size hint.
    fn items(&self, n: usize, elem_min: usize) -> Result<usize, CoreError> {
        let left = self.buf.len() - self.pos;
        if n.checked_mul(elem_min).is_none_or(|need| need > left) {
            return Err(short());
        }
        Ok(n)
    }
    fn u32s(&mut self) -> Result<Vec<u32>, CoreError> {
        let len = self.u32()? as usize;
        let len = self.items(len, 4)?;
        (0..len).map(|_| self.u32()).collect()
    }
    fn finish(self) -> Result<(), CoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CoreError::Transport("trailing bytes in frame".into()))
        }
    }
}

fn short() -> CoreError {
    CoreError::Transport("short frame".into())
}

/// Serialises a request.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Root => Writer::new(0).buf,
        Request::GetLoc { pre } => {
            let mut w = Writer::new(1);
            w.u32(*pre);
            w.buf
        }
        Request::Children { pre } => {
            let mut w = Writer::new(2);
            w.u32(*pre);
            w.buf
        }
        Request::Descendants { loc } => {
            let mut w = Writer::new(3);
            w.loc(*loc);
            w.buf
        }
        Request::Eval { pre, point } => {
            let mut w = Writer::new(4);
            w.u32(*pre);
            w.u64(*point);
            w.buf
        }
        Request::EvalMany { pres, point } => {
            let mut w = Writer::new(5);
            w.u32s(pres);
            w.u64(*point);
            w.buf
        }
        Request::GetPolys { pres } => {
            let mut w = Writer::new(6);
            w.u32s(pres);
            w.buf
        }
        Request::OpenChildrenCursor { pres } => {
            let mut w = Writer::new(7);
            w.u32s(pres);
            w.buf
        }
        Request::OpenDescendantsCursor { locs } => {
            let mut w = Writer::new(8);
            w.u32(locs.len() as u32);
            for &l in locs {
                w.loc(l);
            }
            w.buf
        }
        Request::Next { cursor } => {
            let mut w = Writer::new(9);
            w.u32(*cursor);
            w.buf
        }
        Request::CloseCursor { cursor } => {
            let mut w = Writer::new(10);
            w.u32(*cursor);
            w.buf
        }
        Request::Count => Writer::new(11).buf,
        Request::Shutdown => Writer::new(12).buf,
        Request::ShardCount => Writer::new(15).buf,
        Request::Reshard { shards } => {
            let mut w = Writer::new(16);
            w.u32(*shards);
            w.buf
        }
        Request::Hello { version } => {
            let mut w = Writer::new(REQ_HELLO_TAG);
            w.u32(*version);
            w.buf
        }
        Request::Insert { rows } => {
            let mut w = Writer::new(18);
            w.u32(rows.len() as u32);
            for (loc, poly) in rows {
                w.loc(*loc);
                w.bytes(poly);
            }
            w.buf
        }
        Request::Delete { pres } => {
            let mut w = Writer::new(19);
            w.u32s(pres);
            w.buf
        }
        Request::MaxPre => Writer::new(20).buf,
        Request::Roots => Writer::new(21).buf,
        Request::Epoch => Writer::new(22).buf,
        Request::Agg {
            op,
            pres,
            expect_epoch,
        } => {
            let mut w = Writer::new(23);
            w.u8(*op);
            w.u64(*expect_epoch);
            w.u32s(pres);
            w.buf
        }
        Request::Batch(subs) => {
            let mut w = Writer::new(13);
            w.u32(subs.len() as u32);
            for sub in subs {
                debug_assert!(
                    !matches!(sub, Request::Batch(_) | Request::ToShard { .. }),
                    "batches must be flat"
                );
                w.bytes(&encode_request(sub));
            }
            w.buf
        }
        Request::ToShard { shard, req } => {
            let mut w = Writer::new(14);
            w.u32(*shard);
            debug_assert!(
                !matches!(**req, Request::ToShard { .. }),
                "shard tags must not nest"
            );
            w.bytes(&encode_request(req));
            w.buf
        }
    }
}

/// How deep compound frames may nest when decoding: a `ToShard` may carry a
/// `Batch`, a `Batch` carries only simple requests.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Nesting {
    /// Top level: every frame allowed.
    Top,
    /// Inside `ToShard`: `Batch` allowed, `ToShard` not.
    InShard,
    /// Inside `Batch`: simple requests only.
    InBatch,
}

/// Deserialises a request.
pub fn decode_request(buf: &[u8]) -> Result<Request, CoreError> {
    decode_request_nested(buf, Nesting::Top)
}

fn decode_request_nested(buf: &[u8], nesting: Nesting) -> Result<Request, CoreError> {
    let mut r = Reader::new(buf);
    let tag = r.u8()?;
    let req = match tag {
        0 => Request::Root,
        1 => Request::GetLoc { pre: r.u32()? },
        2 => Request::Children { pre: r.u32()? },
        3 => Request::Descendants { loc: r.loc()? },
        4 => Request::Eval {
            pre: r.u32()?,
            point: r.u64()?,
        },
        5 => Request::EvalMany {
            pres: r.u32s()?,
            point: r.u64()?,
        },
        6 => Request::GetPolys { pres: r.u32s()? },
        7 => Request::OpenChildrenCursor { pres: r.u32s()? },
        8 => {
            let n = r.u32()? as usize;
            let n = r.items(n, 12)?;
            let locs = (0..n).map(|_| r.loc()).collect::<Result<Vec<_>, _>>()?;
            Request::OpenDescendantsCursor { locs }
        }
        9 => Request::Next { cursor: r.u32()? },
        10 => Request::CloseCursor { cursor: r.u32()? },
        11 => Request::Count,
        12 => Request::Shutdown,
        15 => Request::ShardCount,
        16 => Request::Reshard { shards: r.u32()? },
        REQ_HELLO_TAG => Request::Hello { version: r.u32()? },
        18 => {
            if nesting == Nesting::InBatch {
                return Err(CoreError::Transport("write frame refused in batch".into()));
            }
            let n = r.u32()? as usize;
            // Each row costs at least its 12 Loc bytes plus a length prefix.
            let n = r.items(n, 16)?;
            let rows = (0..n)
                .map(|_| Ok((r.loc()?, r.bytes()?)))
                .collect::<Result<Vec<_>, CoreError>>()?;
            Request::Insert { rows }
        }
        19 => {
            if nesting == Nesting::InBatch {
                return Err(CoreError::Transport("write frame refused in batch".into()));
            }
            Request::Delete { pres: r.u32s()? }
        }
        20 => Request::MaxPre,
        21 => Request::Roots,
        22 => Request::Epoch,
        23 => {
            let op = r.u8()?;
            if op > AGG_FETCH {
                return Err(CoreError::Transport(format!("unknown agg op {op}")));
            }
            Request::Agg {
                op,
                expect_epoch: r.u64()?,
                pres: r.u32s()?,
            }
        }
        13 => {
            if nesting != Nesting::Top && nesting != Nesting::InShard {
                return Err(CoreError::Transport("nested batch refused".into()));
            }
            let n = r.u32()? as usize;
            // Each sub-frame costs at least its length prefix plus a tag.
            let n = r.items(n, 5)?;
            let subs = (0..n)
                .map(|_| {
                    let frame = r.bytes()?;
                    decode_request_nested(&frame, Nesting::InBatch)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Request::Batch(subs)
        }
        14 => {
            if nesting != Nesting::Top {
                return Err(CoreError::Transport("nested shard tag refused".into()));
            }
            let shard = r.u32()?;
            let frame = r.bytes()?;
            let req = decode_request_nested(&frame, Nesting::InShard)?;
            Request::ToShard {
                shard,
                req: Box::new(req),
            }
        }
        t => return Err(CoreError::Transport(format!("unknown request tag {t}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Serialises a response.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::MaybeLoc(opt) => {
            let mut w = Writer::new(0);
            match opt {
                None => w.u32(0),
                Some(l) => {
                    w.u32(1);
                    w.loc(*l);
                }
            }
            w.buf
        }
        Response::Locs(locs) => {
            let mut w = Writer::new(1);
            w.u32(locs.len() as u32);
            for &l in locs {
                w.loc(l);
            }
            w.buf
        }
        Response::Value(v) => {
            let mut w = Writer::new(2);
            w.u64(*v);
            w.buf
        }
        Response::Values(vs) => {
            let mut w = Writer::new(3);
            w.u32(vs.len() as u32);
            for &v in vs {
                w.u64(v);
            }
            w.buf
        }
        Response::Polys(ps) => {
            let mut w = Writer::new(4);
            w.u32(ps.len() as u32);
            for p in ps {
                w.bytes(p);
            }
            w.buf
        }
        Response::Cursor(c) => {
            let mut w = Writer::new(5);
            w.u32(*c);
            w.buf
        }
        Response::Count(n) => {
            let mut w = Writer::new(6);
            w.u64(*n);
            w.buf
        }
        Response::Ok => Writer::new(7).buf,
        Response::Err(msg) => {
            let mut w = Writer::new(8);
            w.bytes(msg.as_bytes());
            w.buf
        }
        Response::Batch(subs) => {
            let mut w = Writer::new(9);
            w.u32(subs.len() as u32);
            for sub in subs {
                debug_assert!(!matches!(sub, Response::Batch(_)), "batches must be flat");
                w.bytes(&encode_response(sub));
            }
            w.buf
        }
        Response::Hello { version, shards } => {
            let mut w = Writer::new(10);
            w.u32(*version);
            w.u32(*shards);
            w.buf
        }
        Response::Agg { found, partials } => {
            let mut w = Writer::new(11);
            w.u32s(found);
            w.u32(partials.len() as u32);
            for p in partials {
                w.bytes(p);
            }
            w.buf
        }
    }
}

/// Deserialises a response.
pub fn decode_response(buf: &[u8]) -> Result<Response, CoreError> {
    decode_response_nested(buf, true)
}

fn decode_response_nested(buf: &[u8], allow_batch: bool) -> Result<Response, CoreError> {
    let mut r = Reader::new(buf);
    let tag = r.u8()?;
    let resp = match tag {
        0 => {
            let has = r.u32()?;
            Response::MaybeLoc(if has == 1 { Some(r.loc()?) } else { None })
        }
        1 => {
            let n = r.u32()? as usize;
            let n = r.items(n, 12)?;
            Response::Locs((0..n).map(|_| r.loc()).collect::<Result<Vec<_>, _>>()?)
        }
        2 => Response::Value(r.u64()?),
        3 => {
            let n = r.u32()? as usize;
            let n = r.items(n, 8)?;
            Response::Values((0..n).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?)
        }
        4 => {
            let n = r.u32()? as usize;
            // Each packed polynomial costs at least its length prefix.
            let n = r.items(n, 4)?;
            Response::Polys((0..n).map(|_| r.bytes()).collect::<Result<Vec<_>, _>>()?)
        }
        5 => Response::Cursor(r.u32()?),
        6 => Response::Count(r.u64()?),
        7 => Response::Ok,
        8 => {
            let msg = r.bytes()?;
            Response::Err(String::from_utf8_lossy(&msg).into_owned())
        }
        9 => {
            if !allow_batch {
                return Err(CoreError::Transport("nested batch refused".into()));
            }
            let n = r.u32()? as usize;
            // Each sub-frame costs at least its length prefix plus a tag.
            let n = r.items(n, 5)?;
            let subs = (0..n)
                .map(|_| {
                    let frame = r.bytes()?;
                    decode_response_nested(&frame, false)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Response::Batch(subs)
        }
        10 => Response::Hello {
            version: r.u32()?,
            shards: r.u32()?,
        },
        11 => {
            let found = r.u32s()?;
            let n = r.u32()? as usize;
            // Each packed partial costs at least its length prefix.
            let n = r.items(n, 4)?;
            Response::Agg {
                found,
                partials: (0..n).map(|_| r.bytes()).collect::<Result<Vec<_>, _>>()?,
            }
        }
        t => return Err(CoreError::Transport(format!("unknown response tag {t}"))),
    };
    r.finish()?;
    Ok(resp)
}

// ---- zero-copy response views ----------------------------------------------

/// The element array of a `Values` frame, viewed in place when possible.
///
/// A `Values` payload is `count` little-endian `u64`s starting 5 bytes into
/// the frame (tag + count prefix), so its natural alignment is an accident
/// of the receive buffer. When the payload happens to be 8-byte aligned on a
/// little-endian host the slice is reinterpreted in place; otherwise the
/// elements are copied out once. Both arms present the same `&[u64]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValuesView<'a> {
    /// Payload bytes reinterpreted in place — no allocation, no copy.
    Borrowed(&'a [u64]),
    /// Copy fallback: misaligned payload or big-endian host.
    Owned(Vec<u64>),
}

impl ValuesView<'_> {
    /// The elements, wherever they live.
    pub fn as_slice(&self) -> &[u64] {
        match self {
            ValuesView::Borrowed(s) => s,
            ValuesView::Owned(v) => v,
        }
    }

    /// Detaches the view from the frame.
    pub fn into_vec(self) -> Vec<u64> {
        match self {
            ValuesView::Borrowed(s) => s.to_vec(),
            ValuesView::Owned(v) => v,
        }
    }
}

/// Interprets `bytes` (exactly `n` little-endian u64s) as a [`ValuesView`],
/// borrowing in place when alignment and endianness allow.
fn values_view(bytes: &[u8], n: usize) -> ValuesView<'_> {
    debug_assert_eq!(bytes.len(), n * 8);
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `align_to` only yields a non-empty prefix-free middle when
        // the pointer is 8-byte aligned and the length covers whole u64s;
        // every u64 bit pattern is valid, and on a little-endian host the
        // in-memory bytes of a u64 are exactly the wire encoding.
        let (head, mid, tail) = unsafe { bytes.align_to::<u64>() };
        if head.is_empty() && tail.is_empty() && mid.len() == n {
            return ValuesView::Borrowed(mid);
        }
    }
    ValuesView::Owned(
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect(),
    )
}

/// A response decoded without copying its bulk payloads out of the frame.
///
/// Accepts exactly the frames [`decode_response`] accepts and rejects
/// exactly the frames it rejects — the two decoders share the `Reader`
/// validation path, so `decode_response_view(buf).map(ResponseView::into_owned)`
/// is observationally identical to `decode_response(buf)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseView<'a> {
    /// `Values` with the element array viewed in place when aligned.
    Values(ValuesView<'a>),
    /// `Polys` with each packed polynomial borrowed from the frame.
    Polys(Vec<&'a [u8]>),
    /// `Batch` of borrowed sub-views.
    Batch(Vec<ResponseView<'a>>),
    /// Every other variant carries no bulk payload; decoded eagerly.
    Other(Response),
}

impl<'a> ResponseView<'a> {
    /// A view lending the bulk payloads of an already-decoded response —
    /// what [`crate::transport::Transport::call_with`]'s default
    /// implementation hands to the sink when a transport has no wire buffer
    /// to borrow from. Non-bulk variants are cloned (they are a few words).
    pub fn of(resp: &'a Response) -> ResponseView<'a> {
        match resp {
            Response::Values(vs) => ResponseView::Values(ValuesView::Borrowed(vs)),
            Response::Polys(ps) => ResponseView::Polys(ps.iter().map(|p| p.as_slice()).collect()),
            Response::Batch(subs) => {
                ResponseView::Batch(subs.iter().map(ResponseView::of).collect())
            }
            other => ResponseView::Other(other.clone()),
        }
    }

    /// Converts to the owned [`Response`], copying any still-borrowed data.
    pub fn into_owned(self) -> Response {
        match self {
            ResponseView::Values(v) => Response::Values(v.into_vec()),
            ResponseView::Polys(ps) => {
                Response::Polys(ps.into_iter().map(|p| p.to_vec()).collect())
            }
            ResponseView::Batch(subs) => {
                Response::Batch(subs.into_iter().map(|s| s.into_owned()).collect())
            }
            ResponseView::Other(r) => r,
        }
    }
}

/// Zero-copy counterpart of [`decode_response`]: bulk payloads (`Values`
/// elements, `Polys` bytes) stay borrowed from `buf`; everything else is
/// decoded as usual. Same validation, same errors.
pub fn decode_response_view(buf: &[u8]) -> Result<ResponseView<'_>, CoreError> {
    decode_response_view_nested(buf, true)
}

fn decode_response_view_nested(
    buf: &[u8],
    allow_batch: bool,
) -> Result<ResponseView<'_>, CoreError> {
    let mut r = Reader::new(buf);
    let tag = r.u8()?;
    let view = match tag {
        3 => {
            let n = r.u32()? as usize;
            let n = r.items(n, 8)?;
            ResponseView::Values(values_view(r.take(n * 8)?, n))
        }
        4 => {
            let n = r.u32()? as usize;
            let n = r.items(n, 4)?;
            ResponseView::Polys(
                (0..n)
                    .map(|_| r.bytes_ref())
                    .collect::<Result<Vec<_>, _>>()?,
            )
        }
        9 => {
            if !allow_batch {
                return Err(CoreError::Transport("nested batch refused".into()));
            }
            let n = r.u32()? as usize;
            let n = r.items(n, 5)?;
            let subs = (0..n)
                .map(|_| {
                    let frame = r.bytes_ref()?;
                    decode_response_view_nested(frame, false)
                })
                .collect::<Result<Vec<_>, _>>()?;
            ResponseView::Batch(subs)
        }
        _ => {
            // No bulk payload behind this tag: the owned decoder is already
            // copy-free for it. `allow_batch` was only consumed above.
            return decode_response_nested(buf, allow_batch).map(ResponseView::Other);
        }
    };
    r.finish()?;
    Ok(view)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(pre: u32) -> Loc {
        Loc {
            pre,
            post: pre + 1,
            parent: pre.saturating_sub(1),
        }
    }

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Root,
            Request::GetLoc { pre: 7 },
            Request::Children { pre: 42 },
            Request::Descendants { loc: loc(3) },
            Request::Eval { pre: 1, point: 82 },
            Request::EvalMany {
                pres: vec![1, 2, 3],
                point: 5,
            },
            Request::EvalMany {
                pres: vec![],
                point: 0,
            },
            Request::GetPolys { pres: vec![9, 8] },
            Request::OpenChildrenCursor { pres: vec![1] },
            Request::OpenDescendantsCursor {
                locs: vec![loc(1), loc(5)],
            },
            Request::Next { cursor: 2 },
            Request::CloseCursor { cursor: 2 },
            Request::Count,
            Request::Shutdown,
            Request::ShardCount,
            Request::Reshard { shards: 4 },
            Request::Hello {
                version: MUX_PROTOCOL_VERSION,
            },
            Request::Insert { rows: vec![] },
            Request::Insert {
                rows: vec![(loc(1), vec![1, 2, 3]), (loc(2), vec![])],
            },
            Request::Delete { pres: vec![] },
            Request::Delete { pres: vec![4, 5] },
            Request::MaxPre,
            Request::Roots,
            Request::Epoch,
            Request::Agg {
                op: AGG_CHECK,
                pres: vec![],
                expect_epoch: 0,
            },
            Request::Agg {
                op: AGG_SUM,
                pres: vec![1 << 30, (1 << 30) + 7],
                expect_epoch: 12,
            },
            Request::Agg {
                op: AGG_FETCH,
                pres: vec![9],
                expect_epoch: u64::MAX,
            },
            Request::Batch(vec![
                Request::Roots,
                Request::Epoch,
                Request::Agg {
                    op: AGG_SUM,
                    pres: vec![5],
                    expect_epoch: 3,
                },
            ]),
            Request::ToShard {
                shard: 1,
                req: Box::new(Request::Insert {
                    rows: vec![(loc(9), vec![0xAB; 17])],
                }),
            },
            Request::ToShard {
                shard: 3,
                req: Box::new(Request::Delete { pres: vec![7] }),
            },
            Request::Batch(vec![]),
            Request::Batch(vec![
                Request::Root,
                Request::Children { pre: 4 },
                Request::EvalMany {
                    pres: vec![1, 9],
                    point: 3,
                },
            ]),
            Request::ToShard {
                shard: 2,
                req: Box::new(Request::Count),
            },
            Request::ToShard {
                shard: 0,
                req: Box::new(Request::Batch(vec![Request::Root, Request::Count])),
            },
        ];
        for req in cases {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = vec![
            Response::MaybeLoc(None),
            Response::MaybeLoc(Some(loc(4))),
            Response::Locs(vec![]),
            Response::Locs(vec![loc(1), loc(2)]),
            Response::Value(81),
            Response::Values(vec![0, 1, 82]),
            Response::Polys(vec![vec![1, 2, 3], vec![]]),
            Response::Cursor(9),
            Response::Count(1234),
            Response::Ok,
            Response::Err("boom".into()),
            Response::Batch(vec![]),
            Response::Batch(vec![
                Response::Ok,
                Response::Values(vec![7, 0]),
                Response::Err("one bad slot".into()),
            ]),
            Response::Hello {
                version: 1,
                shards: 4,
            },
            Response::Agg {
                found: vec![],
                partials: vec![],
            },
            Response::Agg {
                found: vec![1 << 30, (1 << 30) + 4],
                partials: vec![vec![7, 8, 9], vec![]],
            },
        ];
        for resp in cases {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn corrupt_frames_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[99]).is_err(), "unknown tag");
        assert!(decode_request(&[4, 1, 0]).is_err(), "truncated Eval");
        assert!(
            decode_response(&[1, 255, 255, 255, 255]).is_err(),
            "absurd length"
        );
        // Trailing garbage detected.
        let mut ok = encode_request(&Request::Root);
        ok.push(0);
        assert!(decode_request(&ok).is_err());
    }

    /// A hostile length prefix must fail the per-element bound check before
    /// any collector pre-allocates from it: `n` declared elements cannot
    /// outnumber the bytes left in the frame divided by the element's
    /// minimum encoding size.
    #[test]
    fn absurd_counts_rejected_before_allocation() {
        // Batch claiming u32::MAX sub-requests with an empty body.
        let mut w = vec![13u8];
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&w).is_err());
        // Locs response claiming more entries than 12 bytes each allow.
        let mut w = vec![1u8];
        w.extend_from_slice(&3u32.to_le_bytes());
        w.extend_from_slice(&[0u8; 24]); // room for 2, not 3
        assert!(decode_response(&w).is_err());
        // Polys response with a huge count and no payload.
        let mut w = vec![4u8];
        w.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(decode_response(&w).is_err());
        // OpenDescendantsCursor with a count that cannot fit.
        let mut w = vec![8u8];
        w.extend_from_slice(&1000u32.to_le_bytes());
        w.extend_from_slice(&[0u8; 12]);
        assert!(decode_request(&w).is_err());
        // Insert claiming more rows than 16 bytes each allow.
        let mut w = vec![18u8];
        w.extend_from_slice(&100u32.to_le_bytes());
        w.extend_from_slice(&[0u8; 32]); // room for 2, not 100
        assert!(decode_request(&w).is_err());
        // Agg claiming more pres than the frame holds.
        let mut w = vec![23u8, AGG_SUM];
        w.extend_from_slice(&0u64.to_le_bytes());
        w.extend_from_slice(&1000u32.to_le_bytes());
        w.extend_from_slice(&[0u8; 8]); // room for 2, not 1000
        assert!(decode_request(&w).is_err());
        // Agg response with a hostile partial count.
        let mut w = encode_response(&Response::Agg {
            found: vec![],
            partials: vec![],
        });
        w.truncate(w.len() - 4);
        w.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(decode_response(&w).is_err());
    }

    /// An unknown aggregation op must be refused at decode time — a server
    /// must never guess what a newer client meant.
    #[test]
    fn unknown_agg_op_rejected() {
        let mut w = encode_request(&Request::Agg {
            op: AGG_FETCH,
            pres: vec![],
            expect_epoch: 0,
        });
        w[1] = AGG_FETCH + 1;
        assert!(decode_request(&w).is_err());
    }

    #[test]
    fn compound_nesting_rules_enforced() {
        // A hand-built Batch-in-Batch frame must be refused by the decoder.
        let inner = encode_request(&Request::Batch(vec![Request::Root]));
        let mut w = vec![13u8];
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        w.extend_from_slice(&inner);
        assert!(decode_request(&w).is_err(), "nested batch");

        // ToShard-in-ToShard likewise.
        let inner = encode_request(&Request::ToShard {
            shard: 1,
            req: Box::new(Request::Root),
        });
        let mut w = vec![14u8];
        w.extend_from_slice(&0u32.to_le_bytes());
        w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        w.extend_from_slice(&inner);
        assert!(decode_request(&w).is_err(), "nested shard tag");

        // ToShard-in-Batch likewise (batches are flat).
        let inner = encode_request(&Request::ToShard {
            shard: 1,
            req: Box::new(Request::Root),
        });
        let mut w = vec![13u8];
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        w.extend_from_slice(&inner);
        assert!(decode_request(&w).is_err(), "shard tag inside batch");

        // Write frames inside a Batch are refused (writes must not be
        // reorderable against the reads sharing the round trip).
        for write in [
            Request::Insert {
                rows: vec![(loc(1), vec![1])],
            },
            Request::Delete { pres: vec![1] },
        ] {
            let inner = encode_request(&write);
            let mut w = vec![13u8];
            w.extend_from_slice(&1u32.to_le_bytes());
            w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
            w.extend_from_slice(&inner);
            assert!(decode_request(&w).is_err(), "write frame inside batch");
        }

        // Batch-in-Batch on the response side.
        let inner = encode_response(&Response::Batch(vec![Response::Ok]));
        let mut w = vec![9u8];
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
        w.extend_from_slice(&inner);
        assert!(decode_response(&w).is_err(), "nested response batch");
    }

    /// The single-request frames of the seed protocol must stay bit-identical
    /// — a sharded/batched client and a PR-2 server can interoperate on them.
    #[test]
    fn legacy_frame_bytes_unchanged() {
        assert_eq!(encode_request(&Request::Root), vec![0]);
        assert_eq!(
            encode_request(&Request::Eval { pre: 1, point: 82 }),
            vec![4, 1, 0, 0, 0, 82, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(encode_request(&Request::Count), vec![11]);
        assert_eq!(encode_request(&Request::Shutdown), vec![12]);
        assert_eq!(
            encode_request(&Request::Reshard { shards: 2 }),
            vec![16, 2, 0, 0, 0],
            "the PR-4 frame claims a fresh tag"
        );
        assert_eq!(
            encode_request(&Request::Hello { version: 1 }),
            vec![17, 1, 0, 0, 0],
            "the PR-5 handshake claims a fresh tag"
        );
        assert_eq!(
            encode_request(&Request::Insert {
                rows: vec![(
                    Loc {
                        pre: 1,
                        post: 2,
                        parent: 0
                    },
                    vec![0xAA]
                )]
            }),
            vec![18, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0xAA],
            "the PR-9 insert frame claims a fresh tag"
        );
        assert_eq!(
            encode_request(&Request::Delete { pres: vec![3] }),
            vec![19, 1, 0, 0, 0, 3, 0, 0, 0],
            "the PR-9 delete frame claims a fresh tag"
        );
        assert_eq!(encode_request(&Request::MaxPre), vec![20]);
        assert_eq!(encode_request(&Request::Roots), vec![21]);
        assert_eq!(
            encode_request(&Request::Epoch),
            vec![22],
            "the PR-10 epoch probe claims a fresh tag"
        );
        assert_eq!(
            encode_request(&Request::Agg {
                op: AGG_SUM,
                pres: vec![2],
                expect_epoch: 3,
            }),
            vec![23, 1, 3, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0],
            "the PR-10 aggregate frame claims a fresh tag"
        );
        assert_eq!(encode_response(&Response::Value(81)), {
            let mut v = vec![2u8];
            v.extend_from_slice(&81u64.to_le_bytes());
            v
        });
        assert_eq!(encode_response(&Response::Ok), vec![7]);
    }

    /// The view decoder must accept exactly what the owned decoder accepts
    /// and produce the same value, for every variant and at every buffer
    /// alignment — the borrow is an optimisation, never a semantic change.
    #[test]
    fn view_decode_matches_owned_decode() {
        let cases = vec![
            Response::MaybeLoc(Some(loc(4))),
            Response::Locs(vec![loc(1), loc(2)]),
            Response::Value(81),
            Response::Values(vec![]),
            Response::Values(vec![0, 1, 82, u64::MAX]),
            Response::Values((0..100).collect()),
            Response::Polys(vec![vec![1, 2, 3], vec![]]),
            Response::Cursor(9),
            Response::Count(1234),
            Response::Ok,
            Response::Err("boom".into()),
            Response::Batch(vec![
                Response::Ok,
                Response::Values(vec![7, 0]),
                Response::Polys(vec![vec![9]]),
                Response::Err("one bad slot".into()),
            ]),
            Response::Hello {
                version: 1,
                shards: 4,
            },
        ];
        for resp in cases {
            let bytes = encode_response(&resp);
            // Decode the same frame at 8 different alignments: copy it into
            // a padded buffer so the Values payload lands aligned for some
            // shifts and misaligned for others. Results must not differ.
            let mut padded = vec![0u8; bytes.len() + 16];
            for shift in 0..8 {
                padded[shift..shift + bytes.len()].copy_from_slice(&bytes);
                let view = decode_response_view(&padded[shift..shift + bytes.len()]).unwrap();
                assert_eq!(view.into_owned(), resp, "{resp:?} shift={shift}");
            }
        }
    }

    /// When the `Values` payload happens to be 8-byte aligned the view must
    /// actually borrow (that is the perf point), and the copy fallback must
    /// fire on the other alignments.
    #[cfg(target_endian = "little")]
    #[test]
    fn values_view_borrows_when_aligned() {
        let resp = Response::Values(vec![5, 6, 7]);
        let bytes = encode_response(&resp);
        let mut padded = vec![0u8; bytes.len() + 16];
        let mut borrowed = 0;
        let mut owned = 0;
        for shift in 0..8 {
            padded[shift..shift + bytes.len()].copy_from_slice(&bytes);
            match decode_response_view(&padded[shift..shift + bytes.len()]).unwrap() {
                ResponseView::Values(ValuesView::Borrowed(s)) => {
                    assert_eq!(s, &[5, 6, 7]);
                    borrowed += 1;
                }
                ResponseView::Values(ValuesView::Owned(v)) => {
                    assert_eq!(v, vec![5, 6, 7]);
                    owned += 1;
                }
                other => panic!("unexpected view {other:?}"),
            }
        }
        // The payload starts 5 bytes into the frame, so exactly one of the
        // 8 shifts puts it on an 8-byte boundary.
        assert_eq!(borrowed, 1, "exactly one shift should align the payload");
        assert_eq!(owned, 7);
    }

    /// Corrupt frames must be rejected by both decoders alike.
    #[test]
    fn view_decode_rejects_what_owned_rejects() {
        let corrupt: Vec<Vec<u8>> = vec![
            vec![],
            vec![99],
            {
                // Values claiming more elements than the frame holds.
                let mut w = vec![3u8];
                w.extend_from_slice(&10u32.to_le_bytes());
                w.extend_from_slice(&[0u8; 16]);
                w
            },
            {
                // Polys with a hostile count.
                let mut w = vec![4u8];
                w.extend_from_slice(&(1u32 << 30).to_le_bytes());
                w
            },
            {
                // Nested batch.
                let inner = encode_response(&Response::Batch(vec![Response::Ok]));
                let mut w = vec![9u8];
                w.extend_from_slice(&1u32.to_le_bytes());
                w.extend_from_slice(&(inner.len() as u32).to_le_bytes());
                w.extend_from_slice(&inner);
                w
            },
            {
                // Trailing garbage after a valid Values frame.
                let mut w = encode_response(&Response::Values(vec![1]));
                w.push(0);
                w
            },
        ];
        for frame in corrupt {
            assert!(
                decode_response(&frame).is_err(),
                "owned should reject {frame:?}"
            );
            assert!(
                decode_response_view(&frame).is_err(),
                "view should reject {frame:?}"
            );
        }
    }

    /// The correlation envelope is the legacy frame with 8 id bytes in
    /// front — nothing inside the frame changes, and splitting returns the
    /// id exactly as written.
    #[test]
    fn corr_envelope_round_trips_and_rejects_short_payloads() {
        let frame = encode_request(&Request::Eval { pre: 1, point: 82 });
        for corr in [0u64, 1, u64::MAX, 0xDEAD_BEEF_0102_0304] {
            let payload = encode_corr_payload(corr, &frame);
            assert_eq!(payload.len(), CORR_BYTES + frame.len());
            let (got, inner) = decode_corr_payload(&payload).unwrap();
            assert_eq!(got, corr);
            assert_eq!(inner, &frame[..], "inner bytes are the legacy frame");
        }
        for short in 0..CORR_BYTES {
            assert!(decode_corr_payload(&vec![0u8; short]).is_err());
        }
        // Exactly 8 bytes: a valid envelope around an empty frame.
        let bare = 7u64.to_le_bytes();
        let (corr, inner) = decode_corr_payload(&bare).unwrap();
        assert_eq!(corr, 7);
        assert!(inner.is_empty());
    }
}
