//! Transports carrying the protocol frames.
//!
//! [`LocalTransport`] runs the server in-process but still encodes and
//! decodes every frame, so byte/round-trip counters mean the same thing they
//! would over a network. [`TcpTransport`]/[`serve_tcp`] carry the identical
//! frames over a socket with 4-byte length prefixes — used by the
//! `client_server_tcp` example and the integration tests.
//!
//! # Multiplexed transport
//!
//! The thread-per-connection hosts serialize a connection's waves: one
//! request must be answered before the next is read, and every concurrent
//! client costs an OS thread. [`serve_tcp_mux`] and the client-side
//! [`MuxPool`]/[`MuxTransport`] replace that with a **multiplexed** plane:
//!
//! * a connection upgrades via a versioned [`Request::Hello`] handshake
//!   (the extension of the [`Request::ShardCount`] exchange — the answer
//!   carries the fleet size too), after which every frame payload is
//!   prefixed with a `u64` correlation id
//!   ([`crate::protocol::encode_corr_payload`]); pre-handshake frames keep
//!   their exact legacy bytes, so a mux host still serves legacy clients;
//! * the host runs a *small fixed pool* of threads — one reader/dispatcher
//!   sweeping all connections' nonblocking sockets plus `workers`
//!   executors over the shared shard fleet, each writing its response the
//!   moment it completes under a per-connection send lock — so responses
//!   leave in **completion order**, not arrival order: a cheap request is
//!   never stuck behind an expensive one, whichever connection carried it;
//! * the client pool opens **one socket per shard** and hands out any
//!   number of [`MuxTransport`]s onto them: each in-flight wave parks on a
//!   per-correlation completion slot, so many concurrent
//!   [`crate::router::ShardRouter`]s overlap their waves on the same wire.
//!
//! What the server observes per correlation id is exactly what it used to
//! observe per connection (see DESIGN.md's transport section for the
//! leakage discussion).

use crate::error::CoreError;
use crate::protocol::{
    decode_corr_payload, decode_request, decode_response, decode_response_view,
    encode_corr_payload, encode_request, encode_response, Request, Response, ResponseView,
    MUX_PROTOCOL_VERSION, REQ_HELLO_TAG,
};
use crate::server::ServerFilter;
use crate::shard::{ShardSpec, ShardedServer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};

/// The completion deadline of one call: an absolute instant, computed when
/// the call starts from the transport's configured budget
/// ([`Transport::set_call_budget`]). Threaded through every blocking wait of
/// a call — socket reads on [`TcpTransport`], completion-slot parks on
/// [`MuxTransport`] — so a peer that *hangs* (accepts the connection, then
/// never answers) turns into a typed [`CoreError::Timeout`] instead of a
/// wedge. `Deadline::NONE` means "wait forever", the pre-deadline behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: every wait blocks indefinitely.
    pub const NONE: Deadline = Deadline { at: None };

    /// A deadline `budget` from now, or [`Deadline::NONE`].
    pub fn of(budget: Option<Duration>) -> Self {
        Deadline {
            at: budget.map(|b| Instant::now() + b),
        }
    }

    /// Time left before the deadline (zero once passed); `None` when
    /// unbounded.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Some(Duration::ZERO)
    }
}

/// Traffic counters shared by all transports.
///
/// `round_trips` counts *logical* request waves: a batch frame is one round
/// trip however many sub-requests it carries, and a
/// [`crate::router::ShardRouter`] counts one wave when it contacts several
/// shards concurrently (the per-shard sends show up in `shard_dispatches`
/// and in the per-shard [`crate::router::ShardRouter::shard_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Logical round trips (request waves).
    pub round_trips: u64,
    /// Request bytes (client → server).
    pub bytes_sent: u64,
    /// Response bytes (server → client).
    pub bytes_received: u64,
    /// Batch frames sent (each is one round trip carrying many requests).
    pub batches: u64,
    /// Sub-requests carried inside batch frames.
    pub batched_requests: u64,
    /// Physical per-shard sends made by a router on behalf of the logical
    /// waves (0 on direct transports).
    pub shard_dispatches: u64,
    /// Requests answered from a router's speculation cache instead of a
    /// round trip (0 unless speculation is enabled on a shard router).
    pub speculative_hits: u64,
    /// Speculative prefetches issued but (as of this snapshot) never
    /// consumed — the cost of mis-speculation. Not monotonic: an entry
    /// counted wasted now may still be consumed by a later wave.
    pub speculative_wasted: u64,
    /// Fleet waves answered from the first `t` verified responses while at
    /// least one slower party was still in flight (0 unless hedged
    /// reconstruction is enabled on a fleet transport).
    pub hedged_wins: u64,
    /// Milliseconds of straggler tail hidden by hedging: for every drained
    /// straggler, how long it kept running *after* its wave had already
    /// been answered.
    pub straggler_ms: u64,
}

/// A synchronous request/response channel to a `ServerFilter`.
pub trait Transport {
    /// Sends one request and waits for the response.
    fn call(&mut self, req: &Request) -> Result<Response, CoreError>;

    /// Sends many requests in one logical round trip, returning responses
    /// in request order. Failed sub-requests come back as inline
    /// [`Response::Err`] slots. The default implementation degrades to one
    /// round trip per request (the unbatched wire shape); every built-in
    /// transport overrides it with a single [`Request::Batch`] frame.
    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        reqs.iter().map(|r| self.call(r)).collect()
    }

    /// Sends one request and lends the response to `sink` as a borrowed
    /// [`ResponseView`] while the receive buffer is still alive — the
    /// first-touch decode path. Transports that own a wire frame override
    /// this to decode it in place ([`crate::protocol::decode_response_view`]),
    /// so a bulk `Values` payload reaches the sink without ever being copied
    /// out of the receive buffer; the default lends a view of the owned
    /// response, which is correct everywhere and costs one extra copy at
    /// most. Accepts exactly what [`Transport::call`] accepts.
    fn call_with(
        &mut self,
        req: &Request,
        sink: &mut dyn FnMut(ResponseView<'_>) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        let resp = self.call(req)?;
        sink(ResponseView::of(&resp))
    }

    /// Whether this transport can park an in-flight call and overlap
    /// several of them without a thread each
    /// ([`Transport::call_pipelined`]/[`Transport::finish_pipelined`]).
    /// Routers use it to pick the cheapest wave-overlap strategy: pipelined
    /// sends on a multiplexed transport, scoped threads on a blocking one.
    fn pipelines(&self) -> bool {
        false
    }

    /// Sends `req` without waiting and parks the in-flight call. Only
    /// meaningful when [`Transport::pipelines`] is `true`; the default
    /// refuses.
    fn call_pipelined(&mut self, req: &Request) -> Result<PendingCall, CoreError> {
        let _ = req;
        Err(CoreError::Transport(
            "transport does not pipeline calls".into(),
        ))
    }

    /// Blocks until a call parked by [`Transport::call_pipelined`] **on
    /// this same transport** completes, and accounts it.
    fn finish_pipelined(&mut self, call: PendingCall) -> Result<Response, CoreError> {
        let _ = call;
        Err(CoreError::Transport(
            "transport does not pipeline calls".into(),
        ))
    }

    /// Counter snapshot.
    fn stats(&self) -> TransportStats;

    /// Sets the per-call completion budget: each subsequent call gets a
    /// fresh [`Deadline`] this far in the future and fails with
    /// [`CoreError::Timeout`] when it passes. `None` (the default) waits
    /// forever. Transports that cannot block — the in-process ones — ignore
    /// it, which is what the default does; composite transports (routers,
    /// fleets) forward it to every constituent.
    fn set_call_budget(&mut self, budget: Option<Duration>) {
        let _ = budget;
    }
}

/// An in-flight call parked by [`Transport::call_pipelined`]: the frame is
/// on the wire, the response will resolve the held completion slot. Only
/// multiplexed transports construct these.
pub struct PendingCall {
    rx: mpsc::Receiver<SlotResult>,
    /// Correlation id and connection of the in-flight wave, so a timed-out
    /// wait can unregister its completion slot (a late response then counts
    /// as stray instead of leaking the slot).
    corr: u64,
    conn: Arc<MuxClientConn>,
    /// Captured when the frame hit the wire: pipelined calls time out
    /// relative to their *send*, not to when the caller parks on them.
    deadline: Deadline,
    /// Mux transports park the request so [`Transport::finish_pipelined`]
    /// can heal a reshard fence: re-pool the slot's connection and replay
    /// the request once (see [`MuxPool`]).
    retry: Option<Request>,
}

/// The shared `call_batch` body of the concrete frame transports: empty and
/// singleton fast paths, batch counters, one [`Request::Batch`] envelope
/// (which `call` counts as the single round trip it is), unwrap.
fn framed_call_batch<T: Transport + HasStats>(
    transport: &mut T,
    reqs: &[Request],
) -> Result<Vec<Response>, CoreError> {
    if reqs.is_empty() {
        return Ok(Vec::new());
    }
    if reqs.len() == 1 {
        return Ok(vec![transport.call(&reqs[0])?]);
    }
    let stats = transport.stats_mut();
    stats.batches += 1;
    stats.batched_requests += reqs.len() as u64;
    let resp = transport.call(&Request::Batch(reqs.to_vec()))?;
    unwrap_batch(resp, reqs.len())
}

/// Mutable counter access for [`framed_call_batch`].
trait HasStats {
    fn stats_mut(&mut self) -> &mut TransportStats;
}

/// Shared by the concrete transports: wrap `reqs` in one batch frame and
/// unwrap the multi-response, validating the slot count.
pub(crate) fn unwrap_batch(resp: Response, expected: usize) -> Result<Vec<Response>, CoreError> {
    match resp {
        Response::Batch(subs) if subs.len() == expected => Ok(subs),
        Response::Batch(subs) => Err(CoreError::Transport(format!(
            "batch answered {} of {expected} slots",
            subs.len()
        ))),
        Response::Err(e) => Err(CoreError::Transport(e)),
        other => Err(CoreError::Transport(format!(
            "unexpected batch response {other:?}"
        ))),
    }
}

/// In-process transport: full encode/decode on both sides, zero I/O.
pub struct LocalTransport {
    server: ServerFilter,
    stats: TransportStats,
}

impl LocalTransport {
    /// Wraps a server filter.
    pub fn new(server: ServerFilter) -> Self {
        LocalTransport {
            server,
            stats: TransportStats::default(),
        }
    }

    /// Read access to the wrapped server (server-side stats, table sizes).
    pub fn server(&self) -> &ServerFilter {
        &self.server
    }

    /// Mutable access (stat resets in benches).
    pub fn server_mut(&mut self) -> &mut ServerFilter {
        &mut self.server
    }

    /// Consumes the transport, yielding the wrapped server filter (used by
    /// the router's online re-shard to take the fleet back).
    pub fn into_server(self) -> ServerFilter {
        self.server
    }

    /// One round trip, returning the raw response frame: the shared body of
    /// [`Transport::call`] (owned decode) and [`Transport::call_with`]
    /// (in-place view decode). Encode/decode both directions so counted
    /// bytes match TCP exactly.
    fn exchange(&mut self, req: &Request) -> Result<Vec<u8>, CoreError> {
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        let decoded = decode_request(&frame)?;
        let resp = self.server.handle(&decoded);
        let resp_frame = encode_response(&resp);
        self.stats.bytes_received += resp_frame.len() as u64;
        self.stats.round_trips += 1;
        Ok(resp_frame)
    }
}

impl Transport for LocalTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let resp_frame = self.exchange(req)?;
        decode_response(&resp_frame)
    }

    fn call_with(
        &mut self,
        req: &Request,
        sink: &mut dyn FnMut(ResponseView<'_>) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        let resp_frame = self.exchange(req)?;
        sink(decode_response_view(&resp_frame)?)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        framed_call_batch(self, reqs)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl HasStats for LocalTransport {
    fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }
}

/// Client side of the TCP transport. Frames are `u32` length + payload.
pub struct TcpTransport {
    stream: TcpStream,
    stats: TransportStats,
    /// Per-call budget ([`Transport::set_call_budget`]); `None` blocks.
    budget: Option<Duration>,
    /// Set by the first timed-out call. The request/response framing has no
    /// correlation ids, so a late answer to the abandoned call would be
    /// misread as the answer to the *next* one — after a timeout the socket
    /// is shut down and every later call fails fast with this reason.
    poisoned: Option<String>,
}

impl HasStats for TcpTransport {
    fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }
}

impl TcpTransport {
    /// Connects to a [`serve_tcp`] endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, CoreError> {
        Self::connect_within(addr, None)
    }

    /// [`TcpTransport::connect`] bounded by `timeout`: the TCP connect
    /// itself must complete within it (`None` = the OS default). The bound
    /// covers the *connect* only; set a per-call budget for the calls.
    pub fn connect_within<A: ToSocketAddrs>(
        addr: A,
        timeout: Option<Duration>,
    ) -> Result<Self, CoreError> {
        let stream = match timeout {
            None => TcpStream::connect(addr)
                .map_err(|e| CoreError::Transport(format!("connect: {e}")))?,
            Some(limit) => {
                let addr = addr
                    .to_socket_addrs()
                    .map_err(|e| CoreError::Transport(format!("resolve: {e}")))?
                    .next()
                    .ok_or_else(|| CoreError::Transport("address resolved to nothing".into()))?;
                TcpStream::connect_timeout(&addr, limit).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::TimedOut {
                        CoreError::Timeout(format!("connect to {addr} exceeded {limit:?}"))
                    } else {
                        CoreError::Transport(format!("connect: {e}"))
                    }
                })?
            }
        };
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
        Ok(TcpTransport {
            stream,
            stats: TransportStats::default(),
            budget: None,
            poisoned: None,
        })
    }
}

/// Largest frame any transport will read or buffer — a hostile length
/// prefix beyond it is refused before allocation.
pub(crate) const MAX_FRAME_BYTES: usize = 64 << 20;

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), CoreError> {
    let io = |e: std::io::Error| CoreError::Transport(format!("write: {e}"));
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, CoreError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(CoreError::Transport(format!("read: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(CoreError::Transport(format!(
            "frame of {len} bytes refused"
        )));
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| CoreError::Transport(format!("read: {e}")))?;
    Ok(Some(payload))
}

/// Whether an I/O error is a socket timeout — `WouldBlock` on Unix,
/// `TimedOut` on other platforms (`set_read_timeout`'s contract).
fn is_timeout_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Arms the socket's read or write timeout with what remains of `deadline`
/// (clears it when unbounded); an already-expired deadline fails without
/// touching the socket.
fn arm_socket_timeout(
    stream: &TcpStream,
    deadline: &Deadline,
    read: bool,
    what: &str,
) -> Result<(), CoreError> {
    let limit = match deadline.remaining() {
        None => None,
        Some(rem) if rem.is_zero() => {
            return Err(CoreError::Timeout(format!("{what}: call budget exhausted")))
        }
        Some(rem) => Some(rem),
    };
    let armed = if read {
        stream.set_read_timeout(limit)
    } else {
        stream.set_write_timeout(limit)
    };
    armed.map_err(|e| CoreError::Transport(format!("{what}: arming timeout: {e}")))
}

/// [`write_frame`] bounded by a [`Deadline`]: a send that stalls past it
/// (peer stopped reading, kernel buffer full) fails with
/// [`CoreError::Timeout`] instead of blocking forever.
fn write_frame_within(
    stream: &mut TcpStream,
    payload: &[u8],
    deadline: &Deadline,
) -> Result<(), CoreError> {
    arm_socket_timeout(stream, deadline, false, "write")?;
    let io = |e: std::io::Error| {
        if is_timeout_io(&e) {
            CoreError::Timeout("write stalled past the call budget".into())
        } else {
            CoreError::Transport(format!("write: {e}"))
        }
    };
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    Ok(())
}

/// [`read_frame`] bounded by a [`Deadline`]: re-arms the socket timeout
/// before each blocking read so the *whole* frame must arrive within the
/// budget, and maps a stalled read to [`CoreError::Timeout`].
fn read_frame_within(
    stream: &mut TcpStream,
    deadline: &Deadline,
) -> Result<Option<Vec<u8>>, CoreError> {
    let io = |e: std::io::Error| {
        if is_timeout_io(&e) {
            CoreError::Timeout("no response within the call budget".into())
        } else {
            CoreError::Transport(format!("read: {e}"))
        }
    };
    arm_socket_timeout(stream, deadline, true, "read")?;
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(io(e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(CoreError::Transport(format!(
            "frame of {len} bytes refused"
        )));
    }
    arm_socket_timeout(stream, deadline, true, "read")?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(io)?;
    Ok(Some(payload))
}

impl TcpTransport {
    /// One round trip, returning the raw response payload: the shared body
    /// of [`Transport::call`] (owned decode) and [`Transport::call_with`]
    /// (in-place view decode).
    fn exchange(&mut self, req: &Request) -> Result<Vec<u8>, CoreError> {
        if let Some(why) = &self.poisoned {
            return Err(CoreError::Transport(format!(
                "connection unusable after an earlier timeout ({why})"
            )));
        }
        let deadline = Deadline::of(self.budget);
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        let exchanged = write_frame_within(&mut self.stream, &frame, &deadline)
            .and_then(|()| read_frame_within(&mut self.stream, &deadline));
        let payload = match exchanged {
            Ok(Some(p)) => p,
            Ok(None) => return Err(CoreError::Transport("server closed connection".into())),
            Err(e) => {
                if matches!(e, CoreError::Timeout(_)) {
                    // The legacy framing has no correlation ids: a late
                    // answer to this abandoned call would be misread as the
                    // answer to the next one, so the socket must die with
                    // the call.
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    self.poisoned = Some(e.to_string());
                }
                return Err(e);
            }
        };
        self.stats.bytes_received += payload.len() as u64;
        self.stats.round_trips += 1;
        Ok(payload)
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let payload = self.exchange(req)?;
        decode_response(&payload)
    }

    fn call_with(
        &mut self,
        req: &Request,
        sink: &mut dyn FnMut(ResponseView<'_>) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        let payload = self.exchange(req)?;
        sink(decode_response_view(&payload)?)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        framed_call_batch(self, reqs)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_call_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
        if budget.is_none() {
            let _ = self.stream.set_read_timeout(None);
            let _ = self.stream.set_write_timeout(None);
        }
    }
}

/// Serves `server` on `listener`, one connection at a time, until a client
/// sends [`Request::Shutdown`]. A connection that breaks mid-stream (I/O
/// error, unframeable bytes) is dropped and the next one accepted — a
/// misbehaving client cannot take the server down. Returns the server
/// filter (with its final stats) when shut down.
pub fn serve_tcp(
    listener: TcpListener,
    mut server: ServerFilter,
) -> Result<ServerFilter, CoreError> {
    'outer: loop {
        let (mut stream, _) = listener
            .accept()
            .map_err(|e| CoreError::Transport(format!("accept: {e}")))?;
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        // A clean hang-up (None) or poisoned stream (Err) both end the
        // connection; the server accepts the next one.
        while let Ok(Some(frame)) = read_frame(&mut stream) {
            let resp = match decode_request(&frame) {
                Ok(req) => {
                    let resp = server.handle(&req);
                    let shutdown = matches!(req, Request::Shutdown);
                    if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                        break;
                    }
                    if shutdown {
                        break 'outer;
                    }
                    continue;
                }
                Err(e) => Response::Err(e.to_string()),
            };
            if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                break;
            }
        }
    }
    Ok(server)
}

/// The exact error a generation-fenced connection is answered with after an
/// online reshard. [`MuxPool`] transports match it verbatim to re-pool the
/// slot's connection and replay the fenced request once.
const RESHARD_FENCE: &str = "shard layout changed (reshard); reconnect";

/// Shared state of a concurrent sharded host: one independently lockable
/// filter per shard, so connections bound to different shards execute in
/// parallel. The fleet vector itself sits behind an `RwLock` so an online
/// [`Request::Reshard`] can swap it out from under live connections:
/// request handling holds the read lock (many at once, per-shard
/// parallelism intact); re-sharding takes the write lock, which by
/// construction waits until every in-flight request has finished and keeps
/// new ones out while rows move.
struct ShardHost {
    filters: RwLock<Vec<Mutex<ServerFilter>>>,
    /// Bumped under the write lock by every reshard. Connections remember
    /// the generation they were accepted under; a mismatch means the client
    /// routes by a dead partition, and answering it would risk *silently
    /// incomplete* fan-outs (it would never ask the new shards) — so stale
    /// connections get an explicit "reconnect" error instead, for
    /// everything except the always-safe fleet-level frames.
    generation: AtomicU64,
    stop: AtomicBool,
}

impl ShardHost {
    fn shard_count(&self) -> usize {
        self.filters.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Online repartition: exclusive fleet access, rows move in memory,
    /// connections resume against the new placement. Existing connections
    /// are fenced off by the generation bump (see [`ShardHost::generation`]).
    /// A refused repartition (see [`ShardedServer::reshard`]) puts the
    /// original fleet back untouched — no rows lost, no generation bump.
    fn reshard(&self, shards: u32) -> Response {
        let mut guard = self.filters.write().unwrap_or_else(|p| p.into_inner());
        let old: Vec<Mutex<ServerFilter>> = std::mem::take(&mut *guard);
        let spec = crate::shard::ShardSpec::new(old.len() as u32);
        let filters = old
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect();
        match ShardedServer::from_filters(spec, filters).reshard(shards) {
            Ok(server) => {
                *guard = server.into_filters().into_iter().map(Mutex::new).collect();
                self.generation.fetch_add(1, Ordering::SeqCst);
                Response::Ok
            }
            Err((original, e)) => {
                *guard = original
                    .into_filters()
                    .into_iter()
                    .map(Mutex::new)
                    .collect();
                Response::Err(format!("reshard refused: {e}"))
            }
        }
    }
}

/// Serves a [`ShardedServer`] on `listener`, one thread per connection,
/// until any client sends [`Request::Shutdown`] (bare or shard-tagged, as a
/// standalone frame). Clients address shards with [`Request::ToShard`];
/// untagged requests go to shard 0, so a single-shard deployment speaks the
/// exact legacy protocol. [`Request::Reshard`] repartitions the fleet
/// online (see [`ShardedServer::reshard`]); connections that predate a
/// reshard are fenced off with an explicit "reconnect" error — their
/// partition is dead, and answering them could silently skip the new
/// shards. Returns the sharded server (with its per-shard stats and final
/// shard count) once every connection has drained.
pub fn serve_tcp_sharded(
    listener: TcpListener,
    server: ShardedServer,
) -> Result<ShardedServer, CoreError> {
    serve_tcp_sharded_auto(listener, server, None)
}

/// [`serve_tcp_sharded`] with host-side auto-resharding: when
/// `auto_target` is `Some(bytes)`, a tick thread sizes the fleet from the
/// *stored* per-shard data (see [`auto_reshard_loop`]) and repartitions
/// online whenever the suggestion differs from the current count. Results
/// are invariant — a reshard moves rows bit-identically — but clients
/// connected across a repartition see the generation fence and must
/// reconnect ([`MuxPool`] heals same-count fences transparently).
pub fn serve_tcp_sharded_auto(
    listener: TcpListener,
    server: ShardedServer,
    auto_target: Option<u64>,
) -> Result<ShardedServer, CoreError> {
    let addr = listener
        .local_addr()
        .map_err(|e| CoreError::Transport(format!("local_addr: {e}")))?;
    let host = Arc::new(ShardHost {
        filters: RwLock::new(server.into_filters().into_iter().map(Mutex::new).collect()),
        generation: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    std::thread::scope(|scope| -> Result<(), CoreError> {
        if let Some(target) = auto_target {
            let host = Arc::clone(&host);
            scope.spawn(move || auto_reshard_loop(&host, target));
        }
        loop {
            let (stream, _) = listener
                .accept()
                .map_err(|e| CoreError::Transport(format!("accept: {e}")))?;
            if host.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let host = Arc::clone(&host);
            scope.spawn(move || {
                // A connection failing mid-stream only ends that connection.
                let _ = serve_sharded_connection(stream, &host, addr);
            });
        }
    })?;
    let host = Arc::into_inner(host).expect("all connection threads joined");
    let filters: Vec<ServerFilter> = host
        .filters
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect();
    let spec = crate::shard::ShardSpec::new(filters.len() as u32);
    Ok(ShardedServer::from_filters(spec, filters))
}

/// How often the auto-reshard ticker re-evaluates the stored-size
/// suggestion. Short enough that tests converge quickly; the computation
/// is a sum of per-shard size reports, not a scan.
const AUTO_RESHARD_TICK: std::time::Duration = std::time::Duration::from_millis(25);

/// The host-side shard suggestion: sizes the fleet so each shard *stores*
/// at most `target` data bytes under the balanced partition —
/// `⌈total / target⌉`, clamped to `[1, MAX_SUGGESTED_SHARDS]`. The
/// client-side [`crate::router::ShardRouter::suggest_shards`] works from
/// observed traffic, which the host cannot use for auto-tuning: cumulative
/// counters grow forever, so a traffic-based host would reshard without
/// bound. Stored size is stationary — it is invariant under repartition —
/// so this suggestion is a fixed point: one reshard reaches it and every
/// later tick agrees.
fn stored_suggestion(host: &ShardHost, target: u64) -> (u32, u32) {
    let filters = host.filters.read().unwrap_or_else(|p| p.into_inner());
    let current = filters.len() as u32;
    let total: u64 = filters
        .iter()
        .map(|m| {
            let f = m.lock().unwrap_or_else(|p| p.into_inner());
            f.table().size_report().data_bytes() as u64
        })
        .sum();
    let suggested = total
        .div_ceil(target.max(1))
        .clamp(1, crate::router::MAX_SUGGESTED_SHARDS as u64) as u32;
    (current, suggested)
}

/// The auto-reshard ticker (`serve --auto-reshard-target N`): every tick,
/// compare the stored-size suggestion against the live count and
/// repartition online when they differ. A refused reshard (rows that
/// cannot coexist — e.g. a fleet party host, whose data and MAC planes
/// duplicate `pre`s) leaves the fleet untouched, so the ticker is safe to
/// run against any host: it converges or it no-ops.
fn auto_reshard_loop(host: &ShardHost, target: u64) {
    while !host.stop.load(Ordering::SeqCst) {
        std::thread::sleep(AUTO_RESHARD_TICK);
        let (current, suggested) = stored_suggestion(host, target);
        if suggested != current {
            let _ = host.reshard(suggested);
        }
    }
}

/// Handles one decoded request against the fleet, shared by the
/// thread-per-connection host and the mux host's worker pool. `born` is the
/// generation the connection was accepted under. Returns the response plus
/// whether the request was an honoured [`Request::Shutdown`] (the caller
/// stops the host after writing the response).
fn host_handle_request(host: &ShardHost, born: u64, req: &Request) -> (Response, bool) {
    let (shard, inner): (u32, &Request) = match req {
        Request::ToShard { shard, req } => (*shard, req),
        other => (0, other),
    };
    // The handshake answers for the whole host, whatever shard it was
    // addressed to.
    if matches!(inner, Request::ShardCount) {
        return (Response::Count(host.shard_count() as u64), false);
    }
    // Re-sharding is likewise a fleet-level operation: it takes the write
    // lock, so it runs strictly between requests.
    if let Request::Reshard { shards } = inner {
        return (host.reshard(*shards), false);
    }
    // A mux handshake reaching this path is out of place: the mux host's
    // reader upgrades connections before any request is dispatched, and the
    // thread-per-connection host never multiplexes.
    if matches!(inner, Request::Hello { .. }) {
        return (
            Response::Err("mux handshake must be the first frame of a mux host connection".into()),
            false,
        );
    }
    // Shutdown only counts when it was addressed to a shard that exists —
    // an erroneous frame must not stop the host.
    let mut shutdown = matches!(inner, Request::Shutdown);
    let resp = {
        let filters = host.filters.read().unwrap_or_else(|p| p.into_inner());
        // Generation fence (read under the same lock the reshard bumps it
        // under): a connection accepted before a reshard routes by a dead
        // partition. Answering it could be *silently incomplete* — a
        // fan-out would never reach the new shards — so it gets an explicit
        // error and must reconnect. Shutdown stays honoured (fleet-level,
        // partition-independent).
        if host.generation.load(Ordering::SeqCst) != born && !shutdown {
            return (Response::Err(RESHARD_FENCE.into()), false);
        }
        match filters.get(shard as usize) {
            Some(m) => m.lock().unwrap_or_else(|p| p.into_inner()).handle(inner),
            None => {
                shutdown = false;
                Response::Err(format!("no shard {shard} (server has {})", filters.len()))
            }
        }
    };
    (resp, shutdown)
}

fn serve_sharded_connection(
    mut stream: TcpStream,
    host: &ShardHost,
    addr: SocketAddr,
) -> Result<(), CoreError> {
    stream
        .set_nodelay(true)
        .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
    let born = host.generation.load(Ordering::SeqCst);
    while let Some(frame) = read_frame(&mut stream)? {
        let (resp, shutdown) = match decode_request(&frame) {
            Ok(req) => host_handle_request(host, born, &req),
            Err(e) => (Response::Err(e.to_string()), false),
        };
        write_frame(&mut stream, &encode_response(&resp))?;
        if shutdown {
            host.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(addr);
            return Ok(());
        }
    }
    Ok(())
}

// ---- multiplexed host -------------------------------------------------------

/// Executor threads [`serve_tcp_mux`] runs when the caller passes
/// `workers = 0`.
pub const DEFAULT_MUX_WORKERS: usize = 4;

/// Per-connection state of the mux host, shared between the reader (which
/// owns all receive buffers) and the executors (which write responses as
/// they complete, under the per-connection send lock).
struct MuxHostConn {
    /// Nonblocking socket; the reader reads it, responders write it.
    stream: TcpStream,
    /// Serialises response sends so frames never interleave mid-write;
    /// *which* response goes out next is completion order, not arrival
    /// order.
    send: Mutex<()>,
    /// Correlation framing negotiated (flipped once, by the reader, on a
    /// successful [`Request::Hello`]).
    mux: AtomicBool,
    /// Generation fence captured at accept time (see [`ShardHost`]).
    born: u64,
    /// A failed read or write poisons the connection; every pool thread
    /// skips it from then on — one broken client never stalls the pool.
    dead: AtomicBool,
    /// How long one response send may stall before the connection is
    /// declared dead ([`MuxHostOptions::write_stall`]).
    write_stall: Duration,
}

impl MuxHostConn {
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    /// Frames and sends one response payload, whole, under the send lock.
    /// A failed send poisons only this connection.
    fn send_payload(&self, payload: &[u8]) {
        if self.dead.load(Ordering::SeqCst) {
            return;
        }
        let _guard = self.send.lock().unwrap_or_else(|p| p.into_inner());
        let len = (payload.len() as u32).to_le_bytes();
        if write_all_nonblocking(&self.stream, &len, self.write_stall).is_err()
            || write_all_nonblocking(&self.stream, payload, self.write_stall).is_err()
        {
            self.kill();
        }
    }
}

/// One decoded-frame unit of work for the executor pool.
struct MuxJob {
    conn: Arc<MuxHostConn>,
    /// `Some` on an upgraded connection (echoed on the response), `None`
    /// on a legacy one.
    corr: Option<u64>,
    frame: Vec<u8>,
}

/// Default for [`MuxHostOptions::write_stall`]: how long one response send
/// may stall on a full kernel buffer before the connection is declared
/// dead. A client that stops *reading* would otherwise wedge the executor
/// spinning in `send_payload` while it holds the per-connection send lock —
/// with a fixed pool, a handful of such clients could halt the host. Past
/// the deadline the send fails, the connection is poisoned, and the
/// executor moves on.
pub const DEFAULT_MUX_WRITE_STALL: Duration = Duration::from_secs(5);

/// Tuning knobs of the multiplexed host ([`serve_tcp_mux_opts`]).
#[derive(Clone, Copy, Debug)]
pub struct MuxHostOptions {
    /// Executor threads; `0` sizes the pool to the machine (see
    /// [`DEFAULT_MUX_WORKERS`]).
    pub workers: usize,
    /// Host-side auto-resharding byte budget (see
    /// [`serve_tcp_sharded_auto`]); `None` disables the ticker.
    pub auto_target: Option<u64>,
    /// How long one response send may stall before the connection is
    /// poisoned (see [`DEFAULT_MUX_WRITE_STALL`]). Exposed on the CLI as
    /// `serve --write-stall-ms`.
    pub write_stall: Duration,
}

impl Default for MuxHostOptions {
    fn default() -> Self {
        MuxHostOptions {
            workers: 0,
            auto_target: None,
            write_stall: DEFAULT_MUX_WRITE_STALL,
        }
    }
}

/// `write_all` against a nonblocking socket: retries `WouldBlock` with a
/// short sleep (sends must be atomic per frame) up to `stall` of
/// continuous stall, then gives up with `TimedOut` so the caller can
/// poison the connection instead of spinning forever.
fn write_all_nonblocking(
    mut stream: &TcpStream,
    bytes: &[u8],
    stall: Duration,
) -> std::io::Result<()> {
    let mut written = 0;
    let mut stalled_since: Option<std::time::Instant> = None;
    while written < bytes.len() {
        match stream.write(&bytes[written..]) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                written += n;
                stalled_since = None;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let since = *stalled_since.get_or_insert_with(std::time::Instant::now);
                if since.elapsed() > stall {
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serves a [`ShardedServer`] with a **fixed thread pool over multiplexed
/// connections** instead of one thread per connection: one
/// reader/dispatcher thread sweeps every connection's nonblocking socket
/// and feeds `workers` executor threads (0 = a pool sized to the machine,
/// see [`DEFAULT_MUX_WORKERS`]) that run requests against the shared fleet
/// and write each response as it completes, under per-connection send
/// locks — **completion order**, out-of-order with respect to arrival, so
/// waves from many clients overlap on the wire instead of queueing behind
/// a thread each.
///
/// Connections start in the legacy framing ([`serve_tcp_sharded`]'s exact
/// wire shape, byte for byte) and upgrade to correlation-tagged frames via
/// [`Request::Hello`]; legacy clients are served unchanged. Fleet-level
/// frames ([`Request::ShardCount`], [`Request::Reshard`],
/// [`Request::Shutdown`]) and the reshard generation fence behave exactly
/// as on the thread-per-connection host. Returns the sharded server once a
/// client sends [`Request::Shutdown`].
pub fn serve_tcp_mux(
    listener: TcpListener,
    server: ShardedServer,
    workers: usize,
) -> Result<ShardedServer, CoreError> {
    serve_tcp_mux_opts(
        listener,
        server,
        MuxHostOptions {
            workers,
            ..MuxHostOptions::default()
        },
    )
}

/// [`serve_tcp_mux`] with host-side auto-resharding (see
/// [`serve_tcp_sharded_auto`]): same ticker, same stored-size suggestion,
/// over the multiplexed host. [`MuxPool`] clients ride a same-count fence
/// transparently; count-changing repartitions still require a reconnect.
pub fn serve_tcp_mux_auto(
    listener: TcpListener,
    server: ShardedServer,
    workers: usize,
    auto_target: Option<u64>,
) -> Result<ShardedServer, CoreError> {
    serve_tcp_mux_opts(
        listener,
        server,
        MuxHostOptions {
            workers,
            auto_target,
            ..MuxHostOptions::default()
        },
    )
}

/// [`serve_tcp_mux`] with every knob exposed (see [`MuxHostOptions`]).
pub fn serve_tcp_mux_opts(
    listener: TcpListener,
    server: ShardedServer,
    opts: MuxHostOptions,
) -> Result<ShardedServer, CoreError> {
    let MuxHostOptions {
        workers,
        auto_target,
        write_stall,
    } = opts;
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(DEFAULT_MUX_WORKERS)
            .clamp(2, 8)
    } else {
        workers
    };
    let addr = listener
        .local_addr()
        .map_err(|e| CoreError::Transport(format!("local_addr: {e}")))?;
    let host = Arc::new(ShardHost {
        filters: RwLock::new(server.into_filters().into_iter().map(Mutex::new).collect()),
        generation: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    let (conn_tx, conn_rx) = mpsc::channel::<Arc<MuxHostConn>>();
    let (job_tx, job_rx) = mpsc::channel::<MuxJob>();
    let job_rx = Mutex::new(job_rx);

    let result = std::thread::scope(|scope| -> Result<(), CoreError> {
        if let Some(target) = auto_target {
            let host = Arc::clone(&host);
            scope.spawn(move || auto_reshard_loop(&host, target));
        }
        {
            let host = Arc::clone(&host);
            scope.spawn(move || mux_reader_loop(conn_rx, job_tx, &host));
        }
        for _ in 0..workers {
            let host = Arc::clone(&host);
            let job_rx = &job_rx;
            scope.spawn(move || mux_worker_loop(job_rx, &host, addr));
        }

        loop {
            let accepted = listener
                .accept()
                .map_err(|e| CoreError::Transport(format!("accept: {e}")));
            let (stream, _) = match accepted {
                Ok(pair) => pair,
                Err(e) => {
                    // Unwind the pool before surfacing the error, or the
                    // scope would join forever.
                    host.stop.store(true, Ordering::SeqCst);
                    return Err(e);
                }
            };
            if host.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            if stream.set_nodelay(true).is_err() || stream.set_nonblocking(true).is_err() {
                continue;
            }
            let conn = Arc::new(MuxHostConn {
                stream,
                send: Mutex::new(()),
                mux: AtomicBool::new(false),
                born: host.generation.load(Ordering::SeqCst),
                dead: AtomicBool::new(false),
                write_stall,
            });
            if conn_tx.send(conn).is_err() {
                return Ok(());
            }
        }
    });
    result?;
    let host = Arc::into_inner(host).expect("mux pool threads joined");
    let filters: Vec<ServerFilter> = host
        .filters
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect();
    let spec = ShardSpec::new(filters.len() as u32);
    Ok(ShardedServer::from_filters(spec, filters))
}

/// How long the stopping mux host keeps sweeping for frames that are
/// already in flight. A [`Request::Shutdown`] fanned across `S` shard
/// sockets is `S` frames written back-to-back: the first one processed
/// stops the host, and without this grace the sweep would exit with the
/// others still unread in the kernel buffer — closing a socket with
/// unread data sends RST, which discards the buffered acks client-side
/// and fails waves that were answered perfectly well.
const MUX_SHUTDOWN_GRACE: Duration = Duration::from_millis(50);

/// The mux host's reader/dispatcher: sweeps every live connection's
/// nonblocking socket, reassembles length-prefixed frames, performs the
/// [`Request::Hello`] upgrade synchronously with the byte stream (so a
/// frame after the upgrade is never misparsed), and hands complete frames
/// to the executor pool. When the host stops it lingers for
/// [`MUX_SHUTDOWN_GRACE`], still sweeping — so sibling frames of a fanned
/// shutdown are answered, not RST — then exits, dropping the job sender,
/// which winds down the workers.
fn mux_reader_loop(
    conn_rx: mpsc::Receiver<Arc<MuxHostConn>>,
    job_tx: mpsc::Sender<MuxJob>,
    host: &ShardHost,
) {
    struct ReaderConn {
        conn: Arc<MuxHostConn>,
        buf: Vec<u8>,
    }
    let mut conns: Vec<ReaderConn> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    // Spin-then-park backoff: while traffic flows the sweep never sleeps
    // (a request-response wave must not pay a park/unpark latency), after a
    // run of empty sweeps it yields, and only a genuinely idle plane backs
    // off to a bounded sleep.
    let mut idle_sweeps = 0u32;
    let mut stop_at: Option<Instant> = None;
    loop {
        while let Ok(conn) = conn_rx.try_recv() {
            conns.push(ReaderConn {
                conn,
                buf: Vec::new(),
            });
        }
        if host.stop.load(Ordering::SeqCst) {
            let deadline = *stop_at.get_or_insert_with(|| Instant::now() + MUX_SHUTDOWN_GRACE);
            if Instant::now() >= deadline {
                return;
            }
        }
        let mut progress = false;
        conns.retain_mut(|rc| {
            if rc.conn.dead.load(Ordering::SeqCst) {
                return false;
            }
            loop {
                match (&rc.conn.stream).read(&mut tmp) {
                    Ok(0) => {
                        rc.conn.kill();
                        return false;
                    }
                    Ok(n) => {
                        progress = true;
                        rc.buf.extend_from_slice(&tmp[..n]);
                        if !drain_host_frames(&rc.conn, &mut rc.buf, &job_tx, host) {
                            rc.conn.kill();
                            return false;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        rc.conn.kill();
                        return false;
                    }
                }
            }
        });
        if progress {
            idle_sweeps = 0;
        } else {
            idle_sweeps += 1;
            if idle_sweeps < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// Extracts every complete frame from `buf` and dispatches it. Returns
/// `false` when the connection's framing is beyond recovery (oversized
/// length prefix, corr envelope shorter than its id) — the caller drops the
/// connection, exactly as the blocking hosts drop an unframeable stream.
fn drain_host_frames(
    conn: &Arc<MuxHostConn>,
    buf: &mut Vec<u8>,
    job_tx: &mpsc::Sender<MuxJob>,
    host: &ShardHost,
) -> bool {
    let mut offset = 0usize;
    let mut alive = true;
    while alive {
        let remaining = &buf[offset..];
        if remaining.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            alive = false;
            break;
        }
        if remaining.len() < 4 + len {
            break;
        }
        let payload = &remaining[4..4 + len];
        if conn.mux.load(Ordering::SeqCst) {
            match decode_corr_payload(payload) {
                Ok((corr, inner)) => {
                    let _ = job_tx.send(MuxJob {
                        conn: Arc::clone(conn),
                        corr: Some(corr),
                        frame: inner.to_vec(),
                    });
                }
                // Too short to carry a correlation id: there is no slot to
                // answer into, so the stream is unrecoverable.
                Err(_) => alive = false,
            }
        } else if payload.first() == Some(&REQ_HELLO_TAG) {
            // The upgrade is handled here, synchronously with the byte
            // stream: every later frame of this connection parses under the
            // negotiated framing even if it is already sitting in `buf`.
            let resp = match decode_request(payload) {
                Ok(Request::Hello { version }) if version >= MUX_PROTOCOL_VERSION => {
                    conn.mux.store(true, Ordering::SeqCst);
                    Response::Hello {
                        version: MUX_PROTOCOL_VERSION,
                        shards: host.shard_count() as u32,
                    }
                }
                Ok(Request::Hello { version }) => Response::Err(format!(
                    "unsupported mux version {version}; this host speaks {MUX_PROTOCOL_VERSION}"
                )),
                Ok(_) => unreachable!("tag {REQ_HELLO_TAG} decodes to Hello"),
                Err(e) => Response::Err(e.to_string()),
            };
            conn.send_payload(&encode_response(&resp));
        } else {
            let _ = job_tx.send(MuxJob {
                conn: Arc::clone(conn),
                corr: None,
                frame: payload.to_vec(),
            });
        }
        offset += 4 + len;
    }
    buf.drain(..offset);
    alive
}

/// One executor of the mux host's pool: decodes a job's frame, runs it
/// against the fleet (same interception, fence and routing as the
/// thread-per-connection host), and sends the framed response the moment
/// it completes — out of order with respect to arrival. An honoured
/// [`Request::Shutdown`] stops the host after its ack is sent.
fn mux_worker_loop(job_rx: &Mutex<mpsc::Receiver<MuxJob>>, host: &ShardHost, addr: SocketAddr) {
    loop {
        // Holding the lock across the blocking recv simply serializes
        // dequeues; execution below runs in parallel across workers.
        let job = match job_rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let (resp, shutdown) = match decode_request(&job.frame) {
            Ok(req) => host_handle_request(host, job.conn.born, &req),
            Err(e) => (Response::Err(e.to_string()), false),
        };
        let frame = encode_response(&resp);
        let payload = match job.corr {
            Some(corr) => encode_corr_payload(corr, &frame),
            None => frame,
        };
        job.conn.send_payload(&payload);
        if shutdown {
            host.stop.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the stop flag.
            let _ = TcpStream::connect(addr);
        }
    }
}

// ---- multiplexed client -----------------------------------------------------

/// What a completion slot receives: the decoded response plus the payload
/// length on the wire (byte accounting), or the error that killed the wave.
type SlotResult = Result<(Response, u64), CoreError>;

/// In-flight waves of one pooled connection, keyed by correlation id.
type PendingSlots = Mutex<HashMap<u64, mpsc::Sender<SlotResult>>>;

/// One pooled, multiplexed connection: the write half (shared by every
/// [`MuxTransport`] on this shard), the completion slots the reader thread
/// resolves, and the correlation counter.
struct MuxClientConn {
    write: Mutex<TcpStream>,
    pending: PendingSlots,
    next_corr: AtomicU64,
    dead: AtomicBool,
    /// Responses carrying a correlation id nobody waits for — dropped, and
    /// counted: a correct host never produces one.
    stray: AtomicU64,
}

impl Drop for MuxClientConn {
    /// Runs when the last pool clone / transport lets go (the reader holds
    /// only a `Weak`). The reader thread owns a dup of this socket and sits
    /// in a blocking read — dropping our write half alone would leave the
    /// TCP connection established (no FIN) and the thread parked forever,
    /// so shut the socket down both ways: the reader's read returns, it
    /// fails to upgrade its `Weak`, and it exits.
    fn drop(&mut self) {
        let stream = self.write.get_mut().unwrap_or_else(|p| p.into_inner());
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// One shard's pooled connection plus everything needed to open it again:
/// after an online reshard fences the socket, any transport on the slot can
/// swap in a fresh connection (same address, same shard count) and every
/// other rider picks it up on its next call.
struct MuxSlot {
    addr: SocketAddr,
    shards: u32,
    conn: RwLock<Arc<MuxClientConn>>,
}

/// A shared pool of multiplexed connections to a [`serve_tcp_mux`] host —
/// **one socket per shard**, however many clients ride it. Cloning the pool
/// (or calling [`MuxPool::transport`] repeatedly) hands out any number of
/// [`MuxTransport`]s onto the same sockets; their in-flight waves are told
/// apart by correlation id, so concurrent [`crate::router::ShardRouter`]s
/// (and the [`crate::client::ClientFilter`]s above them) overlap on the
/// wire instead of opening a connection — and costing a server thread —
/// each.
///
/// An online reshard that keeps the shard count fences the pooled sockets
/// (see [`ShardHost`]); the pool heals transparently — the first transport
/// to see the fence reconnects the slot, replays its request once, and
/// every other rider follows onto the fresh socket. A reshard that
/// *changes* the count still surfaces an error: the pool's routing
/// topology is wrong and the caller must reconnect with the new count.
#[derive(Clone)]
pub struct MuxPool {
    slots: Vec<Arc<MuxSlot>>,
    shards: u32,
}

impl MuxPool {
    /// Connects one multiplexed socket per shard and performs the versioned
    /// [`Request::Hello`] handshake on each. Like
    /// [`crate::router::ShardRouter::connect`], a shard count that
    /// disagrees with the server's is refused (the Hello answer carries the
    /// fleet size); a host that does not multiplex (no `--mux`) refuses the
    /// handshake with a descriptive error.
    pub fn connect<A: ToSocketAddrs + Copy>(addr: A, shards: u32) -> Result<Self, CoreError> {
        let spec = ShardSpec::new(shards);
        // Resolve once so the slots can reconnect after a reshard fence
        // without carrying the caller's generic address type around.
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::Transport(format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| CoreError::Transport("address resolved to nothing".into()))?;
        let slots = (0..spec.shards())
            .map(|_| {
                Ok(Arc::new(MuxSlot {
                    addr,
                    shards: spec.shards(),
                    conn: RwLock::new(Self::open_conn(addr, spec.shards())?),
                }))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(MuxPool {
            slots,
            shards: spec.shards(),
        })
    }

    fn open_conn<A: ToSocketAddrs>(addr: A, shards: u32) -> Result<Arc<MuxClientConn>, CoreError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| CoreError::Transport(format!("connect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
        // Legacy-framed handshake: the upgrade is only in effect from the
        // next frame on.
        write_frame(
            &mut stream,
            &encode_request(&Request::Hello {
                version: MUX_PROTOCOL_VERSION,
            }),
        )?;
        let payload = read_frame(&mut stream)?.ok_or_else(|| {
            CoreError::Transport("server closed the connection during the mux handshake".into())
        })?;
        match decode_response(&payload)? {
            Response::Hello { version, shards: n } => {
                if version != MUX_PROTOCOL_VERSION {
                    return Err(CoreError::Transport(format!(
                        "server negotiated unsupported mux version {version}"
                    )));
                }
                if n != shards {
                    return Err(CoreError::Transport(format!(
                        "server partitions across {n} shard(s) but the client asked for {shards}; \
                         reconnect with the server's shard count"
                    )));
                }
            }
            Response::Err(e) => {
                return Err(CoreError::Transport(format!(
                    "mux handshake refused: {e} (serve with --mux, or connect without it)"
                )))
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "unexpected mux handshake response {other:?}"
                )))
            }
        }
        let write = stream
            .try_clone()
            .map_err(|e| CoreError::Transport(format!("clone: {e}")))?;
        let conn = Arc::new(MuxClientConn {
            write: Mutex::new(write),
            pending: Mutex::new(HashMap::new()),
            next_corr: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            stray: AtomicU64::new(0),
        });
        // The reader holds only a weak handle: once every transport and
        // pool clone is gone, `MuxClientConn::drop` shuts the socket down
        // both ways, the reader's blocking read returns, and the thread
        // exits — no leaked fd, no parked thread.
        let weak = Arc::downgrade(&conn);
        std::thread::spawn(move || mux_client_reader(stream, weak));
        Ok(conn)
    }

    /// Number of shards the pool is connected to.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// A transport onto the pooled connection of `shard` (`< shards()`).
    /// Every call hands out an independent transport with its own counters;
    /// all of them share the shard's one socket.
    pub fn transport(&self, shard: u32) -> MuxTransport {
        MuxTransport {
            slot: Arc::clone(&self.slots[shard as usize]),
            stats: TransportStats::default(),
            budget: None,
        }
    }

    /// Responses that arrived with a correlation id no slot was waiting for,
    /// summed over the pool. Always 0 against a correct host — the
    /// slot-confusion integration tests pin it.
    pub fn stray_responses(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                s.conn
                    .read()
                    .unwrap_or_else(|p| p.into_inner())
                    .stray
                    .load(Ordering::SeqCst)
            })
            .sum()
    }
}

/// The reader thread of one pooled connection: matches every incoming
/// response to the completion slot its correlation id names. A response
/// whose id nobody registered is dropped and counted ([`MuxPool::
/// stray_responses`]) — it can never complete a different wave's slot. On
/// any framing or socket error the connection is poisoned and every parked
/// wave gets an explicit error.
fn mux_client_reader(mut stream: TcpStream, conn: Weak<MuxClientConn>) {
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        let Some(conn) = conn.upgrade() else { return };
        match decode_corr_payload(&payload) {
            Ok((corr, inner)) => {
                let slot = conn
                    .pending
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&corr);
                match slot {
                    Some(tx) => {
                        let result =
                            decode_response(inner).map(|resp| (resp, payload.len() as u64));
                        let _ = tx.send(result);
                    }
                    None => {
                        conn.stray.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            // Unframeable: poison the connection below.
            Err(_) => break,
        }
    }
    if let Some(conn) = conn.upgrade() {
        conn.dead.store(true, Ordering::SeqCst);
        let mut pending = conn.pending.lock().unwrap_or_else(|p| p.into_inner());
        for (_, tx) in pending.drain() {
            let _ = tx.send(Err(CoreError::Transport("mux connection lost".into())));
        }
    }
}

/// A client transport multiplexed onto one shard's pooled socket (see
/// [`MuxPool`]). Each call allocates a correlation id, parks on a
/// completion slot and returns when the reader resolves it — concurrent
/// transports on the same socket overlap freely, and responses may complete
/// in any order.
pub struct MuxTransport {
    slot: Arc<MuxSlot>,
    stats: TransportStats,
    /// Per-call budget ([`Transport::set_call_budget`]); `None` blocks.
    budget: Option<Duration>,
}

impl HasStats for MuxTransport {
    fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }
}

/// Whether a response is the verbatim reshard fence (see [`RESHARD_FENCE`]).
fn is_reshard_fence(resp: &Response) -> bool {
    matches!(resp, Response::Err(e) if e == RESHARD_FENCE)
}

impl MuxTransport {
    /// Registers a completion slot and puts the frame on the wire; the
    /// caller decides when to park on the returned receiver. Also returns
    /// the connection the frame went out on, so a fence response can be
    /// attributed to exactly that socket when healing.
    fn begin(
        &mut self,
        req: &Request,
    ) -> Result<(mpsc::Receiver<SlotResult>, u64, Arc<MuxClientConn>), CoreError> {
        let conn = Arc::clone(&self.slot.conn.read().unwrap_or_else(|p| p.into_inner()));
        let lost = || CoreError::Transport("mux connection lost".into());
        if conn.dead.load(Ordering::SeqCst) {
            return Err(lost());
        }
        let corr = conn.next_corr.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        conn.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(corr, tx);
        // The reader drains the slots *after* setting `dead`, so a slot
        // registered before this check is either drained (rx holds the
        // error) or removed here; either way the wave fails explicitly.
        if conn.dead.load(Ordering::SeqCst) {
            conn.pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .remove(&corr);
            return Err(lost());
        }
        let payload = encode_corr_payload(corr, &encode_request(req));
        {
            let mut write = conn.write.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(e) = write_frame(&mut write, &payload) {
                drop(write);
                conn.pending
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&corr);
                return Err(e);
            }
        }
        self.stats.bytes_sent += payload.len() as u64;
        Ok((rx, corr, conn))
    }

    /// Reopens the slot's pooled connection if the current one is dead, so
    /// a quarantined party that came back can be dialed again through the
    /// same pool (fleet re-admission). A live connection is left untouched
    /// — every rider keeps overlapping on it.
    pub fn revive(&self) -> Result<(), CoreError> {
        let stale = {
            let conn = self.slot.conn.read().unwrap_or_else(|p| p.into_inner());
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(());
            }
            Arc::clone(&conn)
        };
        self.repool(&stale)
    }

    /// Swaps a fenced connection out of the slot for a fresh one — exactly
    /// once per fence, however many transports observe it: only the caller
    /// still holding the *stale* connection reconnects (pointer identity
    /// under the write lock); everyone else finds the slot already healed
    /// and just replays. A host resharded to a *different* count refuses
    /// the new handshake, so the error keeps surfacing as it should.
    fn repool(&self, stale: &Arc<MuxClientConn>) -> Result<(), CoreError> {
        let mut conn = self.slot.conn.write().unwrap_or_else(|p| p.into_inner());
        if Arc::ptr_eq(&conn, stale) {
            *conn = MuxPool::open_conn(self.slot.addr, self.slot.shards)?;
        }
        Ok(())
    }

    /// Parks on a slot registered by [`MuxTransport::begin`] and accounts
    /// the completed round trip. A bounded wait that expires unregisters
    /// the completion slot (a late answer then counts as stray) and fails
    /// with [`CoreError::Timeout`]; the shared connection stays healthy —
    /// correlation ids keep every other rider's waves unambiguous, so
    /// nothing needs poisoning.
    fn wait(
        &mut self,
        rx: mpsc::Receiver<SlotResult>,
        corr: u64,
        conn: &Arc<MuxClientConn>,
        deadline: Deadline,
    ) -> Result<Response, CoreError> {
        let lost = || CoreError::Transport("mux connection lost".into());
        let slot = match deadline.remaining() {
            None => rx.recv().map_err(|_| lost())?,
            Some(rem) => match rx.recv_timeout(rem) {
                Ok(r) => r,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(lost()),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    conn.pending
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .remove(&corr);
                    // The reader may have resolved the slot between the
                    // timeout and the removal — take the answer if it made
                    // it under the wire.
                    match rx.try_recv() {
                        Ok(r) => r,
                        Err(_) => {
                            return Err(CoreError::Timeout(
                                "no mux response within the call budget".into(),
                            ))
                        }
                    }
                }
            },
        };
        let (resp, bytes) = slot?;
        self.stats.bytes_received += bytes;
        self.stats.round_trips += 1;
        Ok(resp)
    }
}

impl Transport for MuxTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let deadline = Deadline::of(self.budget);
        let (rx, corr, conn) = self.begin(req)?;
        let resp = self.wait(rx, corr, &conn, deadline)?;
        if !is_reshard_fence(&resp) {
            return Ok(resp);
        }
        // Same-count reshard: heal the slot and replay exactly once (under
        // the original call's deadline). A second fence (another reshard
        // racing the replay) surfaces.
        self.repool(&conn)?;
        let (rx, corr, conn) = self.begin(req)?;
        self.wait(rx, corr, &conn, deadline)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        framed_call_batch(self, reqs)
    }

    fn pipelines(&self) -> bool {
        true
    }

    fn call_pipelined(&mut self, req: &Request) -> Result<PendingCall, CoreError> {
        let deadline = Deadline::of(self.budget);
        let (rx, corr, conn) = self.begin(req)?;
        Ok(PendingCall {
            rx,
            corr,
            conn,
            deadline,
            retry: Some(req.clone()),
        })
    }

    fn finish_pipelined(&mut self, call: PendingCall) -> Result<Response, CoreError> {
        let resp = self.wait(call.rx, call.corr, &call.conn, call.deadline)?;
        if !is_reshard_fence(&resp) {
            return Ok(resp);
        }
        let Some(req) = call.retry else {
            return Ok(resp);
        };
        self.repool(&call.conn)?;
        let (rx, corr, conn) = self.begin(&req)?;
        self.wait(rx, corr, &conn, call.deadline)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn set_call_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn demo_server() -> ServerFilter {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        ServerFilter::new(out.table, out.ring)
    }

    #[test]
    fn local_transport_counts_bytes() {
        let mut t = LocalTransport::new(demo_server());
        let resp = t.call(&Request::Count).unwrap();
        assert_eq!(resp, Response::Count(3));
        let s = t.stats();
        assert_eq!(s.round_trips, 1);
        assert!(s.bytes_sent >= 1);
        assert!(s.bytes_received >= 9, "count response = tag + u64");
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        match t.call(&Request::Root).unwrap() {
            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1),
            other => panic!("{other:?}"),
        }
        match t.call(&Request::Children { pre: 1 }).unwrap() {
            Response::Locs(ls) => assert_eq!(ls.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.call(&Request::Shutdown).unwrap(), Response::Ok);
        let server = handle.join().unwrap();
        assert!(server.stats().requests >= 4);
        assert_eq!(t.stats().round_trips, 4);
    }

    /// A sharded host refusing a reshard (rows that cannot coexist in one
    /// partition) must keep serving from the original fleet — the refusal
    /// path restores it under the write lock instead of dropping it.
    #[test]
    fn sharded_host_survives_a_refused_reshard() {
        use crate::shard::ShardSpec;
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        let f1 = ServerFilter::new(out.table.clone(), out.ring.clone());
        let f2 = ServerFilter::new(out.table, out.ring);
        let server = ShardedServer::from_filters(ShardSpec::new(2), vec![f1, f2]);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        match t.call(&Request::Reshard { shards: 1 }).unwrap() {
            Response::Err(e) => assert!(e.contains("reshard refused"), "{e}"),
            other => panic!("{other:?}"),
        }
        // No generation bump on refusal: the same connection keeps working
        // against the intact original fleet.
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        assert_eq!(
            t.call(&Request::ShardCount).unwrap(),
            Response::Count(2),
            "fleet size unchanged"
        );
        t.call(&Request::Shutdown).unwrap();
        let server = handle.join().unwrap();
        assert_eq!(server.spec().shards(), 2);
        assert_eq!(server.total_rows(), 6, "no row lost to the refusal");
    }

    fn demo_sharded(shards: u32) -> ShardedServer {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        ShardedServer::from_table(out.table, out.ring, shards).unwrap()
    }

    #[test]
    fn mux_round_trip_single_shard() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(1), 0).unwrap());

        let pool = MuxPool::connect(addr, 1).unwrap();
        let mut t = pool.transport(0);
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        match t.call(&Request::Root).unwrap() {
            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1),
            other => panic!("{other:?}"),
        }
        let s = t.stats();
        assert_eq!(s.round_trips, 2);
        assert!(s.bytes_sent > 0 && s.bytes_received > 0);
        assert_eq!(t.call(&Request::Shutdown).unwrap(), Response::Ok);
        let server = handle.join().unwrap();
        assert!(server.filters()[0].stats().requests >= 3);
        assert_eq!(pool.stray_responses(), 0);
    }

    /// Two transports multiplexed on the *same* pooled socket, driven from
    /// two threads: every response lands in the slot of the request that
    /// caused it — distinct `GetLoc` answers prove the correlation ids keep
    /// the interleaved waves apart.
    #[test]
    fn concurrent_transports_share_one_socket_without_slot_confusion() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(1), 2).unwrap());

        let pool = MuxPool::connect(addr, 1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let mut t = pool.transport(0);
                    for round in 0..50u32 {
                        let pre = 1 + (round % 3);
                        match t.call(&Request::GetLoc { pre }).unwrap() {
                            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, pre),
                            other => panic!("{other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(pool.stray_responses(), 0, "no stray correlation ids");
        pool.transport(0).call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    /// The mux host still speaks the exact legacy protocol to a client that
    /// never sends the handshake.
    #[test]
    fn mux_host_serves_legacy_clients_unchanged() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(2), 0).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.call(&Request::ShardCount).unwrap(), Response::Count(2));
        match t.call(&Request::ToShard {
            shard: 0,
            req: Box::new(Request::Count),
        }) {
            Ok(Response::Count(_)) => {}
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            t.call(&Request::ToShard {
                shard: 9,
                req: Box::new(Request::Count),
            })
            .unwrap(),
            Response::Err(_)
        ));
        t.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    /// A host that does not multiplex refuses the handshake with a
    /// descriptive error instead of hanging or panicking.
    #[test]
    fn non_mux_host_refuses_the_handshake() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());
        match MuxPool::connect(addr, 1) {
            Err(CoreError::Transport(msg)) => assert!(msg.contains("mux"), "{msg}"),
            other => panic!("expected a refusal, got {:?}", other.map(|_| "pool")),
        }
        let mut t = TcpTransport::connect(addr).unwrap();
        t.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    /// The Hello answer carries the fleet size: a mismatched shard count is
    /// refused at connect, exactly like the router handshake.
    #[test]
    fn mux_shard_count_mismatch_refused_at_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(2), 0).unwrap());
        for wrong in [1u32, 4] {
            match MuxPool::connect(addr, wrong) {
                Err(CoreError::Transport(msg)) => assert!(msg.contains("2 shard"), "{msg}"),
                other => panic!("shard count {wrong} accepted: {:?}", other.map(|_| "pool")),
            }
        }
        let pool = MuxPool::connect(addr, 2).unwrap();
        assert_eq!(pool.shards(), 2);
        pool.transport(0).call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    /// Dropping every handle to a pool closes its sockets for real (the
    /// drop path shuts the stream down both ways so the reader thread's
    /// dup cannot hold the connection open): the host observes the close,
    /// keeps serving fresh pools, and shuts down cleanly afterwards.
    #[test]
    fn dropping_a_pool_releases_its_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(1), 0).unwrap());
        for _ in 0..5 {
            let pool = MuxPool::connect(addr, 1).unwrap();
            let mut t = pool.transport(0);
            assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
            drop(t);
            drop(pool); // shuts the socket; the host's sweep reaps it
        }
        let pool = MuxPool::connect(addr, 1).unwrap();
        pool.transport(0).call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }

    /// Killing the host mid-flight fails every parked wave with a typed
    /// error — no hang, no panic, and later calls fail fast.
    #[test]
    fn mux_pool_surfaces_connection_loss() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle =
            std::thread::spawn(move || serve_tcp_mux(listener, demo_sharded(1), 0).unwrap());
        let pool = MuxPool::connect(addr, 1).unwrap();
        let mut t = pool.transport(0);
        t.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
        // The sockets are gone; calls must error, not hang.
        let mut late = pool.transport(0);
        for _ in 0..3 {
            match late.call(&Request::Count) {
                Err(CoreError::Transport(_)) => {}
                Ok(other) => panic!("{other:?}"),
                Err(other) => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn tcp_survives_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        {
            let mut t1 = TcpTransport::connect(addr).unwrap();
            assert_eq!(t1.call(&Request::Count).unwrap(), Response::Count(3));
            // Drop without shutdown.
        }
        let mut t2 = TcpTransport::connect(addr).unwrap();
        assert_eq!(t2.call(&Request::Count).unwrap(), Response::Count(3));
        t2.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
