//! Transports carrying the protocol frames.
//!
//! [`LocalTransport`] runs the server in-process but still encodes and
//! decodes every frame, so byte/round-trip counters mean the same thing they
//! would over a network. [`TcpTransport`]/[`serve_tcp`] carry the identical
//! frames over a socket with 4-byte length prefixes — used by the
//! `client_server_tcp` example and the integration tests.

use crate::error::CoreError;
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use crate::server::ServerFilter;
use crate::shard::ShardedServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Traffic counters shared by all transports.
///
/// `round_trips` counts *logical* request waves: a batch frame is one round
/// trip however many sub-requests it carries, and a
/// [`crate::router::ShardRouter`] counts one wave when it contacts several
/// shards concurrently (the per-shard sends show up in `shard_dispatches`
/// and in the per-shard [`crate::router::ShardRouter::shard_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Logical round trips (request waves).
    pub round_trips: u64,
    /// Request bytes (client → server).
    pub bytes_sent: u64,
    /// Response bytes (server → client).
    pub bytes_received: u64,
    /// Batch frames sent (each is one round trip carrying many requests).
    pub batches: u64,
    /// Sub-requests carried inside batch frames.
    pub batched_requests: u64,
    /// Physical per-shard sends made by a router on behalf of the logical
    /// waves (0 on direct transports).
    pub shard_dispatches: u64,
    /// Requests answered from a router's speculation cache instead of a
    /// round trip (0 unless speculation is enabled on a shard router).
    pub speculative_hits: u64,
    /// Speculative prefetches issued but (as of this snapshot) never
    /// consumed — the cost of mis-speculation. Not monotonic: an entry
    /// counted wasted now may still be consumed by a later wave.
    pub speculative_wasted: u64,
}

/// A synchronous request/response channel to a `ServerFilter`.
pub trait Transport {
    /// Sends one request and waits for the response.
    fn call(&mut self, req: &Request) -> Result<Response, CoreError>;

    /// Sends many requests in one logical round trip, returning responses
    /// in request order. Failed sub-requests come back as inline
    /// [`Response::Err`] slots. The default implementation degrades to one
    /// round trip per request (the unbatched wire shape); every built-in
    /// transport overrides it with a single [`Request::Batch`] frame.
    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        reqs.iter().map(|r| self.call(r)).collect()
    }

    /// Counter snapshot.
    fn stats(&self) -> TransportStats;
}

/// The shared `call_batch` body of the concrete frame transports: empty and
/// singleton fast paths, batch counters, one [`Request::Batch`] envelope
/// (which `call` counts as the single round trip it is), unwrap.
fn framed_call_batch<T: Transport + HasStats>(
    transport: &mut T,
    reqs: &[Request],
) -> Result<Vec<Response>, CoreError> {
    if reqs.is_empty() {
        return Ok(Vec::new());
    }
    if reqs.len() == 1 {
        return Ok(vec![transport.call(&reqs[0])?]);
    }
    let stats = transport.stats_mut();
    stats.batches += 1;
    stats.batched_requests += reqs.len() as u64;
    let resp = transport.call(&Request::Batch(reqs.to_vec()))?;
    unwrap_batch(resp, reqs.len())
}

/// Mutable counter access for [`framed_call_batch`].
trait HasStats {
    fn stats_mut(&mut self) -> &mut TransportStats;
}

/// Shared by the concrete transports: wrap `reqs` in one batch frame and
/// unwrap the multi-response, validating the slot count.
pub(crate) fn unwrap_batch(resp: Response, expected: usize) -> Result<Vec<Response>, CoreError> {
    match resp {
        Response::Batch(subs) if subs.len() == expected => Ok(subs),
        Response::Batch(subs) => Err(CoreError::Transport(format!(
            "batch answered {} of {expected} slots",
            subs.len()
        ))),
        Response::Err(e) => Err(CoreError::Transport(e)),
        other => Err(CoreError::Transport(format!(
            "unexpected batch response {other:?}"
        ))),
    }
}

/// In-process transport: full encode/decode on both sides, zero I/O.
pub struct LocalTransport {
    server: ServerFilter,
    stats: TransportStats,
}

impl LocalTransport {
    /// Wraps a server filter.
    pub fn new(server: ServerFilter) -> Self {
        LocalTransport {
            server,
            stats: TransportStats::default(),
        }
    }

    /// Read access to the wrapped server (server-side stats, table sizes).
    pub fn server(&self) -> &ServerFilter {
        &self.server
    }

    /// Mutable access (stat resets in benches).
    pub fn server_mut(&mut self) -> &mut ServerFilter {
        &mut self.server
    }

    /// Consumes the transport, yielding the wrapped server filter (used by
    /// the router's online re-shard to take the fleet back).
    pub fn into_server(self) -> ServerFilter {
        self.server
    }
}

impl Transport for LocalTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        // Encode/decode both directions so counted bytes match TCP exactly.
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        let decoded = decode_request(&frame)?;
        let resp = self.server.handle(&decoded);
        let resp_frame = encode_response(&resp);
        self.stats.bytes_received += resp_frame.len() as u64;
        self.stats.round_trips += 1;
        decode_response(&resp_frame)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        framed_call_batch(self, reqs)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl HasStats for LocalTransport {
    fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }
}

/// Client side of the TCP transport. Frames are `u32` length + payload.
pub struct TcpTransport {
    stream: TcpStream,
    stats: TransportStats,
}

impl HasStats for TcpTransport {
    fn stats_mut(&mut self) -> &mut TransportStats {
        &mut self.stats
    }
}

impl TcpTransport {
    /// Connects to a [`serve_tcp`] endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, CoreError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| CoreError::Transport(format!("connect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
        Ok(TcpTransport {
            stream,
            stats: TransportStats::default(),
        })
    }
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), CoreError> {
    let io = |e: std::io::Error| CoreError::Transport(format!("write: {e}"));
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, CoreError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(CoreError::Transport(format!("read: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 64 << 20 {
        return Err(CoreError::Transport(format!(
            "frame of {len} bytes refused"
        )));
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| CoreError::Transport(format!("read: {e}")))?;
    Ok(Some(payload))
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        write_frame(&mut self.stream, &frame)?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| CoreError::Transport("server closed connection".into()))?;
        self.stats.bytes_received += payload.len() as u64;
        self.stats.round_trips += 1;
        decode_response(&payload)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        framed_call_batch(self, reqs)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Serves `server` on `listener`, one connection at a time, until a client
/// sends [`Request::Shutdown`]. A connection that breaks mid-stream (I/O
/// error, unframeable bytes) is dropped and the next one accepted — a
/// misbehaving client cannot take the server down. Returns the server
/// filter (with its final stats) when shut down.
pub fn serve_tcp(
    listener: TcpListener,
    mut server: ServerFilter,
) -> Result<ServerFilter, CoreError> {
    'outer: loop {
        let (mut stream, _) = listener
            .accept()
            .map_err(|e| CoreError::Transport(format!("accept: {e}")))?;
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        // A clean hang-up (None) or poisoned stream (Err) both end the
        // connection; the server accepts the next one.
        while let Ok(Some(frame)) = read_frame(&mut stream) {
            let resp = match decode_request(&frame) {
                Ok(req) => {
                    let resp = server.handle(&req);
                    let shutdown = matches!(req, Request::Shutdown);
                    if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                        break;
                    }
                    if shutdown {
                        break 'outer;
                    }
                    continue;
                }
                Err(e) => Response::Err(e.to_string()),
            };
            if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                break;
            }
        }
    }
    Ok(server)
}

/// Shared state of a concurrent sharded host: one independently lockable
/// filter per shard, so connections bound to different shards execute in
/// parallel. The fleet vector itself sits behind an `RwLock` so an online
/// [`Request::Reshard`] can swap it out from under live connections:
/// request handling holds the read lock (many at once, per-shard
/// parallelism intact); re-sharding takes the write lock, which by
/// construction waits until every in-flight request has finished and keeps
/// new ones out while rows move.
struct ShardHost {
    filters: RwLock<Vec<Mutex<ServerFilter>>>,
    /// Bumped under the write lock by every reshard. Connections remember
    /// the generation they were accepted under; a mismatch means the client
    /// routes by a dead partition, and answering it would risk *silently
    /// incomplete* fan-outs (it would never ask the new shards) — so stale
    /// connections get an explicit "reconnect" error instead, for
    /// everything except the always-safe fleet-level frames.
    generation: AtomicU64,
    stop: AtomicBool,
}

impl ShardHost {
    fn shard_count(&self) -> usize {
        self.filters.read().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Online repartition: exclusive fleet access, rows move in memory,
    /// connections resume against the new placement. Existing connections
    /// are fenced off by the generation bump (see [`ShardHost::generation`]).
    /// A refused repartition (see [`ShardedServer::reshard`]) puts the
    /// original fleet back untouched — no rows lost, no generation bump.
    fn reshard(&self, shards: u32) -> Response {
        let mut guard = self.filters.write().unwrap_or_else(|p| p.into_inner());
        let old: Vec<Mutex<ServerFilter>> = std::mem::take(&mut *guard);
        let spec = crate::shard::ShardSpec::new(old.len() as u32);
        let filters = old
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect();
        match ShardedServer::from_filters(spec, filters).reshard(shards) {
            Ok(server) => {
                *guard = server.into_filters().into_iter().map(Mutex::new).collect();
                self.generation.fetch_add(1, Ordering::SeqCst);
                Response::Ok
            }
            Err((original, e)) => {
                *guard = original
                    .into_filters()
                    .into_iter()
                    .map(Mutex::new)
                    .collect();
                Response::Err(format!("reshard refused: {e}"))
            }
        }
    }
}

/// Serves a [`ShardedServer`] on `listener`, one thread per connection,
/// until any client sends [`Request::Shutdown`] (bare or shard-tagged, as a
/// standalone frame). Clients address shards with [`Request::ToShard`];
/// untagged requests go to shard 0, so a single-shard deployment speaks the
/// exact legacy protocol. [`Request::Reshard`] repartitions the fleet
/// online (see [`ShardedServer::reshard`]); connections that predate a
/// reshard are fenced off with an explicit "reconnect" error — their
/// partition is dead, and answering them could silently skip the new
/// shards. Returns the sharded server (with its per-shard stats and final
/// shard count) once every connection has drained.
pub fn serve_tcp_sharded(
    listener: TcpListener,
    server: ShardedServer,
) -> Result<ShardedServer, CoreError> {
    let addr = listener
        .local_addr()
        .map_err(|e| CoreError::Transport(format!("local_addr: {e}")))?;
    let host = Arc::new(ShardHost {
        filters: RwLock::new(server.into_filters().into_iter().map(Mutex::new).collect()),
        generation: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    });
    std::thread::scope(|scope| -> Result<(), CoreError> {
        loop {
            let (stream, _) = listener
                .accept()
                .map_err(|e| CoreError::Transport(format!("accept: {e}")))?;
            if host.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let host = Arc::clone(&host);
            scope.spawn(move || {
                // A connection failing mid-stream only ends that connection.
                let _ = serve_sharded_connection(stream, &host, addr);
            });
        }
    })?;
    let host = Arc::into_inner(host).expect("all connection threads joined");
    let filters: Vec<ServerFilter> = host
        .filters
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect();
    let spec = crate::shard::ShardSpec::new(filters.len() as u32);
    Ok(ShardedServer::from_filters(spec, filters))
}

fn serve_sharded_connection(
    mut stream: TcpStream,
    host: &ShardHost,
    addr: SocketAddr,
) -> Result<(), CoreError> {
    stream
        .set_nodelay(true)
        .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
    let born = host.generation.load(Ordering::SeqCst);
    while let Some(frame) = read_frame(&mut stream)? {
        let resp = match decode_request(&frame) {
            Ok(req) => {
                let (shard, inner): (u32, &Request) = match &req {
                    Request::ToShard { shard, req } => (*shard, req),
                    other => (0, other),
                };
                // The handshake answers for the whole host, whatever shard
                // it was addressed to.
                if matches!(inner, Request::ShardCount) {
                    let resp = Response::Count(host.shard_count() as u64);
                    write_frame(&mut stream, &encode_response(&resp))?;
                    continue;
                }
                // Re-sharding is likewise a fleet-level operation: it takes
                // the write lock, so it runs strictly between requests.
                if let Request::Reshard { shards } = inner {
                    let resp = host.reshard(*shards);
                    write_frame(&mut stream, &encode_response(&resp))?;
                    continue;
                }
                // Shutdown only counts when it was addressed to a shard
                // that exists — an erroneous frame must not stop the host.
                let mut shutdown = matches!(inner, Request::Shutdown);
                let resp = {
                    let filters = host.filters.read().unwrap_or_else(|p| p.into_inner());
                    // Generation fence (read under the same lock the reshard
                    // bumps it under): a connection accepted before a
                    // reshard routes by a dead partition. Answering it
                    // could be *silently incomplete* — a fan-out would
                    // never reach the new shards — so it gets an explicit
                    // error and must reconnect. Shutdown stays honoured
                    // (fleet-level, partition-independent).
                    if host.generation.load(Ordering::SeqCst) != born
                        && !matches!(inner, Request::Shutdown)
                    {
                        drop(filters);
                        write_frame(
                            &mut stream,
                            &encode_response(&Response::Err(
                                "shard layout changed (reshard); reconnect".into(),
                            )),
                        )?;
                        continue;
                    }
                    match filters.get(shard as usize) {
                        Some(m) => m.lock().unwrap_or_else(|p| p.into_inner()).handle(inner),
                        None => {
                            shutdown = false;
                            Response::Err(format!(
                                "no shard {shard} (server has {})",
                                filters.len()
                            ))
                        }
                    }
                };
                write_frame(&mut stream, &encode_response(&resp))?;
                if shutdown {
                    host.stop.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the stop flag.
                    let _ = TcpStream::connect(addr);
                    return Ok(());
                }
                continue;
            }
            Err(e) => Response::Err(e.to_string()),
        };
        write_frame(&mut stream, &encode_response(&resp))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn demo_server() -> ServerFilter {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        ServerFilter::new(out.table, out.ring)
    }

    #[test]
    fn local_transport_counts_bytes() {
        let mut t = LocalTransport::new(demo_server());
        let resp = t.call(&Request::Count).unwrap();
        assert_eq!(resp, Response::Count(3));
        let s = t.stats();
        assert_eq!(s.round_trips, 1);
        assert!(s.bytes_sent >= 1);
        assert!(s.bytes_received >= 9, "count response = tag + u64");
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        match t.call(&Request::Root).unwrap() {
            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1),
            other => panic!("{other:?}"),
        }
        match t.call(&Request::Children { pre: 1 }).unwrap() {
            Response::Locs(ls) => assert_eq!(ls.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.call(&Request::Shutdown).unwrap(), Response::Ok);
        let server = handle.join().unwrap();
        assert!(server.stats().requests >= 4);
        assert_eq!(t.stats().round_trips, 4);
    }

    /// A sharded host refusing a reshard (rows that cannot coexist in one
    /// partition) must keep serving from the original fleet — the refusal
    /// path restores it under the write lock instead of dropping it.
    #[test]
    fn sharded_host_survives_a_refused_reshard() {
        use crate::shard::ShardSpec;
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        let f1 = ServerFilter::new(out.table.clone(), out.ring.clone());
        let f2 = ServerFilter::new(out.table, out.ring);
        let server = ShardedServer::from_filters(ShardSpec::new(2), vec![f1, f2]);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp_sharded(listener, server).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        match t.call(&Request::Reshard { shards: 1 }).unwrap() {
            Response::Err(e) => assert!(e.contains("reshard refused"), "{e}"),
            other => panic!("{other:?}"),
        }
        // No generation bump on refusal: the same connection keeps working
        // against the intact original fleet.
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        assert_eq!(
            t.call(&Request::ShardCount).unwrap(),
            Response::Count(2),
            "fleet size unchanged"
        );
        t.call(&Request::Shutdown).unwrap();
        let server = handle.join().unwrap();
        assert_eq!(server.spec().shards(), 2);
        assert_eq!(server.total_rows(), 6, "no row lost to the refusal");
    }

    #[test]
    fn tcp_survives_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        {
            let mut t1 = TcpTransport::connect(addr).unwrap();
            assert_eq!(t1.call(&Request::Count).unwrap(), Response::Count(3));
            // Drop without shutdown.
        }
        let mut t2 = TcpTransport::connect(addr).unwrap();
        assert_eq!(t2.call(&Request::Count).unwrap(), Response::Count(3));
        t2.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
