//! Transports carrying the protocol frames.
//!
//! [`LocalTransport`] runs the server in-process but still encodes and
//! decodes every frame, so byte/round-trip counters mean the same thing they
//! would over a network. [`TcpTransport`]/[`serve_tcp`] carry the identical
//! frames over a socket with 4-byte length prefixes — used by the
//! `client_server_tcp` example and the integration tests.

use crate::error::CoreError;
use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use crate::server::ServerFilter;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Traffic counters shared by all transports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request/response pairs exchanged.
    pub round_trips: u64,
    /// Request bytes (client → server).
    pub bytes_sent: u64,
    /// Response bytes (server → client).
    pub bytes_received: u64,
}

/// A synchronous request/response channel to a `ServerFilter`.
pub trait Transport {
    /// Sends one request and waits for the response.
    fn call(&mut self, req: &Request) -> Result<Response, CoreError>;

    /// Counter snapshot.
    fn stats(&self) -> TransportStats;
}

/// In-process transport: full encode/decode on both sides, zero I/O.
pub struct LocalTransport {
    server: ServerFilter,
    stats: TransportStats,
}

impl LocalTransport {
    /// Wraps a server filter.
    pub fn new(server: ServerFilter) -> Self {
        LocalTransport {
            server,
            stats: TransportStats::default(),
        }
    }

    /// Read access to the wrapped server (server-side stats, table sizes).
    pub fn server(&self) -> &ServerFilter {
        &self.server
    }

    /// Mutable access (stat resets in benches).
    pub fn server_mut(&mut self) -> &mut ServerFilter {
        &mut self.server
    }
}

impl Transport for LocalTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        // Encode/decode both directions so counted bytes match TCP exactly.
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        let decoded = decode_request(&frame)?;
        let resp = self.server.handle(&decoded);
        let resp_frame = encode_response(&resp);
        self.stats.bytes_received += resp_frame.len() as u64;
        self.stats.round_trips += 1;
        decode_response(&resp_frame)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Client side of the TCP transport. Frames are `u32` length + payload.
pub struct TcpTransport {
    stream: TcpStream,
    stats: TransportStats,
}

impl TcpTransport {
    /// Connects to a [`serve_tcp`] endpoint.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, CoreError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| CoreError::Transport(format!("connect: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
        Ok(TcpTransport {
            stream,
            stats: TransportStats::default(),
        })
    }
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), CoreError> {
    let io = |e: std::io::Error| CoreError::Transport(format!("write: {e}"));
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .map_err(io)?;
    stream.write_all(payload).map_err(io)?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, CoreError> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(CoreError::Transport(format!("read: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 64 << 20 {
        return Err(CoreError::Transport(format!(
            "frame of {len} bytes refused"
        )));
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| CoreError::Transport(format!("read: {e}")))?;
    Ok(Some(payload))
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        let frame = encode_request(req);
        self.stats.bytes_sent += frame.len() as u64;
        write_frame(&mut self.stream, &frame)?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| CoreError::Transport("server closed connection".into()))?;
        self.stats.bytes_received += payload.len() as u64;
        self.stats.round_trips += 1;
        decode_response(&payload)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// Serves `server` on `listener`, one connection at a time, until a client
/// sends [`Request::Shutdown`]. Returns the server filter (with its final
/// stats) when shut down.
pub fn serve_tcp(
    listener: TcpListener,
    mut server: ServerFilter,
) -> Result<ServerFilter, CoreError> {
    'outer: loop {
        let (mut stream, _) = listener
            .accept()
            .map_err(|e| CoreError::Transport(format!("accept: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CoreError::Transport(format!("nodelay: {e}")))?;
        while let Some(frame) = read_frame(&mut stream)? {
            let resp = match decode_request(&frame) {
                Ok(req) => {
                    let resp = server.handle(&req);
                    let shutdown = matches!(req, Request::Shutdown);
                    write_frame(&mut stream, &encode_response(&resp))?;
                    if shutdown {
                        break 'outer;
                    }
                    continue;
                }
                Err(e) => Response::Err(e.to_string()),
            };
            write_frame(&mut stream, &encode_response(&resp))?;
        }
        // Client hung up without Shutdown: accept the next connection.
    }
    Ok(server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn demo_server() -> ServerFilter {
        let map = MapFile::sequential(29, 1, &["site", "a", "b"]).unwrap();
        let seed = Seed::from_test_key(9);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        ServerFilter::new(out.table, out.ring)
    }

    #[test]
    fn local_transport_counts_bytes() {
        let mut t = LocalTransport::new(demo_server());
        let resp = t.call(&Request::Count).unwrap();
        assert_eq!(resp, Response::Count(3));
        let s = t.stats();
        assert_eq!(s.round_trips, 1);
        assert!(s.bytes_sent >= 1);
        assert!(s.bytes_received >= 9, "count response = tag + u64");
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        let mut t = TcpTransport::connect(addr).unwrap();
        assert_eq!(t.call(&Request::Count).unwrap(), Response::Count(3));
        match t.call(&Request::Root).unwrap() {
            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1),
            other => panic!("{other:?}"),
        }
        match t.call(&Request::Children { pre: 1 }).unwrap() {
            Response::Locs(ls) => assert_eq!(ls.len(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(t.call(&Request::Shutdown).unwrap(), Response::Ok);
        let server = handle.join().unwrap();
        assert!(server.stats().requests >= 4);
        assert_eq!(t.stats().round_trips, 4);
    }

    #[test]
    fn tcp_survives_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_tcp(listener, demo_server()).unwrap());

        {
            let mut t1 = TcpTransport::connect(addr).unwrap();
            assert_eq!(t1.call(&Request::Count).unwrap(), Response::Count(3));
            // Drop without shutdown.
        }
        let mut t2 = TcpTransport::connect(addr).unwrap();
        assert_eq!(t2.call(&Request::Count).unwrap(), Response::Count(3));
        t2.call(&Request::Shutdown).unwrap();
        handle.join().unwrap();
    }
}
