//! The shard-aware, batch-first transport: [`ShardRouter`].
//!
//! A router owns one [`Transport`] per shard and presents the whole fleet as
//! a single [`Transport`]: engines and the [`crate::client::ClientFilter`]
//! stay shard-oblivious. Per logical round trip (a *wave*) the router
//!
//! 1. **splits** every sub-request by the deterministic `pre → shard`
//!    partition ([`ShardSpec::shard_of`]): point requests (`GetLoc`, `Eval`)
//!    go to the owning shard, item-list requests (`EvalMany`, `GetPolys`)
//!    are split into per-shard sublists, and structure requests (`Root`,
//!    `Children`, `Descendants`, `Count`) fan out to every shard;
//! 2. **dispatches** at most one frame per shard — many sub-requests for
//!    the same shard collapse into one [`Request::Batch`] — concurrently on
//!    threads for socket transports, or as a sequential loop for in-process
//!    ones;
//! 3. **merges** the answers back in document order: split item lists are
//!    scattered to their original positions, fanned location lists are
//!    k-way merged by `pre` (shards hold disjoint `pre` sets, so the merge
//!    reproduces the unsharded answer exactly).
//!
//! Cursors (the §5.2 `nextNode()` pipeline) keep working over shards: the
//! router opens one cursor per shard, holds one look-ahead head per stream,
//! and answers each `Next` with the minimum-`pre` head — the same document
//! order a single server streams, at one wave per node.
//!
//! # Speculative wave pipelining
//!
//! With [`ShardRouter::set_speculation`] on, the router overlaps dependent
//! waves: every `EvalMany` wave (a frontier being tested) piggybacks
//! `Children` prefetches for the same nodes **inside the same physical
//! frames** — wave *k + 1*'s probable batch travels while wave *k*'s
//! answers are in flight. The predicted answers land in a bounded cache;
//! when the engine then expands the surviving frontier, those `Children`
//! requests are answered locally (`speculative_hits`) and the expansion
//! wave costs **zero round trips**. A frontier that diverges from the
//! prediction (look-ahead pruning, `..` steps, descendant expansion) simply
//! never consumes its prefetches — they are counted as
//! `speculative_wasted`, and correctness is untouched because cached
//! answers are the very responses the owning shards produced for an
//! immutable table. Speculation is invisible in results by construction;
//! what it trades is bytes (prefetches for pruned nodes) for waves.

use crate::error::CoreError;
use crate::protocol::{Request, Response};
use crate::server::ServerFilter;
use crate::shard::{ShardSpec, ShardedServer};
use crate::transport::{
    LocalTransport, MuxPool, MuxTransport, TcpTransport, Transport, TransportStats,
};
use ssx_store::Loc;
use std::collections::HashMap;
use std::net::ToSocketAddrs;

/// How the answers of one original request are reassembled from per-shard
/// sub-responses.
enum Slot {
    /// Answer produced without touching any shard (e.g. an empty item list).
    Ready(Response),
    /// The request went verbatim to one shard.
    Single { shard: usize, pos: usize },
    /// An item-list request was split; each part remembers which original
    /// item indices it carries.
    Split {
        kind: SplitKind,
        total_items: usize,
        parts: Vec<(usize, usize, Vec<usize>)>,
    },
    /// The request was sent to every shard; `positions[s]` is its slot in
    /// shard `s`'s frame.
    Fan {
        kind: FanKind,
        positions: Vec<usize>,
    },
}

#[derive(Clone, Copy)]
enum SplitKind {
    /// `EvalMany` → `Values`, scattered by item index.
    Values,
    /// `GetPolys` → `Polys`, scattered by item index.
    Polys,
}

#[derive(Clone, Copy)]
enum FanKind {
    /// `Root`: at most one shard answers `Some`.
    Root,
    /// `Children`/`Descendants`: disjoint sorted lists, merged by `pre`.
    Locs,
    /// `Count`: summed.
    Count,
    /// `MaxPre`: the maximum across shards.
    Max,
    /// `Shutdown` and friends: every shard must ack.
    Ok,
    /// `Epoch`: per-shard epochs, kept separate (`Values`, shard order) —
    /// aggregate fences are validated shard by shard, so collapsing them
    /// into one number would lose exactly the information they exist for.
    Epochs,
}

/// Upper bound on cached speculative answers (entries, each one node's
/// children list). Beyond it the router stops prefetching rather than
/// evicting — a bounded memory footprint with no cache-churn pathology.
const SPEC_CACHE_MAX: usize = 1 << 16;

/// Default per-shard traffic budget (bytes, client-observed send + receive)
/// behind [`ShardRouter::suggest_shards`]: the fleet is sized so one
/// shard's share of a measurement window stays under ~1 MiB.
pub const SUGGEST_TARGET_BYTES: u64 = 1 << 20;

/// Ceiling on what [`ShardRouter::suggest_shards`] will ever recommend.
pub const MAX_SUGGESTED_SHARDS: u32 = 64;

/// A speculative `Children` prefetch riding an `EvalMany` wave: one fanned
/// sub-request per shard, harvested into the cache on arrival.
struct SpecFetch {
    pre: u32,
    /// `positions[s]` = slot of the prefetch in shard `s`'s frame.
    positions: Vec<usize>,
}

/// A cached speculative answer. `consumed` marks first use, for the
/// hit/wasted accounting.
struct SpecEntry {
    locs: Vec<Loc>,
    consumed: bool,
}

/// One per-shard cursor stream of a merged cursor, with one look-ahead head.
struct ShardStream {
    cursor: u32,
    head: Loc,
}

/// A router-level cursor: the live per-shard streams (index = shard).
struct MergeCursor {
    streams: Vec<Option<ShardStream>>,
}

/// The shard-aware batch-first transport (see the module docs).
pub struct ShardRouter<T: Transport> {
    spec: ShardSpec,
    transports: Vec<T>,
    /// Wrap per-shard frames in [`Request::ToShard`]. Socket endpoints need
    /// the tag (the host routes on it); local transports are positional.
    tag_frames: bool,
    /// Dispatch per-shard frames on scoped threads instead of a sequential
    /// loop. On for TCP, off for in-process transports.
    concurrent: bool,
    waves: u64,
    batches: u64,
    batched_requests: u64,
    cursors: HashMap<u32, MergeCursor>,
    next_cursor: u32,
    /// Speculative wave pipelining (see the module docs). Off by default —
    /// the PR-3 wire shape — because it trades bytes for waves.
    speculate: bool,
    /// Children lists prefetched by speculation, keyed by parent `pre`.
    spec_cache: HashMap<u32, SpecEntry>,
    /// Prefetches issued / answers served from the cache / distinct cached
    /// entries consumed at least once (`issued − consumed` = wasted).
    spec_issued: u64,
    spec_hits: u64,
    spec_consumed: u64,
    /// Traffic of transports retired by [`ShardRouter::reshard`] — folded
    /// into [`ShardRouter::stats`] so counters never run backwards across a
    /// repartition. Only `bytes_sent`/`bytes_received`/`shard_dispatches`
    /// are ever non-zero here.
    carry: TransportStats,
}

impl ShardRouter<LocalTransport> {
    /// Routes to in-process shards: one [`LocalTransport`] per filter of
    /// `server`, sequential dispatch (there is no I/O to overlap).
    pub fn local(server: ShardedServer) -> Self {
        let spec = server.spec();
        let transports = server
            .into_filters()
            .into_iter()
            .map(LocalTransport::new)
            .collect();
        ShardRouter::new(spec, transports, false, false)
    }

    /// Read access to the per-shard servers (stats, table sizes).
    pub fn servers(&self) -> impl Iterator<Item = &ServerFilter> {
        self.transports.iter().map(|t| t.server())
    }

    /// Mutable access to the per-shard servers (stat resets in benches).
    pub fn servers_mut(&mut self) -> impl Iterator<Item = &mut ServerFilter> {
        self.transports.iter_mut().map(|t| t.server_mut())
    }

    /// Repartitions the in-process fleet across `shards` filters without a
    /// save/load cycle ([`ShardedServer::reshard`]): rows move
    /// bit-identically, the router re-wires one transport per new shard,
    /// and cumulative byte counters carry over. Open merged cursors are
    /// invalidated (their server-side buffers die with the old placement;
    /// the next `Next` gets an explicit error), and the speculation cache
    /// is cleared. A refused repartition (see [`ShardedServer::reshard`])
    /// re-wires the *original* fleet and surfaces the error — the router
    /// stays fully usable either way.
    pub fn reshard(&mut self, shards: u32) -> Result<(), CoreError> {
        self.cursors.clear();
        self.spec_cache.clear();
        for t in &self.transports {
            let u = t.stats();
            self.carry.bytes_sent += u.bytes_sent;
            self.carry.bytes_received += u.bytes_received;
            self.carry.shard_dispatches += u.round_trips;
        }
        let filters: Vec<ServerFilter> = std::mem::take(&mut self.transports)
            .into_iter()
            .map(LocalTransport::into_server)
            .collect();
        let (server, outcome) =
            match ShardedServer::from_filters(self.spec, filters).reshard(shards) {
                Ok(server) => (server, Ok(())),
                Err((original, e)) => (original, Err(CoreError::from(e))),
            };
        self.spec = server.spec();
        self.transports = server
            .into_filters()
            .into_iter()
            .map(LocalTransport::new)
            .collect();
        outcome
    }
}

impl ShardRouter<TcpTransport> {
    /// Connects one socket per shard to a [`crate::transport::serve_tcp_sharded`]
    /// endpoint; frames are shard-tagged and dispatched concurrently.
    ///
    /// The first connection performs the [`Request::ShardCount`] handshake:
    /// a shard count that disagrees with the server's is refused here —
    /// routing by the wrong partition would silently drop every row on the
    /// unreached shards. `shards = 1` skips the tags, so it also speaks to
    /// a legacy single-filter [`crate::transport::serve_tcp`] endpoint
    /// (which answers the handshake with 1 itself).
    pub fn connect<A: ToSocketAddrs + Copy>(addr: A, shards: u32) -> Result<Self, CoreError> {
        let spec = ShardSpec::new(shards);
        let mut transports = (0..spec.shards())
            .map(|_| TcpTransport::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        match transports[0].call(&Request::ShardCount)? {
            Response::Count(n) if n == spec.shards() as u64 => {}
            Response::Count(n) => {
                return Err(CoreError::Transport(format!(
                    "server partitions across {n} shard(s) but the client asked for {}; \
                     reconnect with the server's shard count",
                    spec.shards()
                )))
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "unexpected shard-count handshake response {other:?}"
                )))
            }
        }
        Ok(ShardRouter::new(spec, transports, spec.shards() > 1, true))
    }
}

impl ShardRouter<MuxTransport> {
    /// Routes over a shared [`MuxPool`]: one **multiplexed** socket per
    /// shard, shared with every other router built on the same pool, so the
    /// waves of many concurrent clients overlap on the wire instead of each
    /// costing the server a connection and a thread. Frames are
    /// shard-tagged and dispatched concurrently exactly like
    /// [`ShardRouter::connect`]; the pool's [`Request::Hello`] handshake
    /// already negotiated the framing and validated the shard count.
    pub fn mux(pool: &MuxPool) -> Self {
        let spec = ShardSpec::new(pool.shards());
        let transports = (0..spec.shards()).map(|s| pool.transport(s)).collect();
        ShardRouter::new(spec, transports, spec.shards() > 1, true)
    }
}

impl<T: Transport + Send> ShardRouter<T> {
    /// Wires a router over explicit per-shard transports.
    pub fn new(spec: ShardSpec, transports: Vec<T>, tag_frames: bool, concurrent: bool) -> Self {
        assert_eq!(spec.shards() as usize, transports.len());
        ShardRouter {
            spec,
            transports,
            tag_frames,
            concurrent,
            waves: 0,
            batches: 0,
            batched_requests: 0,
            cursors: HashMap::new(),
            next_cursor: 1,
            speculate: false,
            spec_cache: HashMap::new(),
            spec_issued: 0,
            spec_hits: 0,
            spec_consumed: 0,
            carry: TransportStats::default(),
        }
    }

    /// Enables or disables speculative wave pipelining (see the module
    /// docs). Disabling clears the prefetch cache; counters persist.
    pub fn set_speculation(&mut self, enabled: bool) {
        self.speculate = enabled;
        if !enabled {
            self.spec_cache.clear();
        }
    }

    /// Whether speculative wave pipelining is on.
    pub fn speculation(&self) -> bool {
        self.speculate
    }

    /// The partition spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Per-shard traffic counters (physical sends, bytes per shard).
    pub fn shard_stats(&self) -> Vec<TransportStats> {
        self.transports.iter().map(|t| t.stats()).collect()
    }

    /// Auto-tuning: the shard count the observed per-shard load argues for,
    /// at the default [`SUGGEST_TARGET_BYTES`] per-shard budget. See
    /// [`ShardRouter::suggest_shards_for_target`].
    pub fn suggest_shards(&self) -> u32 {
        self.suggest_shards_for_target(SUGGEST_TARGET_BYTES)
    }

    /// Auto-tuning with an explicit per-shard byte budget: sizes the fleet
    /// so that the *busiest* shard's observed traffic, taken as what any
    /// shard may attract (conservative under load skew), would fit under
    /// `target_bytes` — `⌈busiest · S / target⌉`, clamped to
    /// `[1, MAX_SUGGESTED_SHARDS]`. Under the balanced round-robin
    /// partition this reduces to `⌈total / target⌉`; skew (one shard
    /// hotter than the mean) pushes the suggestion up. With no traffic
    /// observed it keeps the current count. Feed the result to
    /// [`ShardRouter::reshard`] (or `ssxdb reshard`) — the router never
    /// repartitions behind the caller's back.
    pub fn suggest_shards_for_target(&self, target_bytes: u64) -> u32 {
        let target = target_bytes.max(1);
        let loads = self
            .transports
            .iter()
            .map(|t| {
                let s = t.stats();
                s.bytes_sent + s.bytes_received
            })
            .collect::<Vec<u64>>();
        let busiest = loads.iter().copied().max().unwrap_or(0);
        if busiest == 0 {
            return self.spec.shards();
        }
        let needed = busiest
            .saturating_mul(self.spec.shards() as u64)
            .div_ceil(target)
            .min(MAX_SUGGESTED_SHARDS as u64) as u32;
        needed.max(1)
    }

    /// The underlying per-shard transports.
    pub fn transports(&self) -> &[T] {
        &self.transports
    }

    /// Mutable access to the underlying transports.
    pub fn transports_mut(&mut self) -> &mut [T] {
        &mut self.transports
    }

    fn shard_of(&self, pre: u32) -> usize {
        self.spec.shard_of(pre) as usize
    }

    /// Sends one frame per shard with work queued (batching multi-request
    /// shards), one wave. Returns per-shard response lists parallel to
    /// `per_shard`.
    fn dispatch(&mut self, per_shard: Vec<Vec<Request>>) -> Result<Vec<Vec<Response>>, CoreError> {
        debug_assert_eq!(per_shard.len(), self.transports.len());
        if per_shard.iter().all(|v| v.is_empty()) {
            return Ok(per_shard.into_iter().map(|_| Vec::new()).collect());
        }
        self.waves += 1;
        let tag = self.tag_frames;
        // Build the outgoing frame per shard.
        let mut frames: Vec<Option<(Request, usize)>> = Vec::with_capacity(per_shard.len());
        for (shard, reqs) in per_shard.into_iter().enumerate() {
            if reqs.is_empty() {
                frames.push(None);
                continue;
            }
            let expected = reqs.len();
            let mut frame = if expected == 1 {
                reqs.into_iter().next().expect("one request")
            } else {
                self.batches += 1;
                self.batched_requests += expected as u64;
                Request::Batch(reqs)
            };
            if tag {
                frame = Request::ToShard {
                    shard: shard as u32,
                    req: Box::new(frame),
                };
            }
            frames.push(Some((frame, expected)));
        }
        // Dispatch: a pipelining transport (mux) overlaps the round trips
        // with zero extra threads — every frame goes on the wire, then the
        // completion slots are collected; scoped threads overlap blocking
        // socket transports; the sequential loop is the right shape for
        // in-process shards.
        let results: Vec<Option<Result<Response, CoreError>>> =
            if self.transports.first().is_some_and(Transport::pipelines) {
                let pending: Vec<_> = self
                    .transports
                    .iter_mut()
                    .zip(&frames)
                    .map(|(t, f)| f.as_ref().map(|(frame, _)| t.call_pipelined(frame)))
                    .collect();
                self.transports
                    .iter_mut()
                    .zip(pending)
                    .map(|(t, p)| p.map(|p| p.and_then(|call| t.finish_pipelined(call))))
                    .collect()
            } else if self.concurrent {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .transports
                        .iter_mut()
                        .zip(&frames)
                        .map(|(t, f)| {
                            f.as_ref()
                                .map(|(frame, _)| scope.spawn(move || t.call(frame)))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.map(|h| h.join().expect("shard dispatch thread")))
                        .collect()
                })
            } else {
                self.transports
                    .iter_mut()
                    .zip(&frames)
                    .map(|(t, f)| f.as_ref().map(|(frame, _)| t.call(frame)))
                    .collect()
            };
        // Unwrap batch envelopes back into per-shard response lists.
        let mut out = Vec::with_capacity(results.len());
        for (res, frame) in results.into_iter().zip(frames) {
            match (res, frame) {
                (None, _) => out.push(Vec::new()),
                (Some(res), Some((_, expected))) => {
                    let resp = res?;
                    if expected == 1 {
                        out.push(vec![resp]);
                    } else {
                        out.push(crate::transport::unwrap_batch(resp, expected)?);
                    }
                }
                (Some(_), None) => unreachable!("response without a frame"),
            }
        }
        Ok(out)
    }

    /// Splits `reqs` by shard, dispatches one wave, merges the answers back
    /// in request order. Cursor requests need router-held merge state and
    /// are answered through it (each is its own wave).
    fn route_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        if reqs.iter().any(|r| {
            matches!(
                r,
                Request::OpenChildrenCursor { .. }
                    | Request::OpenDescendantsCursor { .. }
                    | Request::Next { .. }
                    | Request::CloseCursor { .. }
                    | Request::Insert { .. }
                    | Request::Delete { .. }
            )
        }) {
            return reqs.iter().map(|r| self.route_one(r)).collect();
        }
        self.route_batch_core(reqs)
    }

    /// The non-cursor wave: plan every request, piggyback speculative
    /// prefetches, dispatch (at most) once, harvest, merge. A wave whose
    /// every request was answered from the speculation cache dispatches
    /// nothing and costs zero round trips.
    fn route_batch_core(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        let shards = self.transports.len();
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); shards];
        let mut slots: Vec<Slot> = Vec::with_capacity(reqs.len());
        for req in reqs {
            slots.push(self.plan(req, &mut per_shard));
        }
        let specs = self.plan_speculation(reqs, &mut per_shard);
        let mut responses = self.dispatch(per_shard)?;
        self.harvest_speculation(specs, &mut responses);
        slots
            .into_iter()
            .map(|slot| merge_slot(slot, &mut responses))
            .collect()
    }

    /// Queues the next wave's probable `Children` fetches onto a wave that
    /// is about to dispatch anyway: one fanned prefetch per distinct
    /// `EvalMany` node not already cached. Prefetches never *create* a wave
    /// — an otherwise-empty wave stays empty — and stop when the cache is
    /// full.
    fn plan_speculation(
        &mut self,
        reqs: &[Request],
        per_shard: &mut [Vec<Request>],
    ) -> Vec<SpecFetch> {
        if !self.speculate || per_shard.iter().all(|v| v.is_empty()) {
            return Vec::new();
        }
        let mut out: Vec<SpecFetch> = Vec::new();
        let mut queued: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for req in reqs {
            let Request::EvalMany { pres, .. } = req else {
                continue;
            };
            for &pre in pres {
                if self.spec_cache.len() + out.len() >= SPEC_CACHE_MAX {
                    return out;
                }
                if !queued.insert(pre) || self.spec_cache.contains_key(&pre) {
                    continue;
                }
                // Children of `pre` may live on any shard (the partition is
                // by the *child's* pre), so the prefetch fans like a real
                // `Children` request would.
                let positions = per_shard
                    .iter_mut()
                    .map(|q| {
                        q.push(Request::Children { pre });
                        q.len() - 1
                    })
                    .collect();
                self.spec_issued += 1;
                out.push(SpecFetch { pre, positions });
            }
        }
        out
    }

    /// Moves the speculative answers out of the wave and into the cache.
    /// A prefetch any shard answered with an error is dropped (it stays
    /// issued-but-never-consumed, i.e. wasted) — the cache holds only
    /// answers identical to what a real fan would have merged.
    fn harvest_speculation(&mut self, specs: Vec<SpecFetch>, responses: &mut [Vec<Response>]) {
        for spec in specs {
            let mut locs: Vec<Loc> = Vec::new();
            let mut ok = true;
            for (shard, &pos) in spec.positions.iter().enumerate() {
                match take_response(responses, shard, pos) {
                    Response::Locs(ls) => locs.extend(ls),
                    _ => ok = false,
                }
            }
            if ok {
                // Disjoint pre sets: sorting is the exact k-way merge.
                locs.sort_by_key(|l| l.pre);
                self.spec_cache.insert(
                    spec.pre,
                    SpecEntry {
                        locs,
                        consumed: false,
                    },
                );
            }
        }
    }

    /// Routes one request that is not a cursor operation.
    fn plan(&mut self, req: &Request, per_shard: &mut [Vec<Request>]) -> Slot {
        match req {
            Request::GetLoc { pre } | Request::Eval { pre, .. } => {
                let shard = self.shard_of(*pre);
                let pos = per_shard[shard].len();
                per_shard[shard].push(req.clone());
                Slot::Single { shard, pos }
            }
            Request::EvalMany { pres, point } => {
                let parts = self.split_items(pres, per_shard, |sub| Request::EvalMany {
                    pres: sub,
                    point: *point,
                });
                Slot::Split {
                    kind: SplitKind::Values,
                    total_items: pres.len(),
                    parts,
                }
            }
            Request::GetPolys { pres } => {
                let parts =
                    self.split_items(pres, per_shard, |sub| Request::GetPolys { pres: sub });
                Slot::Split {
                    kind: SplitKind::Polys,
                    total_items: pres.len(),
                    parts,
                }
            }
            Request::Root => self.fan(req, FanKind::Root, per_shard),
            Request::Children { pre } => {
                // A speculative prefetch may already hold this answer; if
                // so the request never leaves the router.
                if self.speculate {
                    if let Some(entry) = self.spec_cache.get_mut(pre) {
                        self.spec_hits += 1;
                        if !entry.consumed {
                            entry.consumed = true;
                            self.spec_consumed += 1;
                        }
                        return Slot::Ready(Response::Locs(entry.locs.clone()));
                    }
                }
                self.fan(req, FanKind::Locs, per_shard)
            }
            Request::Descendants { .. } => self.fan(req, FanKind::Locs, per_shard),
            // Locs-merging the fan gives exactly the document-order forest.
            Request::Roots => self.fan(req, FanKind::Locs, per_shard),
            Request::Count => self.fan(req, FanKind::Count, per_shard),
            Request::MaxPre => self.fan(req, FanKind::Max, per_shard),
            Request::Epoch => self.fan(req, FanKind::Epochs, per_shard),
            // An aggregate closing frame is inherently single-shard: its
            // `expect_epoch` is one shard's fence, so the client splits the
            // matched pres by the public partition itself and routes each
            // sub-frame by its first pre (for `AGG_CHECK`, a representative
            // pre owned by the target shard — `shard + 1` under the
            // round-robin partition).
            Request::Agg { pres, .. } => {
                let Some(&first) = pres.first() else {
                    return Slot::Ready(Response::Err(
                        "Agg via a router needs at least one pre to route by; \
                         send a representative pre for AGG_CHECK"
                            .into(),
                    ));
                };
                let shard = self.shard_of(first);
                if pres.iter().any(|&p| self.shard_of(p) != shard) {
                    return Slot::Ready(Response::Err(
                        "Agg pres span shards; split them by ShardSpec::shard_of first".into(),
                    ));
                }
                let pos = per_shard[shard].len();
                per_shard[shard].push(req.clone());
                Slot::Single { shard, pos }
            }
            Request::Shutdown => self.fan(req, FanKind::Ok, per_shard),
            // The router *is* the sharded endpoint from its client's view.
            Request::ShardCount => Slot::Ready(Response::Count(self.spec.shards() as u64)),
            // Repartitioning a fleet the router holds open connections to
            // would silently invalidate its own partition; the owning
            // endpoint does it instead ([`ShardRouter::reshard`] locally, a
            // raw transport against a sharded TCP host remotely).
            Request::Reshard { .. } => Slot::Ready(Response::Err(
                "reshard via ShardRouter::reshard (local) or a direct transport (TCP host)".into(),
            )),
            // Framing negotiation belongs to the connection owner; a mux
            // router's pool already performed it at connect time.
            Request::Hello { .. } => Slot::Ready(Response::Err(
                "mux handshakes are performed by the owning transport at connect time".into(),
            )),
            Request::Batch(_) | Request::ToShard { .. } => Slot::Ready(Response::Err(
                "routers build their own envelopes; send plain requests".into(),
            )),
            Request::OpenChildrenCursor { .. }
            | Request::OpenDescendantsCursor { .. }
            | Request::Next { .. }
            | Request::CloseCursor { .. } => {
                unreachable!("cursor requests are answered by the merge-cursor path")
            }
            Request::Insert { .. } | Request::Delete { .. } => {
                unreachable!("write frames are answered by the write path")
            }
        }
    }

    /// Groups `pres` by owning shard, queueing one sub-request per shard
    /// with items; records original item indices for the scatter.
    fn split_items(
        &self,
        pres: &[u32],
        per_shard: &mut [Vec<Request>],
        make: impl Fn(Vec<u32>) -> Request,
    ) -> Vec<(usize, usize, Vec<usize>)> {
        let mut grouped: Vec<(Vec<u32>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); per_shard.len()];
        for (i, &pre) in pres.iter().enumerate() {
            let shard = self.shard_of(pre);
            grouped[shard].0.push(pre);
            grouped[shard].1.push(i);
        }
        let mut parts = Vec::new();
        for (shard, (sub, idxs)) in grouped.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let pos = per_shard[shard].len();
            per_shard[shard].push(make(sub));
            parts.push((shard, pos, idxs));
        }
        parts
    }

    fn fan(&self, req: &Request, kind: FanKind, per_shard: &mut [Vec<Request>]) -> Slot {
        let positions = per_shard
            .iter_mut()
            .map(|q| {
                q.push(req.clone());
                q.len() - 1
            })
            .collect();
        Slot::Fan { kind, positions }
    }

    fn route_one(&mut self, req: &Request) -> Result<Response, CoreError> {
        match req {
            Request::OpenChildrenCursor { .. } | Request::OpenDescendantsCursor { .. } => {
                self.open_merge_cursor(req)
            }
            Request::Next { cursor } => self.next_merged(*cursor),
            Request::CloseCursor { cursor } => self.close_merged(*cursor),
            Request::Insert { rows } => self.route_insert(rows),
            Request::Delete { pres } => self.route_delete(pres),
            _ => {
                let mut responses = self.route_batch_core(std::slice::from_ref(req))?;
                Ok(responses.pop().expect("one response per request"))
            }
        }
    }

    // ---- the write plane --------------------------------------------------

    /// Every derived answer the router holds was computed against the
    /// pre-write table: prefetched children lists and merged cursor state
    /// both die with the write (open cursors surface "no cursor" on their
    /// next pull — the router-side face of the server's epoch fence).
    fn invalidate_for_write(&mut self) {
        self.spec_cache.clear();
        self.cursors.clear();
    }

    /// Splits `rows` by owning shard and dispatches one `Insert` per shard
    /// with work, one wave. If any shard refuses, the rows the *other*
    /// shards already applied are deleted again (compensation) so a
    /// multi-shard document never survives half-inserted; the error then
    /// surfaces as the answer.
    fn route_insert(&mut self, rows: &[(Loc, Vec<u8>)]) -> Result<Response, CoreError> {
        self.invalidate_for_write();
        let shards = self.transports.len();
        let mut grouped: Vec<Vec<(Loc, Vec<u8>)>> = vec![Vec::new(); shards];
        for (loc, poly) in rows {
            grouped[self.shard_of(loc.pre)].push((*loc, poly.clone()));
        }
        let pres_by_shard: Vec<Vec<u32>> = grouped
            .iter()
            .map(|g| g.iter().map(|(l, _)| l.pre).collect())
            .collect();
        let mut sent = Vec::new();
        let mut per_shard: Vec<Vec<Request>> = Vec::with_capacity(shards);
        for (shard, group) in grouped.into_iter().enumerate() {
            if group.is_empty() {
                per_shard.push(Vec::new());
            } else {
                sent.push(shard);
                per_shard.push(vec![Request::Insert { rows: group }]);
            }
        }
        let mut responses = self.dispatch(per_shard)?;
        let mut total = 0u64;
        let mut failed = None;
        let mut applied = Vec::new();
        for &shard in &sent {
            match take_response(&mut responses, shard, 0) {
                Response::Count(n) => {
                    total += n;
                    applied.push(shard);
                }
                Response::Err(e) => failed = Some(e),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected insert part {other:?}"
                    )))
                }
            }
        }
        if let Some(e) = failed {
            let mut undo: Vec<Vec<Request>> = vec![Vec::new(); shards];
            for shard in applied {
                undo[shard].push(Request::Delete {
                    pres: pres_by_shard[shard].clone(),
                });
            }
            self.dispatch(undo)?;
            return Ok(Response::Err(e));
        }
        Ok(Response::Count(total))
    }

    /// Splits `pres` by owning shard and dispatches one `Delete` per shard
    /// with work, one wave; per-shard removal counts sum. Deletes are
    /// idempotent end to end, so a partial failure is simply retried.
    fn route_delete(&mut self, pres: &[u32]) -> Result<Response, CoreError> {
        self.invalidate_for_write();
        let shards = self.transports.len();
        let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for &pre in pres {
            grouped[self.shard_of(pre)].push(pre);
        }
        let mut sent = Vec::new();
        let mut per_shard: Vec<Vec<Request>> = Vec::with_capacity(shards);
        for (shard, group) in grouped.into_iter().enumerate() {
            if group.is_empty() {
                per_shard.push(Vec::new());
            } else {
                sent.push(shard);
                per_shard.push(vec![Request::Delete { pres: group }]);
            }
        }
        let mut responses = self.dispatch(per_shard)?;
        let mut total = 0u64;
        for &shard in &sent {
            match take_response(&mut responses, shard, 0) {
                Response::Count(n) => total += n,
                Response::Err(e) => return Ok(Response::Err(e)),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected delete part {other:?}"
                    )))
                }
            }
        }
        Ok(Response::Count(total))
    }

    // ---- merged cursors ---------------------------------------------------

    /// Opens one per-shard cursor plus one look-ahead head per stream (two
    /// waves), registering a router-level cursor id.
    fn open_merge_cursor(&mut self, req: &Request) -> Result<Response, CoreError> {
        let shards = self.transports.len();
        let opened = self.dispatch(vec![vec![req.clone()]; shards])?;
        let mut shard_cursors = Vec::with_capacity(shards);
        for resp in opened {
            match resp.into_iter().next() {
                Some(Response::Cursor(c)) => shard_cursors.push(c),
                Some(Response::Err(e)) => return Ok(Response::Err(e)),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected cursor-open response {other:?}"
                    )))
                }
            }
        }
        let heads = self.dispatch(
            shard_cursors
                .iter()
                .map(|&c| vec![Request::Next { cursor: c }])
                .collect(),
        )?;
        let mut streams = Vec::with_capacity(shards);
        for (cursor, resp) in shard_cursors.into_iter().zip(heads) {
            match resp.into_iter().next() {
                Some(Response::MaybeLoc(Some(head))) => {
                    streams.push(Some(ShardStream { cursor, head }))
                }
                // Exhausted immediately; the shard already dropped it.
                Some(Response::MaybeLoc(None)) => streams.push(None),
                Some(Response::Err(e)) => return Ok(Response::Err(e)),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected cursor-head response {other:?}"
                    )))
                }
            }
        }
        let id = self.next_cursor;
        self.next_cursor = self.next_cursor.wrapping_add(1).max(1);
        self.cursors.insert(id, MergeCursor { streams });
        Ok(Response::Cursor(id))
    }

    /// Pops the minimum-`pre` head across the live streams and refills that
    /// stream (one wave to one shard).
    fn next_merged(&mut self, id: u32) -> Result<Response, CoreError> {
        let Some(cursor) = self.cursors.get(&id) else {
            return Ok(Response::Err(format!("no cursor {id}")));
        };
        let Some((shard, _)) = cursor
            .streams
            .iter()
            .enumerate()
            .filter_map(|(s, st)| st.as_ref().map(|st| (s, st.head.pre)))
            .min_by_key(|&(_, pre)| pre)
        else {
            // Every stream drained: mirror the server's auto-close.
            self.cursors.remove(&id);
            return Ok(Response::MaybeLoc(None));
        };
        let shard_cursor = cursor.streams[shard].as_ref().expect("live stream").cursor;
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.transports.len()];
        per_shard[shard].push(Request::Next {
            cursor: shard_cursor,
        });
        let resp = self.dispatch(per_shard)?;
        let refill = match resp
            .into_iter()
            .nth(shard)
            .and_then(|v| v.into_iter().next())
        {
            Some(Response::MaybeLoc(l)) => l,
            Some(Response::Err(e)) => return Ok(Response::Err(e)),
            other => {
                return Err(CoreError::Transport(format!(
                    "unexpected cursor-next response {other:?}"
                )))
            }
        };
        let cursor = self.cursors.get_mut(&id).expect("checked above");
        let stream = cursor.streams[shard].as_mut().expect("live stream");
        let head = stream.head;
        match refill {
            Some(next) => stream.head = next,
            None => cursor.streams[shard] = None,
        }
        Ok(Response::MaybeLoc(Some(head)))
    }

    /// Closes the remaining per-shard cursors (one wave) and drops the
    /// merge state. Unknown ids ack like the server does.
    fn close_merged(&mut self, id: u32) -> Result<Response, CoreError> {
        let Some(cursor) = self.cursors.remove(&id) else {
            return Ok(Response::Ok);
        };
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.transports.len()];
        for (shard, stream) in cursor.streams.into_iter().enumerate() {
            if let Some(stream) = stream {
                per_shard[shard].push(Request::CloseCursor {
                    cursor: stream.cursor,
                });
            }
        }
        self.dispatch(per_shard)?;
        Ok(Response::Ok)
    }
}

/// Reassembles one original request's response from the per-shard lists.
/// Every `(shard, pos)` slot is consumed by exactly one original request,
/// so responses are *moved* out of the lists (polynomial payloads are never
/// copied), leaving `Response::Ok` placeholders behind.
fn merge_slot(slot: Slot, responses: &mut [Vec<Response>]) -> Result<Response, CoreError> {
    match slot {
        Slot::Ready(resp) => Ok(resp),
        Slot::Single { shard, pos } => Ok(take_response(responses, shard, pos)),
        Slot::Split {
            kind,
            total_items,
            parts,
        } => merge_split(kind, total_items, parts, responses),
        Slot::Fan { kind, positions } => merge_fan(kind, positions, responses),
    }
}

/// Moves one per-shard response out of the lists.
fn take_response(responses: &mut [Vec<Response>], shard: usize, pos: usize) -> Response {
    std::mem::replace(&mut responses[shard][pos], Response::Ok)
}

fn merge_split(
    kind: SplitKind,
    total_items: usize,
    parts: Vec<(usize, usize, Vec<usize>)>,
    responses: &mut [Vec<Response>],
) -> Result<Response, CoreError> {
    match kind {
        SplitKind::Values => {
            let mut out = vec![0u64; total_items];
            for (shard, pos, idxs) in parts {
                match take_response(responses, shard, pos) {
                    Response::Values(vs) if vs.len() == idxs.len() => {
                        for (&i, &v) in idxs.iter().zip(&vs) {
                            out[i] = v;
                        }
                    }
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected EvalMany part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Values(out))
        }
        SplitKind::Polys => {
            let mut out = vec![Vec::new(); total_items];
            for (shard, pos, idxs) in parts {
                match take_response(responses, shard, pos) {
                    Response::Polys(ps) if ps.len() == idxs.len() => {
                        for (&i, p) in idxs.iter().zip(ps) {
                            out[i] = p;
                        }
                    }
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected GetPolys part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Polys(out))
        }
    }
}

fn merge_fan(
    kind: FanKind,
    positions: Vec<usize>,
    responses: &mut [Vec<Response>],
) -> Result<Response, CoreError> {
    let parts: Vec<Response> = positions
        .iter()
        .enumerate()
        .map(|(shard, &pos)| take_response(responses, shard, pos))
        .collect();
    match kind {
        FanKind::Root => {
            // Each shard answers with its own first document root (or
            // nothing); the document's root is the smallest pre among them.
            let mut found: Option<Loc> = None;
            for part in parts {
                match part {
                    Response::MaybeLoc(Some(l)) => {
                        if found.is_none_or(|f| l.pre < f.pre) {
                            found = Some(l);
                        }
                    }
                    Response::MaybeLoc(None) => {}
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Root part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::MaybeLoc(found))
        }
        FanKind::Locs => {
            let mut out: Vec<Loc> = Vec::new();
            for part in parts {
                match part {
                    Response::Locs(ls) => out.extend(ls),
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Locs part {other:?}"
                        )))
                    }
                }
            }
            // Shards hold disjoint pre sets: sorting the concatenation is
            // exactly the k-way document-order merge.
            out.sort_by_key(|l| l.pre);
            Ok(Response::Locs(out))
        }
        FanKind::Count => {
            let mut total = 0u64;
            for part in parts {
                match part {
                    Response::Count(n) => total += n,
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Count part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Count(total))
        }
        FanKind::Max => {
            let mut max = 0u64;
            for part in parts {
                match part {
                    Response::Count(n) => max = max.max(n),
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected MaxPre part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Count(max))
        }
        FanKind::Ok => {
            for part in parts {
                match part {
                    Response::Ok => {}
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected ack part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Ok)
        }
        FanKind::Epochs => {
            let mut epochs = Vec::with_capacity(parts.len());
            for part in parts {
                match part {
                    Response::Count(e) => epochs.push(e),
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Epoch part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Values(epochs))
        }
    }
}

impl<T: Transport + Send> Transport for ShardRouter<T> {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        self.route_one(req)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        self.route_batch(reqs)
    }

    fn stats(&self) -> TransportStats {
        let mut s = TransportStats {
            round_trips: self.waves,
            batches: self.batches,
            batched_requests: self.batched_requests,
            speculative_hits: self.spec_hits,
            // `consumed ≤ issued` is the intended invariant (an entry can
            // only be consumed after its prefetch was issued, and cache
            // clears drop entries without touching either counter), but
            // `stats()` must never panic in release builds if a future
            // lifecycle change breaks it — saturate instead of wrapping to
            // an absurd ~u64::MAX figure.
            speculative_wasted: self.spec_issued.saturating_sub(self.spec_consumed),
            // Traffic of transports retired by a reshard.
            ..self.carry
        };
        for t in &self.transports {
            let u = t.stats();
            s.bytes_sent += u.bytes_sent;
            s.bytes_received += u.bytes_received;
            s.shard_dispatches += u.round_trips;
            s.hedged_wins += u.hedged_wins;
            s.straggler_ms += u.straggler_ms;
        }
        s
    }

    fn set_call_budget(&mut self, budget: Option<std::time::Duration>) {
        for t in self.transports.iter_mut() {
            t.set_call_budget(budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn router(shards: u32) -> ShardRouter<LocalTransport> {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
        ShardRouter::local(server)
    }

    fn locs(resp: Response) -> Vec<u32> {
        match resp {
            Response::Locs(ls) => ls.iter().map(|l| l.pre).collect(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structure_queries_merge_across_shards() {
        for shards in [1u32, 2, 4] {
            let mut r = router(shards);
            match r.call(&Request::Root).unwrap() {
                Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1, "{shards} shards"),
                other => panic!("{other:?}"),
            }
            assert_eq!(
                locs(r.call(&Request::Children { pre: 1 }).unwrap()),
                vec![2, 5, 7],
                "{shards} shards"
            );
            let root = Loc {
                pre: 1,
                post: 9,
                parent: 0,
            };
            assert_eq!(
                locs(r.call(&Request::Descendants { loc: root }).unwrap()),
                vec![2, 3, 4, 5, 6, 7, 8, 9],
                "{shards} shards"
            );
            match r.call(&Request::Count).unwrap() {
                Response::Count(9) => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn eval_many_scatters_back_in_request_order() {
        let mut single = router(1);
        let mut sharded = router(4);
        let req = Request::EvalMany {
            pres: vec![9, 1, 4, 2, 8, 3],
            point: 17,
        };
        let a = match single.call(&req).unwrap() {
            Response::Values(vs) => vs,
            other => panic!("{other:?}"),
        };
        let b = match sharded.call(&req).unwrap() {
            Response::Values(vs) => vs,
            other => panic!("{other:?}"),
        };
        assert_eq!(a, b, "values must align with the request order");
        // The sharded call was still one logical round trip.
        assert_eq!(sharded.stats().round_trips, 1);
        assert!(sharded.stats().shard_dispatches >= 2, "work was split");
    }

    #[test]
    fn batched_waves_count_one_round_trip() {
        let mut r = router(2);
        let reqs = vec![
            Request::Children { pre: 1 },
            Request::Children { pre: 2 },
            Request::Children { pre: 7 },
            Request::GetLoc { pre: 4 },
        ];
        let resps = r.call_batch(&reqs).unwrap();
        assert_eq!(resps.len(), 4);
        assert_eq!(locs(resps[0].clone()), vec![2, 5, 7]);
        assert_eq!(locs(resps[1].clone()), vec![3]);
        assert_eq!(locs(resps[2].clone()), vec![8]);
        assert!(matches!(&resps[3], Response::MaybeLoc(Some(l)) if l.pre == 4));
        let s = r.stats();
        assert_eq!(s.round_trips, 1, "one wave for the whole frontier");
        assert!(s.batches >= 1);
        assert!(s.batched_requests >= 4);
    }

    #[test]
    fn merged_cursors_stream_in_document_order() {
        for shards in [1u32, 2, 4] {
            let mut r = router(shards);
            let cursor = match r
                .call(&Request::OpenChildrenCursor { pres: vec![1, 2] })
                .unwrap()
            {
                Response::Cursor(c) => c,
                other => panic!("{other:?}"),
            };
            let mut pres = Vec::new();
            loop {
                match r.call(&Request::Next { cursor }).unwrap() {
                    Response::MaybeLoc(Some(l)) => pres.push(l.pre),
                    Response::MaybeLoc(None) => break,
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(pres, vec![2, 3, 5, 7], "{shards} shards");
            // Drained merge cursor is gone, like the server's.
            assert!(matches!(
                r.call(&Request::Next { cursor }).unwrap(),
                Response::Err(_)
            ));
        }
    }

    #[test]
    fn close_cursor_releases_every_shard() {
        let mut r = router(4);
        let cursor = match r
            .call(&Request::OpenChildrenCursor { pres: vec![1] })
            .unwrap()
        {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            r.call(&Request::CloseCursor { cursor }).unwrap(),
            Response::Ok
        );
        for server in r.servers() {
            assert_eq!(server.open_cursors(), 0, "abandoned per-shard cursor");
        }
    }

    #[test]
    fn speculation_serves_children_without_a_wave() {
        for shards in [1u32, 2, 4] {
            let mut plain = router(shards);
            let mut spec = router(shards);
            spec.set_speculation(true);
            assert!(spec.speculation());
            // Wave k: test a frontier. The speculative router piggybacks
            // children prefetches on the same wave.
            let eval = Request::EvalMany {
                pres: vec![1, 2, 5, 7],
                point: 17,
            };
            let a = plain.call(&eval).unwrap();
            let b = spec.call(&eval).unwrap();
            assert_eq!(a, b, "speculation is invisible in answers");
            // Wave k+1: expand the (here: whole) frontier. The speculative
            // router answers from cache — zero additional round trips.
            let waves_before = spec.stats().round_trips;
            for pre in [1u32, 2, 5, 7] {
                let a = plain.call(&Request::Children { pre }).unwrap();
                let b = spec.call(&Request::Children { pre }).unwrap();
                assert_eq!(a, b, "pre={pre} S={shards}");
            }
            assert_eq!(
                spec.stats().round_trips,
                waves_before,
                "cached expansion must not cost waves (S={shards})"
            );
            let s = spec.stats();
            assert_eq!(s.speculative_hits, 4);
            assert_eq!(s.speculative_wasted, 0, "every prefetch was consumed");
            assert!(plain.stats().round_trips > spec.stats().round_trips);
        }
    }

    #[test]
    fn unconsumed_prefetches_count_as_wasted() {
        let mut r = router(2);
        r.set_speculation(true);
        r.call(&Request::EvalMany {
            pres: vec![1, 2],
            point: 17,
        })
        .unwrap();
        // The frontier "diverges": no children request ever arrives.
        let s = r.stats();
        assert_eq!(s.speculative_hits, 0);
        assert_eq!(s.speculative_wasted, 2);
        // …but a later wave may still consume them: not monotonic.
        r.call(&Request::Children { pre: 1 }).unwrap();
        let s = r.stats();
        assert_eq!(s.speculative_hits, 1);
        assert_eq!(s.speculative_wasted, 1);
    }

    #[test]
    fn speculation_never_creates_a_wave() {
        let mut r = router(2);
        r.set_speculation(true);
        // An empty item list is answered without touching any shard; the
        // speculative router must not turn that into a physical wave.
        let before = r.stats().round_trips;
        assert_eq!(
            r.call(&Request::EvalMany {
                pres: vec![],
                point: 3
            })
            .unwrap(),
            Response::Values(vec![])
        );
        assert_eq!(r.stats().round_trips, before);
    }

    #[test]
    fn disabling_speculation_clears_the_cache() {
        let mut r = router(2);
        r.set_speculation(true);
        r.call(&Request::EvalMany {
            pres: vec![1],
            point: 17,
        })
        .unwrap();
        r.set_speculation(false);
        let before = r.stats().round_trips;
        r.call(&Request::Children { pre: 1 }).unwrap();
        assert_eq!(r.stats().round_trips, before + 1, "no cache, real wave");
        assert_eq!(r.stats().speculative_hits, 0);
    }

    /// Resharding mid-speculation drops the prefetch cache; the accounting
    /// must stay `consumed ≤ issued` (never an underflowing `wasted`) across
    /// the clear and keep making sense once speculation resumes on the new
    /// fleet.
    #[test]
    fn reshard_mid_speculation_keeps_wasted_accounting_sane() {
        let mut r = router(2);
        r.set_speculation(true);
        // Issue two prefetches, consume one.
        r.call(&Request::EvalMany {
            pres: vec![1, 2],
            point: 17,
        })
        .unwrap();
        r.call(&Request::Children { pre: 1 }).unwrap();
        let s = r.stats();
        assert_eq!((s.speculative_hits, s.speculative_wasted), (1, 1));
        // Reshard with one prefetch still unconsumed: it stays wasted, and
        // nothing wraps around.
        r.reshard(3).unwrap();
        let s = r.stats();
        assert_eq!((s.speculative_hits, s.speculative_wasted), (1, 1));
        assert!(s.speculative_wasted < 1 << 32, "no underflow wrap");
        // Speculation keeps working on the new fleet; the re-issued
        // prefetches are consumable and only the reshard-dropped one stays
        // wasted for good.
        r.call(&Request::EvalMany {
            pres: vec![1, 2],
            point: 17,
        })
        .unwrap();
        for pre in [1u32, 2] {
            r.call(&Request::Children { pre }).unwrap();
        }
        let s = r.stats();
        assert_eq!((s.speculative_hits, s.speculative_wasted), (3, 1));
    }

    #[test]
    fn reshard_in_place_preserves_answers_and_counters() {
        let mut r = router(1);
        let before_children = locs(r.call(&Request::Children { pre: 1 }).unwrap());
        let bytes_before = r.stats().bytes_sent;
        assert!(bytes_before > 0);
        for shards in [4u32, 2, 1, 3] {
            r.reshard(shards).unwrap();
            assert_eq!(r.spec().shards(), shards);
            assert_eq!(
                locs(r.call(&Request::Children { pre: 1 }).unwrap()),
                before_children,
                "S={shards}"
            );
            match r.call(&Request::Count).unwrap() {
                Response::Count(9) => {}
                other => panic!("{other:?}"),
            }
        }
        assert!(
            r.stats().bytes_sent > bytes_before,
            "byte counters must survive re-sharding, not reset"
        );
    }

    #[test]
    fn reshard_invalidates_open_cursors_explicitly() {
        let mut r = router(2);
        let cursor = match r
            .call(&Request::OpenChildrenCursor { pres: vec![1] })
            .unwrap()
        {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        r.reshard(3).unwrap();
        assert!(
            matches!(r.call(&Request::Next { cursor }).unwrap(), Response::Err(_)),
            "stale cursor surfaces as an error, not a wrong answer"
        );
        // The new fleet holds no leaked per-shard cursors.
        for server in r.servers() {
            assert_eq!(server.open_cursors(), 0);
        }
    }

    /// A refused repartition (here: the same rows on both shards, which
    /// cannot coexist in one partition) must leave the router fully wired —
    /// not an empty-transport husk that panics on the next call.
    #[test]
    fn failed_reshard_leaves_the_router_usable() {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        let f1 = ServerFilter::new(out.table.clone(), out.ring.clone());
        let f2 = ServerFilter::new(out.table, out.ring);
        let server = ShardedServer::from_filters(ShardSpec::new(2), vec![f1, f2]);
        let mut r = ShardRouter::local(server);
        assert!(r.reshard(1).is_err(), "duplicate pres must refuse");
        assert_eq!(r.spec().shards(), 2, "original fleet restored");
        // The router still routes: the fanned count sums both shards.
        match r.call(&Request::Count).unwrap() {
            Response::Count(18) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reshard_request_through_a_router_is_refused() {
        let mut r = router(2);
        assert!(matches!(
            r.call(&Request::Reshard { shards: 4 }).unwrap(),
            Response::Err(_)
        ));
    }

    #[test]
    fn suggest_shards_scales_with_observed_load() {
        let mut r = router(2);
        // No traffic: keep the current fleet.
        assert_eq!(r.suggest_shards_for_target(1024), 2);
        // Generate some traffic, then ask with a tiny budget: grow.
        for _ in 0..20 {
            r.call(&Request::EvalMany {
                pres: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
                point: 17,
            })
            .unwrap();
        }
        let grown = r.suggest_shards_for_target(64);
        assert!(grown > 2, "heavy load must suggest growth, got {grown}");
        assert!(grown <= MAX_SUGGESTED_SHARDS);
        // A huge budget suggests shrinking to a single shard.
        assert_eq!(r.suggest_shards_for_target(u64::MAX), 1);
    }

    /// The boundary cases of the auto-tuner: a zero budget clamps to one
    /// byte instead of dividing by zero, an absurd budget pressure saturates
    /// at [`MAX_SUGGESTED_SHARDS`] instead of overflowing, the suggestion
    /// never drops below one shard, and load *skew* (all traffic on one
    /// shard) is costed as if every shard could attract the busiest
    /// shard's load — strictly more shards than the balanced mean implies.
    #[test]
    fn suggest_shards_boundaries() {
        let mut r = router(2);
        // Zero budget behaves exactly like a 1-byte budget (the documented
        // clamp), and with traffic observed both saturate at the cap.
        assert_eq!(r.suggest_shards_for_target(0), 2, "no traffic: keep");
        for _ in 0..4 {
            r.call(&Request::EvalMany {
                pres: vec![1, 2, 3, 4, 5, 6],
                point: 17,
            })
            .unwrap();
        }
        assert_eq!(
            r.suggest_shards_for_target(0),
            r.suggest_shards_for_target(1)
        );
        assert_eq!(r.suggest_shards_for_target(0), MAX_SUGGESTED_SHARDS);
        // Floor: even when the busiest shard fits many times over, the
        // suggestion is a fleet of one, never zero.
        assert_eq!(r.suggest_shards_for_target(u64::MAX), 1);

        // Skew: route traffic at a *single* pre so one shard takes it all.
        let mut skewed = router(2);
        for _ in 0..8 {
            skewed
                .call(&Request::EvalMany {
                    pres: vec![1, 1, 1, 1],
                    point: 17,
                })
                .unwrap();
        }
        let loads: Vec<u64> = skewed
            .transports()
            .iter()
            .map(|t| {
                let s = t.stats();
                s.bytes_sent + s.bytes_received
            })
            .collect();
        let busiest = *loads.iter().max().unwrap();
        let total: u64 = loads.iter().sum();
        assert!(busiest > total - busiest, "traffic must actually skew");
        // Pick a budget between the balanced mean and the busiest shard:
        // the conservative costing must suggest growth where a
        // total-divided-evenly estimate would keep the fleet as-is.
        let budget = total.div_ceil(2);
        assert!(budget < busiest);
        let suggested = skewed.suggest_shards_for_target(budget);
        let balanced = total.div_ceil(budget).max(1) as u32;
        assert!(
            suggested > balanced.min(2),
            "skew must push past the balanced estimate: got {suggested}, balanced {balanced}"
        );
    }

    /// Valid packed share bytes in the router's ring.
    fn share_bytes(r: &ShardRouter<LocalTransport>, fill: u64) -> Vec<u8> {
        let ring = r.servers().next().unwrap().ring().clone();
        let q = ring.field().order();
        let mut x = fill | 1;
        let coeffs = (0..ring.len())
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect();
        ssx_poly::Packer::new(&ring).pack_radix(&ring.poly_from_coeffs(coeffs).unwrap())
    }

    fn root_loc(pre: u32) -> Loc {
        Loc {
            pre,
            post: pre,
            parent: 0,
        }
    }

    #[test]
    fn writes_route_to_owning_shards_and_merge() {
        for shards in [1u32, 2, 4] {
            let mut r = router(shards);
            let rows: Vec<(Loc, Vec<u8>)> = (10u32..13)
                .map(|pre| (root_loc(pre), share_bytes(&r, pre as u64)))
                .collect();
            match r.call(&Request::Insert { rows }).unwrap() {
                Response::Count(3) => {}
                other => panic!("{other:?} (S={shards})"),
            }
            match r.call(&Request::Count).unwrap() {
                Response::Count(12) => {}
                other => panic!("{other:?} (S={shards})"),
            }
            match r.call(&Request::MaxPre).unwrap() {
                Response::Count(12) => {}
                other => panic!("{other:?} (S={shards})"),
            }
            // Reads still merge correctly after the write.
            assert_eq!(
                locs(r.call(&Request::Children { pre: 1 }).unwrap()),
                vec![2, 5, 7],
                "S={shards}"
            );
            // Delete splits by shard too; the missing pre costs nothing.
            match r
                .call(&Request::Delete {
                    pres: vec![10, 11, 12, 99],
                })
                .unwrap()
            {
                Response::Count(3) => {}
                other => panic!("{other:?} (S={shards})"),
            }
            match r.call(&Request::Count).unwrap() {
                Response::Count(9) => {}
                other => panic!("{other:?} (S={shards})"),
            }
        }
    }

    /// A multi-shard insert where one shard refuses must not survive as a
    /// half document: the rows other shards applied are deleted again.
    #[test]
    fn partial_insert_failure_compensates_applied_shards() {
        let mut r = router(2);
        let rows = vec![
            // Fresh row on shard (10-1)%2 = 1: applies.
            (root_loc(10), share_bytes(&r, 1)),
            // Duplicate of an existing pre on shard 0: refused.
            (root_loc(1), share_bytes(&r, 2)),
        ];
        match r.call(&Request::Insert { rows }).unwrap() {
            Response::Err(msg) => assert!(msg.contains("insert pre=1"), "{msg}"),
            other => panic!("{other:?}"),
        }
        match r.call(&Request::Count).unwrap() {
            Response::Count(9) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(
            r.call(&Request::GetLoc { pre: 10 }).unwrap(),
            Response::MaybeLoc(None),
            "compensated row must be gone"
        );
    }

    #[test]
    fn writes_invalidate_router_cursors_and_prefetches() {
        let mut r = router(2);
        r.set_speculation(true);
        let cursor = match r
            .call(&Request::OpenChildrenCursor { pres: vec![1] })
            .unwrap()
        {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        // Prefetch children of 1 into the cache.
        r.call(&Request::EvalMany {
            pres: vec![1],
            point: 17,
        })
        .unwrap();
        let row = (root_loc(20), share_bytes(&r, 3));
        assert_eq!(
            r.call(&Request::Insert { rows: vec![row] }).unwrap(),
            Response::Count(1)
        );
        // The merged cursor died with the write — explicit error, no stale
        // stream.
        assert!(matches!(
            r.call(&Request::Next { cursor }).unwrap(),
            Response::Err(_)
        ));
        // And the prefetched children list was dropped: answering costs a
        // real wave, not a cache hit.
        let hits_before = r.stats().speculative_hits;
        r.call(&Request::Children { pre: 1 }).unwrap();
        assert_eq!(r.stats().speculative_hits, hits_before);
    }

    #[test]
    fn errors_surface_not_panic() {
        let mut r = router(2);
        assert!(matches!(
            r.call(&Request::Eval { pre: 999, point: 3 }).unwrap(),
            Response::Err(_)
        ));
        assert!(matches!(
            r.call(&Request::EvalMany {
                pres: vec![1, 999],
                point: 3
            })
            .unwrap(),
            Response::Err(_)
        ));
        // Empty item lists cost nothing and still answer.
        assert_eq!(
            r.call(&Request::EvalMany {
                pres: vec![],
                point: 3
            })
            .unwrap(),
            Response::Values(vec![])
        );
    }
}
