//! The shard-aware, batch-first transport: [`ShardRouter`].
//!
//! A router owns one [`Transport`] per shard and presents the whole fleet as
//! a single [`Transport`]: engines and the [`crate::client::ClientFilter`]
//! stay shard-oblivious. Per logical round trip (a *wave*) the router
//!
//! 1. **splits** every sub-request by the deterministic `pre → shard`
//!    partition ([`ShardSpec::shard_of`]): point requests (`GetLoc`, `Eval`)
//!    go to the owning shard, item-list requests (`EvalMany`, `GetPolys`)
//!    are split into per-shard sublists, and structure requests (`Root`,
//!    `Children`, `Descendants`, `Count`) fan out to every shard;
//! 2. **dispatches** at most one frame per shard — many sub-requests for
//!    the same shard collapse into one [`Request::Batch`] — concurrently on
//!    threads for socket transports, or as a sequential loop for in-process
//!    ones;
//! 3. **merges** the answers back in document order: split item lists are
//!    scattered to their original positions, fanned location lists are
//!    k-way merged by `pre` (shards hold disjoint `pre` sets, so the merge
//!    reproduces the unsharded answer exactly).
//!
//! Cursors (the §5.2 `nextNode()` pipeline) keep working over shards: the
//! router opens one cursor per shard, holds one look-ahead head per stream,
//! and answers each `Next` with the minimum-`pre` head — the same document
//! order a single server streams, at one wave per node.

use crate::error::CoreError;
use crate::protocol::{Request, Response};
use crate::server::ServerFilter;
use crate::shard::{ShardSpec, ShardedServer};
use crate::transport::{LocalTransport, TcpTransport, Transport, TransportStats};
use ssx_store::Loc;
use std::collections::HashMap;
use std::net::ToSocketAddrs;

/// How the answers of one original request are reassembled from per-shard
/// sub-responses.
enum Slot {
    /// Answer produced without touching any shard (e.g. an empty item list).
    Ready(Response),
    /// The request went verbatim to one shard.
    Single { shard: usize, pos: usize },
    /// An item-list request was split; each part remembers which original
    /// item indices it carries.
    Split {
        kind: SplitKind,
        total_items: usize,
        parts: Vec<(usize, usize, Vec<usize>)>,
    },
    /// The request was sent to every shard; `positions[s]` is its slot in
    /// shard `s`'s frame.
    Fan {
        kind: FanKind,
        positions: Vec<usize>,
    },
}

#[derive(Clone, Copy)]
enum SplitKind {
    /// `EvalMany` → `Values`, scattered by item index.
    Values,
    /// `GetPolys` → `Polys`, scattered by item index.
    Polys,
}

#[derive(Clone, Copy)]
enum FanKind {
    /// `Root`: at most one shard answers `Some`.
    Root,
    /// `Children`/`Descendants`: disjoint sorted lists, merged by `pre`.
    Locs,
    /// `Count`: summed.
    Count,
    /// `Shutdown` and friends: every shard must ack.
    Ok,
}

/// One per-shard cursor stream of a merged cursor, with one look-ahead head.
struct ShardStream {
    cursor: u32,
    head: Loc,
}

/// A router-level cursor: the live per-shard streams (index = shard).
struct MergeCursor {
    streams: Vec<Option<ShardStream>>,
}

/// The shard-aware batch-first transport (see the module docs).
pub struct ShardRouter<T: Transport> {
    spec: ShardSpec,
    transports: Vec<T>,
    /// Wrap per-shard frames in [`Request::ToShard`]. Socket endpoints need
    /// the tag (the host routes on it); local transports are positional.
    tag_frames: bool,
    /// Dispatch per-shard frames on scoped threads instead of a sequential
    /// loop. On for TCP, off for in-process transports.
    concurrent: bool,
    waves: u64,
    batches: u64,
    batched_requests: u64,
    cursors: HashMap<u32, MergeCursor>,
    next_cursor: u32,
}

impl ShardRouter<LocalTransport> {
    /// Routes to in-process shards: one [`LocalTransport`] per filter of
    /// `server`, sequential dispatch (there is no I/O to overlap).
    pub fn local(server: ShardedServer) -> Self {
        let spec = server.spec();
        let transports = server
            .into_filters()
            .into_iter()
            .map(LocalTransport::new)
            .collect();
        ShardRouter::new(spec, transports, false, false)
    }

    /// Read access to the per-shard servers (stats, table sizes).
    pub fn servers(&self) -> impl Iterator<Item = &ServerFilter> {
        self.transports.iter().map(|t| t.server())
    }

    /// Mutable access to the per-shard servers (stat resets in benches).
    pub fn servers_mut(&mut self) -> impl Iterator<Item = &mut ServerFilter> {
        self.transports.iter_mut().map(|t| t.server_mut())
    }
}

impl ShardRouter<TcpTransport> {
    /// Connects one socket per shard to a [`crate::transport::serve_tcp_sharded`]
    /// endpoint; frames are shard-tagged and dispatched concurrently.
    ///
    /// The first connection performs the [`Request::ShardCount`] handshake:
    /// a shard count that disagrees with the server's is refused here —
    /// routing by the wrong partition would silently drop every row on the
    /// unreached shards. `shards = 1` skips the tags, so it also speaks to
    /// a legacy single-filter [`crate::transport::serve_tcp`] endpoint
    /// (which answers the handshake with 1 itself).
    pub fn connect<A: ToSocketAddrs + Copy>(addr: A, shards: u32) -> Result<Self, CoreError> {
        let spec = ShardSpec::new(shards);
        let mut transports = (0..spec.shards())
            .map(|_| TcpTransport::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        match transports[0].call(&Request::ShardCount)? {
            Response::Count(n) if n == spec.shards() as u64 => {}
            Response::Count(n) => {
                return Err(CoreError::Transport(format!(
                    "server partitions across {n} shard(s) but the client asked for {}; \
                     reconnect with the server's shard count",
                    spec.shards()
                )))
            }
            other => {
                return Err(CoreError::Transport(format!(
                    "unexpected shard-count handshake response {other:?}"
                )))
            }
        }
        Ok(ShardRouter::new(spec, transports, spec.shards() > 1, true))
    }
}

impl<T: Transport + Send> ShardRouter<T> {
    /// Wires a router over explicit per-shard transports.
    pub fn new(spec: ShardSpec, transports: Vec<T>, tag_frames: bool, concurrent: bool) -> Self {
        assert_eq!(spec.shards() as usize, transports.len());
        ShardRouter {
            spec,
            transports,
            tag_frames,
            concurrent,
            waves: 0,
            batches: 0,
            batched_requests: 0,
            cursors: HashMap::new(),
            next_cursor: 1,
        }
    }

    /// The partition spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Per-shard traffic counters (physical sends, bytes per shard).
    pub fn shard_stats(&self) -> Vec<TransportStats> {
        self.transports.iter().map(|t| t.stats()).collect()
    }

    /// The underlying per-shard transports.
    pub fn transports(&self) -> &[T] {
        &self.transports
    }

    /// Mutable access to the underlying transports.
    pub fn transports_mut(&mut self) -> &mut [T] {
        &mut self.transports
    }

    fn shard_of(&self, pre: u32) -> usize {
        self.spec.shard_of(pre) as usize
    }

    /// Sends one frame per shard with work queued (batching multi-request
    /// shards), one wave. Returns per-shard response lists parallel to
    /// `per_shard`.
    fn dispatch(&mut self, per_shard: Vec<Vec<Request>>) -> Result<Vec<Vec<Response>>, CoreError> {
        debug_assert_eq!(per_shard.len(), self.transports.len());
        if per_shard.iter().all(|v| v.is_empty()) {
            return Ok(per_shard.into_iter().map(|_| Vec::new()).collect());
        }
        self.waves += 1;
        let tag = self.tag_frames;
        // Build the outgoing frame per shard.
        let mut frames: Vec<Option<(Request, usize)>> = Vec::with_capacity(per_shard.len());
        for (shard, reqs) in per_shard.into_iter().enumerate() {
            if reqs.is_empty() {
                frames.push(None);
                continue;
            }
            let expected = reqs.len();
            let mut frame = if expected == 1 {
                reqs.into_iter().next().expect("one request")
            } else {
                self.batches += 1;
                self.batched_requests += expected as u64;
                Request::Batch(reqs)
            };
            if tag {
                frame = Request::ToShard {
                    shard: shard as u32,
                    req: Box::new(frame),
                };
            }
            frames.push(Some((frame, expected)));
        }
        // Dispatch: scoped threads overlap the socket round trips; the
        // sequential loop is the right shape for in-process shards.
        let results: Vec<Option<Result<Response, CoreError>>> = if self.concurrent {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .transports
                    .iter_mut()
                    .zip(&frames)
                    .map(|(t, f)| {
                        f.as_ref()
                            .map(|(frame, _)| scope.spawn(move || t.call(frame)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("shard dispatch thread")))
                    .collect()
            })
        } else {
            self.transports
                .iter_mut()
                .zip(&frames)
                .map(|(t, f)| f.as_ref().map(|(frame, _)| t.call(frame)))
                .collect()
        };
        // Unwrap batch envelopes back into per-shard response lists.
        let mut out = Vec::with_capacity(results.len());
        for (res, frame) in results.into_iter().zip(frames) {
            match (res, frame) {
                (None, _) => out.push(Vec::new()),
                (Some(res), Some((_, expected))) => {
                    let resp = res?;
                    if expected == 1 {
                        out.push(vec![resp]);
                    } else {
                        out.push(crate::transport::unwrap_batch(resp, expected)?);
                    }
                }
                (Some(_), None) => unreachable!("response without a frame"),
            }
        }
        Ok(out)
    }

    /// Splits `reqs` by shard, dispatches one wave, merges the answers back
    /// in request order. Cursor requests need router-held merge state and
    /// are answered through it (each is its own wave).
    fn route_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        if reqs.iter().any(|r| {
            matches!(
                r,
                Request::OpenChildrenCursor { .. }
                    | Request::OpenDescendantsCursor { .. }
                    | Request::Next { .. }
                    | Request::CloseCursor { .. }
            )
        }) {
            return reqs.iter().map(|r| self.route_one(r)).collect();
        }
        let shards = self.transports.len();
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); shards];
        let mut slots: Vec<Slot> = Vec::with_capacity(reqs.len());
        for req in reqs {
            slots.push(self.plan(req, &mut per_shard));
        }
        let mut responses = self.dispatch(per_shard)?;
        slots
            .into_iter()
            .map(|slot| merge_slot(slot, &mut responses))
            .collect()
    }

    /// Routes one request that is not a cursor operation.
    fn plan(&self, req: &Request, per_shard: &mut [Vec<Request>]) -> Slot {
        match req {
            Request::GetLoc { pre } | Request::Eval { pre, .. } => {
                let shard = self.shard_of(*pre);
                let pos = per_shard[shard].len();
                per_shard[shard].push(req.clone());
                Slot::Single { shard, pos }
            }
            Request::EvalMany { pres, point } => {
                let parts = self.split_items(pres, per_shard, |sub| Request::EvalMany {
                    pres: sub,
                    point: *point,
                });
                Slot::Split {
                    kind: SplitKind::Values,
                    total_items: pres.len(),
                    parts,
                }
            }
            Request::GetPolys { pres } => {
                let parts =
                    self.split_items(pres, per_shard, |sub| Request::GetPolys { pres: sub });
                Slot::Split {
                    kind: SplitKind::Polys,
                    total_items: pres.len(),
                    parts,
                }
            }
            Request::Root => self.fan(req, FanKind::Root, per_shard),
            Request::Children { .. } | Request::Descendants { .. } => {
                self.fan(req, FanKind::Locs, per_shard)
            }
            Request::Count => self.fan(req, FanKind::Count, per_shard),
            Request::Shutdown => self.fan(req, FanKind::Ok, per_shard),
            // The router *is* the sharded endpoint from its client's view.
            Request::ShardCount => Slot::Ready(Response::Count(self.spec.shards() as u64)),
            Request::Batch(_) | Request::ToShard { .. } => Slot::Ready(Response::Err(
                "routers build their own envelopes; send plain requests".into(),
            )),
            Request::OpenChildrenCursor { .. }
            | Request::OpenDescendantsCursor { .. }
            | Request::Next { .. }
            | Request::CloseCursor { .. } => {
                unreachable!("cursor requests are answered by the merge-cursor path")
            }
        }
    }

    /// Groups `pres` by owning shard, queueing one sub-request per shard
    /// with items; records original item indices for the scatter.
    fn split_items(
        &self,
        pres: &[u32],
        per_shard: &mut [Vec<Request>],
        make: impl Fn(Vec<u32>) -> Request,
    ) -> Vec<(usize, usize, Vec<usize>)> {
        let mut grouped: Vec<(Vec<u32>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); per_shard.len()];
        for (i, &pre) in pres.iter().enumerate() {
            let shard = self.shard_of(pre);
            grouped[shard].0.push(pre);
            grouped[shard].1.push(i);
        }
        let mut parts = Vec::new();
        for (shard, (sub, idxs)) in grouped.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let pos = per_shard[shard].len();
            per_shard[shard].push(make(sub));
            parts.push((shard, pos, idxs));
        }
        parts
    }

    fn fan(&self, req: &Request, kind: FanKind, per_shard: &mut [Vec<Request>]) -> Slot {
        let positions = per_shard
            .iter_mut()
            .map(|q| {
                q.push(req.clone());
                q.len() - 1
            })
            .collect();
        Slot::Fan { kind, positions }
    }

    fn route_one(&mut self, req: &Request) -> Result<Response, CoreError> {
        match req {
            Request::OpenChildrenCursor { .. } | Request::OpenDescendantsCursor { .. } => {
                self.open_merge_cursor(req)
            }
            Request::Next { cursor } => self.next_merged(*cursor),
            Request::CloseCursor { cursor } => self.close_merged(*cursor),
            _ => {
                let shards = self.transports.len();
                let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); shards];
                let slot = self.plan(req, &mut per_shard);
                let mut responses = self.dispatch(per_shard)?;
                merge_slot(slot, &mut responses)
            }
        }
    }

    // ---- merged cursors ---------------------------------------------------

    /// Opens one per-shard cursor plus one look-ahead head per stream (two
    /// waves), registering a router-level cursor id.
    fn open_merge_cursor(&mut self, req: &Request) -> Result<Response, CoreError> {
        let shards = self.transports.len();
        let opened = self.dispatch(vec![vec![req.clone()]; shards])?;
        let mut shard_cursors = Vec::with_capacity(shards);
        for resp in opened {
            match resp.into_iter().next() {
                Some(Response::Cursor(c)) => shard_cursors.push(c),
                Some(Response::Err(e)) => return Ok(Response::Err(e)),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected cursor-open response {other:?}"
                    )))
                }
            }
        }
        let heads = self.dispatch(
            shard_cursors
                .iter()
                .map(|&c| vec![Request::Next { cursor: c }])
                .collect(),
        )?;
        let mut streams = Vec::with_capacity(shards);
        for (cursor, resp) in shard_cursors.into_iter().zip(heads) {
            match resp.into_iter().next() {
                Some(Response::MaybeLoc(Some(head))) => {
                    streams.push(Some(ShardStream { cursor, head }))
                }
                // Exhausted immediately; the shard already dropped it.
                Some(Response::MaybeLoc(None)) => streams.push(None),
                Some(Response::Err(e)) => return Ok(Response::Err(e)),
                other => {
                    return Err(CoreError::Transport(format!(
                        "unexpected cursor-head response {other:?}"
                    )))
                }
            }
        }
        let id = self.next_cursor;
        self.next_cursor = self.next_cursor.wrapping_add(1).max(1);
        self.cursors.insert(id, MergeCursor { streams });
        Ok(Response::Cursor(id))
    }

    /// Pops the minimum-`pre` head across the live streams and refills that
    /// stream (one wave to one shard).
    fn next_merged(&mut self, id: u32) -> Result<Response, CoreError> {
        let Some(cursor) = self.cursors.get(&id) else {
            return Ok(Response::Err(format!("no cursor {id}")));
        };
        let Some((shard, _)) = cursor
            .streams
            .iter()
            .enumerate()
            .filter_map(|(s, st)| st.as_ref().map(|st| (s, st.head.pre)))
            .min_by_key(|&(_, pre)| pre)
        else {
            // Every stream drained: mirror the server's auto-close.
            self.cursors.remove(&id);
            return Ok(Response::MaybeLoc(None));
        };
        let shard_cursor = cursor.streams[shard].as_ref().expect("live stream").cursor;
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.transports.len()];
        per_shard[shard].push(Request::Next {
            cursor: shard_cursor,
        });
        let resp = self.dispatch(per_shard)?;
        let refill = match resp
            .into_iter()
            .nth(shard)
            .and_then(|v| v.into_iter().next())
        {
            Some(Response::MaybeLoc(l)) => l,
            Some(Response::Err(e)) => return Ok(Response::Err(e)),
            other => {
                return Err(CoreError::Transport(format!(
                    "unexpected cursor-next response {other:?}"
                )))
            }
        };
        let cursor = self.cursors.get_mut(&id).expect("checked above");
        let stream = cursor.streams[shard].as_mut().expect("live stream");
        let head = stream.head;
        match refill {
            Some(next) => stream.head = next,
            None => cursor.streams[shard] = None,
        }
        Ok(Response::MaybeLoc(Some(head)))
    }

    /// Closes the remaining per-shard cursors (one wave) and drops the
    /// merge state. Unknown ids ack like the server does.
    fn close_merged(&mut self, id: u32) -> Result<Response, CoreError> {
        let Some(cursor) = self.cursors.remove(&id) else {
            return Ok(Response::Ok);
        };
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.transports.len()];
        for (shard, stream) in cursor.streams.into_iter().enumerate() {
            if let Some(stream) = stream {
                per_shard[shard].push(Request::CloseCursor {
                    cursor: stream.cursor,
                });
            }
        }
        self.dispatch(per_shard)?;
        Ok(Response::Ok)
    }
}

/// Reassembles one original request's response from the per-shard lists.
/// Every `(shard, pos)` slot is consumed by exactly one original request,
/// so responses are *moved* out of the lists (polynomial payloads are never
/// copied), leaving `Response::Ok` placeholders behind.
fn merge_slot(slot: Slot, responses: &mut [Vec<Response>]) -> Result<Response, CoreError> {
    match slot {
        Slot::Ready(resp) => Ok(resp),
        Slot::Single { shard, pos } => Ok(take_response(responses, shard, pos)),
        Slot::Split {
            kind,
            total_items,
            parts,
        } => merge_split(kind, total_items, parts, responses),
        Slot::Fan { kind, positions } => merge_fan(kind, positions, responses),
    }
}

/// Moves one per-shard response out of the lists.
fn take_response(responses: &mut [Vec<Response>], shard: usize, pos: usize) -> Response {
    std::mem::replace(&mut responses[shard][pos], Response::Ok)
}

fn merge_split(
    kind: SplitKind,
    total_items: usize,
    parts: Vec<(usize, usize, Vec<usize>)>,
    responses: &mut [Vec<Response>],
) -> Result<Response, CoreError> {
    match kind {
        SplitKind::Values => {
            let mut out = vec![0u64; total_items];
            for (shard, pos, idxs) in parts {
                match take_response(responses, shard, pos) {
                    Response::Values(vs) if vs.len() == idxs.len() => {
                        for (&i, &v) in idxs.iter().zip(&vs) {
                            out[i] = v;
                        }
                    }
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected EvalMany part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Values(out))
        }
        SplitKind::Polys => {
            let mut out = vec![Vec::new(); total_items];
            for (shard, pos, idxs) in parts {
                match take_response(responses, shard, pos) {
                    Response::Polys(ps) if ps.len() == idxs.len() => {
                        for (&i, p) in idxs.iter().zip(ps) {
                            out[i] = p;
                        }
                    }
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected GetPolys part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Polys(out))
        }
    }
}

fn merge_fan(
    kind: FanKind,
    positions: Vec<usize>,
    responses: &mut [Vec<Response>],
) -> Result<Response, CoreError> {
    let parts: Vec<Response> = positions
        .iter()
        .enumerate()
        .map(|(shard, &pos)| take_response(responses, shard, pos))
        .collect();
    match kind {
        FanKind::Root => {
            let mut found = None;
            for part in parts {
                match part {
                    Response::MaybeLoc(Some(l)) => found = Some(l),
                    Response::MaybeLoc(None) => {}
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Root part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::MaybeLoc(found))
        }
        FanKind::Locs => {
            let mut out: Vec<Loc> = Vec::new();
            for part in parts {
                match part {
                    Response::Locs(ls) => out.extend(ls),
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Locs part {other:?}"
                        )))
                    }
                }
            }
            // Shards hold disjoint pre sets: sorting the concatenation is
            // exactly the k-way document-order merge.
            out.sort_by_key(|l| l.pre);
            Ok(Response::Locs(out))
        }
        FanKind::Count => {
            let mut total = 0u64;
            for part in parts {
                match part {
                    Response::Count(n) => total += n,
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected Count part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Count(total))
        }
        FanKind::Ok => {
            for part in parts {
                match part {
                    Response::Ok => {}
                    Response::Err(e) => return Ok(Response::Err(e)),
                    other => {
                        return Err(CoreError::Transport(format!(
                            "unexpected ack part {other:?}"
                        )))
                    }
                }
            }
            Ok(Response::Ok)
        }
    }
}

impl<T: Transport + Send> Transport for ShardRouter<T> {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        self.route_one(req)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        self.route_batch(reqs)
    }

    fn stats(&self) -> TransportStats {
        let mut s = TransportStats {
            round_trips: self.waves,
            batches: self.batches,
            batched_requests: self.batched_requests,
            ..TransportStats::default()
        };
        for t in &self.transports {
            let u = t.stats();
            s.bytes_sent += u.bytes_sent;
            s.bytes_received += u.bytes_received;
            s.shard_dispatches += u.round_trips;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn router(shards: u32) -> ShardRouter<LocalTransport> {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        let server = ShardedServer::from_table(out.table, out.ring, shards).unwrap();
        ShardRouter::local(server)
    }

    fn locs(resp: Response) -> Vec<u32> {
        match resp {
            Response::Locs(ls) => ls.iter().map(|l| l.pre).collect(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structure_queries_merge_across_shards() {
        for shards in [1u32, 2, 4] {
            let mut r = router(shards);
            match r.call(&Request::Root).unwrap() {
                Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1, "{shards} shards"),
                other => panic!("{other:?}"),
            }
            assert_eq!(
                locs(r.call(&Request::Children { pre: 1 }).unwrap()),
                vec![2, 5, 7],
                "{shards} shards"
            );
            let root = Loc {
                pre: 1,
                post: 9,
                parent: 0,
            };
            assert_eq!(
                locs(r.call(&Request::Descendants { loc: root }).unwrap()),
                vec![2, 3, 4, 5, 6, 7, 8, 9],
                "{shards} shards"
            );
            match r.call(&Request::Count).unwrap() {
                Response::Count(9) => {}
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn eval_many_scatters_back_in_request_order() {
        let mut single = router(1);
        let mut sharded = router(4);
        let req = Request::EvalMany {
            pres: vec![9, 1, 4, 2, 8, 3],
            point: 17,
        };
        let a = match single.call(&req).unwrap() {
            Response::Values(vs) => vs,
            other => panic!("{other:?}"),
        };
        let b = match sharded.call(&req).unwrap() {
            Response::Values(vs) => vs,
            other => panic!("{other:?}"),
        };
        assert_eq!(a, b, "values must align with the request order");
        // The sharded call was still one logical round trip.
        assert_eq!(sharded.stats().round_trips, 1);
        assert!(sharded.stats().shard_dispatches >= 2, "work was split");
    }

    #[test]
    fn batched_waves_count_one_round_trip() {
        let mut r = router(2);
        let reqs = vec![
            Request::Children { pre: 1 },
            Request::Children { pre: 2 },
            Request::Children { pre: 7 },
            Request::GetLoc { pre: 4 },
        ];
        let resps = r.call_batch(&reqs).unwrap();
        assert_eq!(resps.len(), 4);
        assert_eq!(locs(resps[0].clone()), vec![2, 5, 7]);
        assert_eq!(locs(resps[1].clone()), vec![3]);
        assert_eq!(locs(resps[2].clone()), vec![8]);
        assert!(matches!(&resps[3], Response::MaybeLoc(Some(l)) if l.pre == 4));
        let s = r.stats();
        assert_eq!(s.round_trips, 1, "one wave for the whole frontier");
        assert!(s.batches >= 1);
        assert!(s.batched_requests >= 4);
    }

    #[test]
    fn merged_cursors_stream_in_document_order() {
        for shards in [1u32, 2, 4] {
            let mut r = router(shards);
            let cursor = match r
                .call(&Request::OpenChildrenCursor { pres: vec![1, 2] })
                .unwrap()
            {
                Response::Cursor(c) => c,
                other => panic!("{other:?}"),
            };
            let mut pres = Vec::new();
            loop {
                match r.call(&Request::Next { cursor }).unwrap() {
                    Response::MaybeLoc(Some(l)) => pres.push(l.pre),
                    Response::MaybeLoc(None) => break,
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(pres, vec![2, 3, 5, 7], "{shards} shards");
            // Drained merge cursor is gone, like the server's.
            assert!(matches!(
                r.call(&Request::Next { cursor }).unwrap(),
                Response::Err(_)
            ));
        }
    }

    #[test]
    fn close_cursor_releases_every_shard() {
        let mut r = router(4);
        let cursor = match r
            .call(&Request::OpenChildrenCursor { pres: vec![1] })
            .unwrap()
        {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            r.call(&Request::CloseCursor { cursor }).unwrap(),
            Response::Ok
        );
        for server in r.servers() {
            assert_eq!(server.open_cursors(), 0, "abandoned per-shard cursor");
        }
    }

    #[test]
    fn errors_surface_not_panic() {
        let mut r = router(2);
        assert!(matches!(
            r.call(&Request::Eval { pre: 999, point: 3 }).unwrap(),
            Response::Err(_)
        ));
        assert!(matches!(
            r.call(&Request::EvalMany {
                pres: vec![1, 999],
                point: 3
            })
            .unwrap(),
            Response::Err(_)
        ));
        // Empty item lists cost nothing and still answer.
        assert_eq!(
            r.call(&Request::EvalMany {
                pres: vec![],
                point: 3
            })
            .unwrap(),
            Response::Values(vec![])
        );
    }
}
