//! The two query engines (§5.3) and the two matching rules (§6.3).
//!
//! * [`SimpleEngine`] parses the query left to right. Each step expands the
//!   candidate set (children for `/`, all descendants for `//`) and filters
//!   it with one test per node. No look-ahead: a `//` step enumerates every
//!   descendant ("this step is quite expensive in terms of execution time").
//! * [`AdvancedEngine`] walks the tree top-down, taking "the whole remaining
//!   query into account": before and after each step it tests containment of
//!   *all remaining query names*, abandoning dead branches early; `//` steps
//!   run a pruned DFS instead of a full enumeration.
//! * [`MatchRule::Containment`] (non-strict): one evaluation per test; a
//!   node passes when its *subtree contains* the tag — cheap but inexact.
//! * [`MatchRule::Equality`] (strict): polynomial reconstruction + division;
//!   a node passes only when *it is* the tag — exact but expensive.
//!
//! For a fixed rule, both engines return identical result sets (the
//! advanced engine only prunes branches that cannot contribute); this
//! invariant is property-tested. Fig 5 compares their evaluation counts,
//! Fig 6 their wall-clock times under both rules, Fig 7 the accuracy of
//! containment vs equality results.

use crate::client::{ClientFilter, ClientStats};
use crate::error::CoreError;
use crate::transport::Transport;
use ssx_store::Loc;
use ssx_xpath::{Axis, NodeTest, Query, Step};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Non-strict (containment) vs strict (equality) node matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchRule {
    /// One evaluation per test; passes when the subtree contains the tag.
    Containment,
    /// Reconstruction + division; passes when the node is the tag.
    Equality,
}

/// Which engine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Left-to-right, no look-ahead.
    Simple,
    /// Top-down with look-ahead pruning.
    Advanced,
}

/// Cost metrics for one query run (deltas of client + transport counters).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryStats {
    /// Containment tests (each = 1 client + 1 server evaluation).
    pub containment_tests: u64,
    /// Equality tests (each = reconstructions + a division).
    pub equality_tests: u64,
    /// Client-share evaluations.
    pub client_evals: u64,
    /// Server-share evaluations.
    pub server_evals: u64,
    /// Full polynomials transferred for equality tests.
    pub polys_fetched: u64,
    /// Client-share cache hits (0 when the cache is disabled).
    pub share_cache_hits: u64,
    /// Client-share cache misses (0 when the cache is disabled).
    pub share_cache_misses: u64,
    /// Client-share cache evictions under the capacity cap.
    pub share_cache_evictions: u64,
    /// Protocol round trips (logical waves: a batch or a concurrent
    /// multi-shard dispatch counts once).
    pub round_trips: u64,
    /// Request bytes.
    pub bytes_sent: u64,
    /// Response bytes.
    pub bytes_received: u64,
    /// Batch frames sent.
    pub batches: u64,
    /// Sub-requests carried inside batch frames.
    pub batched_requests: u64,
    /// Physical per-shard sends behind the logical round trips (0 unless a
    /// shard router is in play).
    pub shard_dispatches: u64,
    /// Requests answered from the router's speculation cache — each one a
    /// round trip the query did not pay (0 unless speculation is on).
    pub speculative_hits: u64,
    /// Speculative prefetches this query issued that went unconsumed
    /// within its window — the mis-speculation cost.
    pub speculative_wasted: u64,
    /// Fleet waves answered from the first `t` verified responses while
    /// slower parties were still out (0 unless hedging is on).
    pub hedged_wins: u64,
    /// Milliseconds hedged-wave stragglers kept running past their wave's
    /// cutoff — latency the client did *not* wait for.
    pub straggler_ms: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl QueryStats {
    /// Total single-point evaluations, client + server — the y-axis of
    /// Fig 5.
    pub fn evaluations(&self) -> u64 {
        self.client_evals + self.server_evals
    }
}

/// A query answer: matching locations (document order) plus costs.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Matching node locations in document order.
    pub result: Vec<Loc>,
    /// Cost metrics.
    pub stats: QueryStats,
}

impl QueryOutcome {
    /// `pre` numbers of the matches (stable identifiers for comparisons).
    pub fn pres(&self) -> Vec<u32> {
        self.result.iter().map(|l| l.pre).collect()
    }
}

/// Engine dispatch helper.
pub struct Engine;

impl Engine {
    /// Runs `query` with the chosen engine and rule.
    pub fn run<T: Transport>(
        kind: EngineKind,
        rule: MatchRule,
        query: &Query,
        filter: &mut ClientFilter<T>,
    ) -> Result<QueryOutcome, CoreError> {
        match kind {
            EngineKind::Simple => SimpleEngine::run(query, rule, filter),
            EngineKind::Advanced => AdvancedEngine::run(query, rule, filter),
        }
    }

    /// Runs `query` from an externally supplied root frontier. The
    /// aggregation plane fetches the roots together with the store epochs
    /// in its snapshot wave, then hands them here — re-fetching them would
    /// both waste a wave and race the epoch fence.
    pub fn run_from<T: Transport>(
        kind: EngineKind,
        rule: MatchRule,
        query: &Query,
        filter: &mut ClientFilter<T>,
        frontier: Vec<Loc>,
    ) -> Result<QueryOutcome, CoreError> {
        match kind {
            EngineKind::Simple => {
                SimpleEngine::run_with_mode_from(query, rule, filter, FetchMode::Bulk, frontier)
            }
            EngineKind::Advanced => AdvancedEngine::run_from(query, rule, filter, frontier),
        }
    }
}

/// Computes the per-run stats delta.
struct StatWindow {
    client_before: ClientStats,
    transport_before: crate::transport::TransportStats,
    started: Instant,
}

impl StatWindow {
    fn open<T: Transport>(filter: &ClientFilter<T>) -> Self {
        StatWindow {
            client_before: filter.stats(),
            transport_before: filter.transport_stats(),
            started: Instant::now(),
        }
    }

    fn close<T: Transport>(self, filter: &ClientFilter<T>, result: Vec<Loc>) -> QueryOutcome {
        let c = filter.stats();
        let t = filter.transport_stats();
        QueryOutcome {
            result,
            stats: QueryStats {
                containment_tests: c.containment_tests - self.client_before.containment_tests,
                equality_tests: c.equality_tests - self.client_before.equality_tests,
                client_evals: c.client_evals - self.client_before.client_evals,
                server_evals: c.server_evals - self.client_before.server_evals,
                polys_fetched: c.polys_fetched - self.client_before.polys_fetched,
                share_cache_hits: c.share_cache_hits - self.client_before.share_cache_hits,
                share_cache_misses: c.share_cache_misses - self.client_before.share_cache_misses,
                share_cache_evictions: c.share_cache_evictions
                    - self.client_before.share_cache_evictions,
                round_trips: t.round_trips - self.transport_before.round_trips,
                // Saturating: a fleet leg leased to a hedged wave's
                // straggler worker is invisible to the aggregate until
                // harvested, so cumulative byte counts can transiently dip
                // below the window's opening snapshot.
                bytes_sent: t
                    .bytes_sent
                    .saturating_sub(self.transport_before.bytes_sent),
                bytes_received: t
                    .bytes_received
                    .saturating_sub(self.transport_before.bytes_received),
                batches: t.batches - self.transport_before.batches,
                batched_requests: t.batched_requests - self.transport_before.batched_requests,
                shard_dispatches: t.shard_dispatches - self.transport_before.shard_dispatches,
                speculative_hits: t.speculative_hits - self.transport_before.speculative_hits,
                // Saturating: a prefetch issued by an *earlier* query may be
                // consumed inside this window, pulling the cumulative wasted
                // count below its opening value.
                speculative_wasted: t
                    .speculative_wasted
                    .saturating_sub(self.transport_before.speculative_wasted),
                hedged_wins: t.hedged_wins - self.transport_before.hedged_wins,
                // Saturating: stragglers of an earlier hedged wave are
                // credited when harvested, which may land in this window.
                straggler_ms: t
                    .straggler_ms
                    .saturating_sub(self.transport_before.straggler_ms),
                elapsed: self.started.elapsed(),
            },
        }
    }
}

/// Rejects queries with unexpanded text predicates (callers must run
/// [`Query::expand_text_predicates`] first — §4's translation).
fn check_expanded(query: &Query) -> Result<(), CoreError> {
    if query.has_text_predicates() {
        return Err(CoreError::Unsupported(
            "query has text predicates; call expand_text_predicates() first".into(),
        ));
    }
    Ok(())
}

/// Applies the rule test to every candidate, batching containment tests
/// into one round trip.
fn filter_by_rule<T: Transport>(
    filter: &mut ClientFilter<T>,
    rule: MatchRule,
    candidates: Vec<Loc>,
    value: u64,
) -> Result<Vec<Loc>, CoreError> {
    match rule {
        MatchRule::Containment => {
            let keep = filter.containment_many(&candidates, value)?;
            Ok(candidates
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(l, _)| l)
                .collect())
        }
        MatchRule::Equality => {
            // Two waves for the whole candidate set (children + polys)
            // instead of two round trips per candidate.
            let keep = filter.equality_many(&candidates, value)?;
            Ok(candidates
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(l, _)| l)
                .collect())
        }
    }
}

/// Document-order dedup.
fn dedup(mut locs: Vec<Loc>) -> Vec<Loc> {
    locs.sort_by_key(|l| l.pre);
    locs.dedup_by_key(|l| l.pre);
    locs
}

/// Expands one step's candidate set from the current frontier (shared by
/// both engines; the advanced engine overrides descendant expansion). The
/// whole frontier expands in one batched round trip.
fn expand_candidates<T: Transport>(
    filter: &mut ClientFilter<T>,
    frontier: &[Loc],
    step: &Step,
    first_step: bool,
) -> Result<Vec<Loc>, CoreError> {
    let mut out = Vec::new();
    match step.axis {
        Axis::Child => {
            if first_step {
                // Step 0 is evaluated against the root element itself (the
                // conceptual context node is the document root above it).
                out.extend_from_slice(frontier);
            } else {
                let pres: Vec<u32> = frontier.iter().map(|l| l.pre).collect();
                for kids in filter.children_many(&pres)? {
                    out.extend(kids);
                }
            }
        }
        Axis::Descendant => {
            if first_step {
                // `//x` from the document root: root element + descendants.
                out.extend_from_slice(frontier);
            }
            for desc in filter.descendants_many(frontier)? {
                out.extend(desc);
            }
        }
    }
    Ok(dedup(out))
}

/// Replaces the frontier with the parents of its members (the `..` test),
/// one batched round trip for the whole frontier.
fn parents_of<T: Transport>(
    filter: &mut ClientFilter<T>,
    frontier: &[Loc],
) -> Result<Vec<Loc>, CoreError> {
    let pres: Vec<u32> = frontier
        .iter()
        .filter(|f| f.parent != 0) // the root has no parent node
        .map(|f| f.parent)
        .collect();
    let out = filter.locs_of_many(&pres)?.into_iter().flatten().collect();
    Ok(dedup(out))
}

/// How candidate sets travel from the server to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchMode {
    /// Whole candidate sets per round trip, containment tests batched
    /// through `EvalMany` — the fast configuration.
    Bulk,
    /// The paper's §5.2 thin-client pipeline: a server-side cursor is
    /// opened, `nextNode()` pulls **one node per round trip**, and each
    /// candidate is "generated/retrieved, evaluated and added together"
    /// individually. The client holds one node in memory at a time; the
    /// server buffers the intermediate results.
    Pipelined,
}

/// The left-to-right engine.
pub struct SimpleEngine;

impl SimpleEngine {
    /// Runs a (structural) query with bulk fetching.
    pub fn run<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
    ) -> Result<QueryOutcome, CoreError> {
        Self::run_with_mode(query, rule, filter, FetchMode::Bulk)
    }

    /// Runs a (structural) query with an explicit [`FetchMode`]. Both modes
    /// return identical result sets; they differ only in protocol shape
    /// (tested in `pipelined_equals_bulk`).
    pub fn run_with_mode<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
        mode: FetchMode,
    ) -> Result<QueryOutcome, CoreError> {
        check_expanded(query)?;
        let window = StatWindow::open(filter);
        // Every document root: the write plane grows a forest, and an
        // absolute query addresses all of it.
        let frontier = filter.roots()?;
        Self::run_inner(query, rule, filter, mode, window, frontier)
    }

    /// Like [`SimpleEngine::run_with_mode`] but starting from an
    /// externally supplied root frontier (see [`Engine::run_from`]).
    pub fn run_with_mode_from<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
        mode: FetchMode,
        frontier: Vec<Loc>,
    ) -> Result<QueryOutcome, CoreError> {
        check_expanded(query)?;
        let window = StatWindow::open(filter);
        Self::run_inner(query, rule, filter, mode, window, frontier)
    }

    fn run_inner<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
        mode: FetchMode,
        window: StatWindow,
        mut frontier: Vec<Loc>,
    ) -> Result<QueryOutcome, CoreError> {
        if frontier.is_empty() {
            return Ok(window.close(filter, Vec::new()));
        }
        for (i, step) in query.steps.iter().enumerate() {
            if frontier.is_empty() {
                break;
            }
            frontier = match &step.test {
                NodeTest::Parent => {
                    if step.axis == Axis::Descendant {
                        return Err(CoreError::Unsupported("'//..' is not supported".into()));
                    }
                    if i == 0 {
                        return Err(CoreError::Unsupported("'/..' cannot start a query".into()));
                    }
                    parents_of(filter, &frontier)?
                }
                NodeTest::Star => match mode {
                    FetchMode::Bulk => expand_candidates(filter, &frontier, step, i == 0)?,
                    FetchMode::Pipelined => {
                        Self::pipelined_expand(filter, &frontier, step, i == 0, None, rule)?
                    }
                },
                NodeTest::Name(name) => {
                    let value = filter.value_of(name)?;
                    match mode {
                        FetchMode::Bulk => {
                            let candidates = expand_candidates(filter, &frontier, step, i == 0)?;
                            filter_by_rule(filter, rule, candidates, value)?
                        }
                        FetchMode::Pipelined => Self::pipelined_expand(
                            filter,
                            &frontier,
                            step,
                            i == 0,
                            Some(value),
                            rule,
                        )?,
                    }
                }
            };
        }
        Ok(window.close(filter, frontier))
    }

    /// Candidate expansion through a server-side cursor: one `Next` round
    /// trip per candidate, one test per candidate as it arrives.
    fn pipelined_expand<T: Transport>(
        filter: &mut ClientFilter<T>,
        frontier: &[Loc],
        step: &Step,
        first_step: bool,
        value: Option<u64>,
        rule: MatchRule,
    ) -> Result<Vec<Loc>, CoreError> {
        let mut out = Vec::new();
        // Step 0 evaluates against the root element itself (no cursor).
        let inline: Vec<Loc> = if first_step {
            frontier.to_vec()
        } else {
            Vec::new()
        };
        let cursor = match step.axis {
            Axis::Child if first_step => None,
            Axis::Child => {
                Some(filter.open_children_cursor(frontier.iter().map(|l| l.pre).collect())?)
            }
            Axis::Descendant => Some(filter.open_descendants_cursor(frontier.to_vec())?),
        };
        let test_and_push =
            |filter: &mut ClientFilter<T>, loc: Loc, out: &mut Vec<Loc>| -> Result<(), CoreError> {
                let keep = match value {
                    None => true,
                    Some(v) => match rule {
                        MatchRule::Containment => filter.containment(loc, v)?,
                        MatchRule::Equality => filter.equality(loc, v)?,
                    },
                };
                if keep {
                    out.push(loc);
                }
                Ok(())
            };
        for loc in inline {
            test_and_push(filter, loc, &mut out)?;
        }
        if let Some(cursor) = cursor {
            let drained = (|| -> Result<(), CoreError> {
                while let Some(loc) = filter.next_node(cursor)? {
                    test_and_push(filter, loc, &mut out)?;
                }
                Ok(())
            })();
            if let Err(e) = drained {
                // Release the server-side buffer instead of leaking it;
                // the original error wins over any close failure.
                let _ = filter.close_cursor(cursor);
                return Err(e);
            }
        }
        Ok(dedup(out))
    }
}

/// The look-ahead engine.
pub struct AdvancedEngine;

impl AdvancedEngine {
    /// Runs a (structural) query.
    pub fn run<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
    ) -> Result<QueryOutcome, CoreError> {
        check_expanded(query)?;
        let window = StatWindow::open(filter);
        // Every document root: the write plane grows a forest, and an
        // absolute query addresses all of it.
        let frontier = filter.roots()?;
        Self::run_inner(query, rule, filter, window, frontier)
    }

    /// Like [`AdvancedEngine::run`] but starting from an externally
    /// supplied root frontier (see [`Engine::run_from`]).
    pub fn run_from<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
        frontier: Vec<Loc>,
    ) -> Result<QueryOutcome, CoreError> {
        check_expanded(query)?;
        let window = StatWindow::open(filter);
        Self::run_inner(query, rule, filter, window, frontier)
    }

    fn run_inner<T: Transport>(
        query: &Query,
        rule: MatchRule,
        filter: &mut ClientFilter<T>,
        window: StatWindow,
        mut frontier: Vec<Loc>,
    ) -> Result<QueryOutcome, CoreError> {
        if frontier.is_empty() {
            return Ok(window.close(filter, Vec::new()));
        }
        // Distinct tag values tested by steps[i..] — the look-ahead sets.
        let suffix_values = Self::suffix_values(query, filter)?;
        // Initial look-ahead: the root must contain every name the query
        // will ever test beyond step 0 (step 0's own test happens below, so
        // at the root the engine performs exactly |names| evaluations —
        // "this node is checked against map(site), map(person) and
        // map(city)", §5.3).
        frontier = Self::prune(filter, frontier, &suffix_values[1])?;
        for (i, step) in query.steps.iter().enumerate() {
            if frontier.is_empty() {
                break;
            }
            let after = &suffix_values[i + 1];
            frontier = match &step.test {
                NodeTest::Parent => {
                    if step.axis == Axis::Descendant {
                        return Err(CoreError::Unsupported("'//..' is not supported".into()));
                    }
                    if i == 0 {
                        return Err(CoreError::Unsupported("'/..' cannot start a query".into()));
                    }
                    parents_of(filter, &frontier)?
                }
                NodeTest::Star => expand_candidates(filter, &frontier, step, i == 0)?,
                NodeTest::Name(name) => {
                    let value = filter.value_of(name)?;
                    match step.axis {
                        Axis::Child => {
                            let candidates = expand_candidates(filter, &frontier, step, i == 0)?;
                            filter_by_rule(filter, rule, candidates, value)?
                        }
                        Axis::Descendant => {
                            Self::pruned_descendant_search(filter, &frontier, value, rule, i == 0)?
                        }
                    }
                }
            };
            frontier = Self::prune(filter, frontier, after)?;
        }
        Ok(window.close(filter, frontier))
    }

    /// `suffix_values[i]` = distinct tag values tested by `steps[i..]` **up
    /// to the next `..` step**. Names beyond a `..` must not participate in
    /// the look-ahead: after climbing back up, they can be matched outside
    /// the current node's subtree, so pruning on them would drop correct
    /// answers (regression-tested in `parent_steps_can_climb_and_descend_again`).
    fn suffix_values<T: Transport>(
        query: &Query,
        filter: &ClientFilter<T>,
    ) -> Result<Vec<Vec<u64>>, CoreError> {
        let n = query.steps.len();
        let mut out = vec![Vec::new(); n + 1];
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for i in (0..n).rev() {
            match &query.steps[i].test {
                NodeTest::Parent => seen.clear(),
                NodeTest::Name(name) => {
                    seen.insert(filter.value_of(name)?);
                }
                NodeTest::Star => {}
            }
            out[i] = seen.iter().copied().collect();
        }
        Ok(out)
    }

    /// Keeps only frontier nodes whose subtree contains *all* `values` —
    /// the look-ahead filter. One batched round trip per value.
    fn prune<T: Transport>(
        filter: &mut ClientFilter<T>,
        frontier: Vec<Loc>,
        values: &[u64],
    ) -> Result<Vec<Loc>, CoreError> {
        let mut frontier = frontier;
        for &v in values {
            if frontier.is_empty() {
                break;
            }
            let keep = filter.containment_many(&frontier, v)?;
            frontier = frontier
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(l, _)| l)
                .collect();
        }
        Ok(frontier)
    }

    /// `//name` with pruning: walk down from the frontier, abandoning any
    /// branch whose subtree no longer contains `name` ("identify dead
    /// branches early", §5.3). Collects matches per the rule.
    fn pruned_descendant_search<T: Transport>(
        filter: &mut ClientFilter<T>,
        frontier: &[Loc],
        value: u64,
        rule: MatchRule,
        include_frontier: bool,
    ) -> Result<Vec<Loc>, CoreError> {
        let mut out = Vec::new();
        // Level-order walk: per level one batched containment round trip,
        // one batched children expansion (and under the strict rule two
        // batched equality waves) — wave count scales with depth, not nodes.
        let fetch_level =
            |filter: &mut ClientFilter<T>, locs: &[Loc]| -> Result<Vec<Loc>, CoreError> {
                let pres: Vec<u32> = locs.iter().map(|l| l.pre).collect();
                let mut kids = Vec::new();
                for list in filter.children_many(&pres)? {
                    kids.extend(list);
                }
                Ok(dedup(kids))
            };
        let mut level: Vec<Loc> = if include_frontier {
            frontier.to_vec()
        } else {
            fetch_level(filter, frontier)?
        };
        while !level.is_empty() {
            let keep = filter.containment_many(&level, value)?;
            let alive: Vec<Loc> = level
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(l, _)| l)
                .collect();
            match rule {
                MatchRule::Containment => out.extend_from_slice(&alive),
                MatchRule::Equality => {
                    let keep = filter.equality_many(&alive, value)?;
                    out.extend(alive.iter().zip(keep).filter(|(_, k)| *k).map(|(l, _)| *l));
                }
            }
            level = fetch_level(filter, &alive)?;
        }
        Ok(dedup(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use crate::server::ServerFilter;
    use crate::transport::LocalTransport;
    use ssx_prg::Seed;
    use ssx_xpath::parse_query;

    /// Fixture document with nested repetition:
    ///
    /// ```text
    /// site(1)
    /// ├── a(2) ── b(3) ── c(4)
    /// ├── a(5) ── c(6)
    /// └── b(7) ── a(8) ── c(9)
    /// ```
    fn client() -> ClientFilter<LocalTransport> {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        let xml = "<site><a><b><c/></b></a><a><c/></a><b><a><c/></a></b></site>";
        let out = encode_document(xml, &map, &seed).unwrap();
        let server = ServerFilter::new(out.table, out.ring);
        ClientFilter::new(LocalTransport::new(server), map, seed).unwrap()
    }

    fn run(kind: EngineKind, rule: MatchRule, q: &str) -> Vec<u32> {
        let mut c = client();
        let query = parse_query(q).unwrap();
        Engine::run(kind, rule, &query, &mut c).unwrap().pres()
    }

    #[test]
    fn equality_rule_is_exact_xpath() {
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            assert_eq!(run(kind, MatchRule::Equality, "/site"), vec![1], "{kind:?}");
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/a"),
                vec![2, 5],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/a/c"),
                vec![6],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "//c"),
                vec![4, 6, 9],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site//a"),
                vec![2, 5, 8],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/*/c"),
                vec![6],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/b//c"),
                vec![9],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/a/../b"),
                vec![7],
                "{kind:?}"
            );
            assert_eq!(run(kind, MatchRule::Equality, "//b/c"), vec![4], "{kind:?}");
        }
    }

    #[test]
    fn containment_rule_overapproximates() {
        // /site/a under containment keeps every child of site whose subtree
        // contains an a — including b(7) which merely wraps a(8).
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            assert_eq!(
                run(kind, MatchRule::Containment, "/site/a"),
                vec![2, 5, 7],
                "{kind:?}"
            );
            // /site/a/c keeps children whose subtree contains a c: b(3)
            // (wraps c(4)), c(6) itself, a(8) (wraps c(9)). The exact answer
            // would be {4, 6, 9} — this is the Fig 7 accuracy loss even on
            // absolute queries over *this* document shape; the paper's 100%
            // claim holds when containment-matched steps are leaf-level.
            assert_eq!(
                run(kind, MatchRule::Containment, "/site/a/c"),
                vec![3, 6, 8],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn engines_agree_on_both_rules() {
        let queries = [
            "/site",
            "/site/a",
            "/site/a/b",
            "//c",
            "/site//c",
            "/site/*/c",
            "//a//c",
            "//b/c",
            "/site/a/../b",
            "/*",
            "/*/*",
        ];
        for q in queries {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let s = run(EngineKind::Simple, rule, q);
                let a = run(EngineKind::Advanced, rule, q);
                assert_eq!(s, a, "engines disagree on {q} under {rule:?}");
            }
        }
    }

    #[test]
    fn equality_subset_of_containment() {
        for q in ["/site/a", "//c", "/site//a", "//b/c", "/site/*/c"] {
            let e = run(EngineKind::Simple, MatchRule::Equality, q);
            let c = run(EngineKind::Simple, MatchRule::Containment, q);
            for pre in &e {
                assert!(c.contains(pre), "E ⊄ C for {q}: {pre} missing");
            }
        }
    }

    #[test]
    fn advanced_prunes_dead_branches() {
        // //c under advanced never descends below c-less branches; on this
        // small doc both visit similar counts, so use a query with a dead
        // subtree: /site/b//c — simple enumerates all descendants of the b
        // frontier; advanced walks down only while containment holds.
        let mut cs = client();
        let q = parse_query("//b/c").unwrap();
        let simple = SimpleEngine::run(&q, MatchRule::Containment, &mut cs).unwrap();
        let mut ca = client();
        let advanced = AdvancedEngine::run(&q, MatchRule::Containment, &mut ca).unwrap();
        assert_eq!(simple.pres(), advanced.pres());
        // The advanced engine must not do more *structure fetches* than the
        // document has nodes per level... sanity: both did work.
        assert!(simple.stats.evaluations() > 0);
        assert!(advanced.stats.evaluations() > 0);
    }

    #[test]
    fn no_match_returns_empty() {
        // d exists in the map but not in the document.
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c", "d"]).unwrap();
        let seed = Seed::from_test_key(21);
        let out = encode_document("<site><a/></site>", &map, &seed).unwrap();
        let server = ServerFilter::new(out.table, out.ring);
        let mut c = ClientFilter::new(LocalTransport::new(server), map, seed).unwrap();
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let q = parse_query("/site/d").unwrap();
                let out = Engine::run(kind, rule, &q, &mut c).unwrap();
                assert!(out.result.is_empty(), "{kind:?} {rule:?}");
            }
        }
    }

    #[test]
    fn unknown_tag_in_query_errors() {
        let mut c = client();
        let q = parse_query("/site/zzz").unwrap();
        assert!(matches!(
            SimpleEngine::run(&q, MatchRule::Containment, &mut c),
            Err(CoreError::UnknownTag(_))
        ));
    }

    #[test]
    fn unsupported_constructs_rejected() {
        let mut c = client();
        for q in ["/..", "/site//.."] {
            let query = parse_query(q).unwrap();
            assert!(
                matches!(
                    SimpleEngine::run(&query, MatchRule::Containment, &mut c),
                    Err(CoreError::Unsupported(_))
                ),
                "{q}"
            );
            assert!(
                matches!(
                    AdvancedEngine::run(&query, MatchRule::Containment, &mut c),
                    Err(CoreError::Unsupported(_))
                ),
                "{q}"
            );
        }
    }

    #[test]
    fn unexpanded_predicates_rejected() {
        let mut c = client();
        let q = parse_query(r#"/site[contains(text(), "x")]"#).unwrap();
        assert!(matches!(
            SimpleEngine::run(&q, MatchRule::Containment, &mut c),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn stats_report_work() {
        let mut c = client();
        let q = parse_query("/site//c").unwrap();
        let out = SimpleEngine::run(&q, MatchRule::Containment, &mut c).unwrap();
        assert!(out.stats.containment_tests > 0);
        assert_eq!(out.stats.client_evals, out.stats.server_evals);
        assert!(out.stats.round_trips > 0);
        assert!(out.stats.bytes_sent > 0);
        let out2 = SimpleEngine::run(&q, MatchRule::Equality, &mut c).unwrap();
        assert!(out2.stats.equality_tests > 0);
        assert!(out2.stats.polys_fetched > 0);
    }

    #[test]
    fn pipelined_equals_bulk() {
        let queries = [
            "/site",
            "/site/a",
            "//c",
            "/site//c",
            "/site/*/c",
            "//b/c",
            "/site/a/../b",
        ];
        for q in queries {
            for rule in [MatchRule::Containment, MatchRule::Equality] {
                let mut c1 = client();
                let query = parse_query(q).unwrap();
                let bulk =
                    SimpleEngine::run_with_mode(&query, rule, &mut c1, FetchMode::Bulk).unwrap();
                let mut c2 = client();
                let piped =
                    SimpleEngine::run_with_mode(&query, rule, &mut c2, FetchMode::Pipelined)
                        .unwrap();
                assert_eq!(bulk.pres(), piped.pres(), "{q} {rule:?}");
                // The pipeline pays one round trip per node, so it must use
                // at least as many round trips (strictly more whenever a
                // cursor was opened).
                assert!(
                    piped.stats.round_trips >= bulk.stats.round_trips,
                    "{q}: piped {} < bulk {}",
                    piped.stats.round_trips,
                    bulk.stats.round_trips
                );
            }
        }
    }

    #[test]
    fn pipelined_round_trip_shape() {
        // //c on the fixture: cursor open + (9 candidates + None) pulls +
        // one eval round trip per candidate — far more round trips than the
        // batched mode's handful.
        let mut c = client();
        let query = parse_query("//c").unwrap();
        let piped = SimpleEngine::run_with_mode(
            &query,
            MatchRule::Containment,
            &mut c,
            FetchMode::Pipelined,
        )
        .unwrap();
        assert!(piped.stats.round_trips > 15, "{}", piped.stats.round_trips);
    }

    #[test]
    fn star_queries() {
        for kind in [EngineKind::Simple, EngineKind::Advanced] {
            assert_eq!(run(kind, MatchRule::Equality, "/*"), vec![1], "{kind:?}");
            assert_eq!(
                run(kind, MatchRule::Equality, "/*/*"),
                vec![2, 5, 7],
                "{kind:?}"
            );
            assert_eq!(
                run(kind, MatchRule::Equality, "/site/*"),
                vec![2, 5, 7],
                "{kind:?}"
            );
        }
    }
}
