//! The seeded chaos plane: deterministic fault injection for the transport
//! and fleet layers.
//!
//! Two injectors share one [`ChaosConfig`]:
//!
//! * [`ChaosTransport`] wraps any [`Transport`] in-process and injects
//!   faults *typed as the transport would produce them* — a dropped
//!   response is a [`CoreError::Timeout`], a reset is a
//!   [`CoreError::Transport`], a bit flip corrupts the encoded response
//!   bytes before they are decoded (so it lands wherever a hostile wire
//!   would land it: codec error or corrupted share caught by the MAC).
//! * [`ChaosProxy`] sits between a real TCP client and host and mangles
//!   the length-prefixed frames themselves: delay, drop, reset, reorder,
//!   bit flip — the full slow-loris/flaky-network repertoire against
//!   unmodified endpoints.
//!
//! Every decision comes from an [`ssx_prg::Prg`] stream keyed by
//! [`ChaosConfig::seed`], so any failing scenario replays exactly from the
//! seed (the chaos tests print it; `SSXDB_CHAOS_SEED` pins it in CI).
//! Injected-fault errors name the seed too.

use crate::error::CoreError;
use crate::protocol::{decode_response, encode_response, Request, Response};
use crate::transport::{Transport, TransportStats};
use ssx_prg::Prg;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault mix of one chaos injector. Rates are per mille (‰) per
/// opportunity — one opportunity per call on a [`ChaosTransport`], one per
/// relayed frame on a [`ChaosProxy`]. `0` everywhere (see
/// [`ChaosConfig::quiet`]) makes the injector a transparent pass-through.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Keys the deterministic fault stream; printed in every injected
    /// error so a failing scenario replays exactly.
    pub seed: u64,
    /// ‰ chance of delaying a call/frame.
    pub delay_per_mille: u32,
    /// Upper bound of one injected delay (the actual delay is uniform in
    /// `1..=delay` milliseconds).
    pub delay: Duration,
    /// ‰ chance of dropping a response/frame — the caller sees silence
    /// (a deadline turns it into a typed timeout).
    pub drop_per_mille: u32,
    /// ‰ chance of a connection reset.
    pub reset_per_mille: u32,
    /// ‰ chance of flipping one random bit of a response/frame payload.
    pub flip_per_mille: u32,
    /// ‰ chance of holding a frame back and releasing it *after* the next
    /// one (proxy only; a request/response transport has no reorderable
    /// stream).
    pub reorder_per_mille: u32,
}

impl ChaosConfig {
    /// No faults at all: the injector is a transparent pass-through.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_per_mille: 0,
            delay: Duration::ZERO,
            drop_per_mille: 0,
            reset_per_mille: 0,
            flip_per_mille: 0,
            reorder_per_mille: 0,
        }
    }

    /// A moderate all-fault mix for soak tests: mostly clean traffic with
    /// every fault class exercised over a few hundred frames.
    pub fn soak(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_per_mille: 30,
            delay: Duration::from_millis(3),
            drop_per_mille: 8,
            reset_per_mille: 4,
            flip_per_mille: 8,
            reorder_per_mille: 20,
        }
    }

    /// Delays every call by exactly `delay`, no other faults — the
    /// "one slow party" shape the degraded-mode bench uses.
    pub fn fixed_delay(seed: u64, delay: Duration) -> Self {
        ChaosConfig {
            delay_per_mille: 1000,
            delay,
            ..ChaosConfig::quiet(seed)
        }
    }
}

/// One ‰ roll against the deterministic stream.
fn roll(prg: &mut Prg, per_mille: u32) -> bool {
    per_mille > 0 && prg.next_below(1000) < per_mille as u64
}

/// A fault-injecting wrapper around any [`Transport`] (see the module
/// docs). Faults are decided per call from the seeded stream; traffic
/// counters come from the wrapped transport, so byte accounting of clean
/// calls is unchanged.
pub struct ChaosTransport<T> {
    inner: T,
    prg: Prg,
    cfg: ChaosConfig,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` with the fault mix of `cfg`.
    pub fn new(inner: T, cfg: ChaosConfig) -> Self {
        ChaosTransport {
            inner,
            prg: Prg::from_u64(cfg.seed),
            cfg,
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn injected_delay(&mut self) {
        if roll(&mut self.prg, self.cfg.delay_per_mille) && !self.cfg.delay.is_zero() {
            let ms = self.cfg.delay.as_millis().max(1) as u64;
            let jittered = if self.cfg.delay_per_mille >= 1000 {
                // A deterministic "always slow" config delays by exactly
                // the configured amount — the degraded-bench contract.
                ms
            } else {
                1 + self.prg.next_below(ms)
            };
            std::thread::sleep(Duration::from_millis(jittered));
        }
    }

    /// Rolls the error faults; `Err` is the injected failure.
    fn injected_error(&mut self) -> Result<(), CoreError> {
        let seed = self.cfg.seed;
        if roll(&mut self.prg, self.cfg.reset_per_mille) {
            return Err(CoreError::Transport(format!(
                "chaos[seed {seed}]: injected connection reset"
            )));
        }
        if roll(&mut self.prg, self.cfg.drop_per_mille) {
            return Err(CoreError::Timeout(format!(
                "chaos[seed {seed}]: response dropped"
            )));
        }
        Ok(())
    }

    /// Re-encodes `resp`, flips one random bit, decodes again — exactly
    /// what a flipped bit on the response wire would produce.
    fn flip_response(&mut self, resp: Response) -> Result<Response, CoreError> {
        let mut bytes = encode_response(&resp);
        if bytes.is_empty() {
            return Ok(resp);
        }
        let bit = self.prg.next_below((bytes.len() * 8) as u64) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        decode_response(&bytes).map_err(|e| {
            CoreError::Transport(format!(
                "chaos[seed {}]: flipped response no longer decodes: {e}",
                self.cfg.seed
            ))
        })
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn call(&mut self, req: &Request) -> Result<Response, CoreError> {
        self.injected_delay();
        self.injected_error()?;
        let resp = self.inner.call(req)?;
        if roll(&mut self.prg, self.cfg.flip_per_mille) {
            return self.flip_response(resp);
        }
        Ok(resp)
    }

    fn call_batch(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        // One opportunity per logical wave, like one frame on the wire.
        self.injected_delay();
        self.injected_error()?;
        self.inner.call_batch(reqs)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn set_call_budget(&mut self, budget: Option<Duration>) {
        self.inner.set_call_budget(budget);
    }
}

/// A seeded TCP chaos proxy: accepts connections, opens one upstream
/// connection per client, and relays length-prefixed frames both ways with
/// the fault mix of its [`ChaosConfig`] (see the module docs). Spawn one in
/// front of each fleet party to soak the resilience layer against real
/// sockets; the `ssxchaos` binary is the CLI face of the same loop.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream` on a
    /// background thread.
    pub fn spawn(upstream: SocketAddr, cfg: ChaosConfig) -> Result<ChaosProxy, CoreError> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::Transport(format!("chaos proxy bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::Transport(format!("chaos proxy local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_chaos_proxy(&listener, upstream, cfg, &stop));
        }
        Ok(ChaosProxy { addr, stop })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections (established relays drain on their
    /// own when either side closes).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The proxy's accept loop: one upstream connection and two frame relays
/// (client→server, server→client) per accepted client, each with its own
/// deterministic fault stream derived from the seed and the connection
/// index — connection ordering does not perturb other connections' faults.
pub fn run_chaos_proxy(
    listener: &TcpListener,
    upstream: SocketAddr,
    cfg: ChaosConfig,
    stop: &AtomicBool,
) {
    let conn_index = AtomicU64::new(0);
    while let Ok((client, _)) = listener.accept() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let id = conn_index.fetch_add(1, Ordering::SeqCst);
        let Ok(server) = TcpStream::connect(upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_dup), Ok(server_dup)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        // Independent streams per direction: a fault decision on requests
        // never shifts the fault schedule of responses.
        let c2s_seed = cfg.seed ^ (2 * id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let s2c_seed = cfg.seed ^ (2 * id + 2).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        std::thread::spawn(move || relay_frames(client, server, cfg, c2s_seed));
        std::thread::spawn(move || relay_frames(server_dup, client_dup, cfg, s2c_seed));
    }
}

/// Reads one raw length-prefixed frame (`None` on clean EOF/oversize).
fn read_raw_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).ok()?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > crate::transport::MAX_FRAME_BYTES {
        return None;
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) -> bool {
    stream
        .write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| stream.write_all(payload))
        .is_ok()
}

/// One direction's frame relay with fault injection; exits when either
/// socket dies (shutting both down so the peer relay exits too).
fn relay_frames(mut src: TcpStream, mut dst: TcpStream, cfg: ChaosConfig, seed: u64) {
    let mut prg = Prg::from_u64(seed);
    let mut held: Option<Vec<u8>> = None;
    while let Some(mut payload) = read_raw_frame(&mut src) {
        if roll(&mut prg, cfg.reset_per_mille) {
            break;
        }
        if roll(&mut prg, cfg.delay_per_mille) && !cfg.delay.is_zero() {
            let ms = cfg.delay.as_millis().max(1) as u64;
            std::thread::sleep(Duration::from_millis(1 + prg.next_below(ms)));
        }
        if roll(&mut prg, cfg.drop_per_mille) {
            continue;
        }
        if roll(&mut prg, cfg.flip_per_mille) && !payload.is_empty() {
            let bit = prg.next_below((payload.len() * 8) as u64) as usize;
            payload[bit / 8] ^= 1 << (bit % 8);
        }
        if held.is_none() && roll(&mut prg, cfg.reorder_per_mille) {
            held = Some(payload);
            continue;
        }
        if !write_raw_frame(&mut dst, &payload) {
            break;
        }
        if let Some(h) = held.take() {
            if !write_raw_frame(&mut dst, &h) {
                break;
            }
        }
    }
    if let Some(h) = held.take() {
        let _ = write_raw_frame(&mut dst, &h);
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use crate::server::ServerFilter;
    use crate::transport::LocalTransport;
    use ssx_prg::Seed;

    fn demo_transport() -> LocalTransport {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(21);
        let out = encode_document("<site><a><b/></a></site>", &map, &seed).unwrap();
        LocalTransport::new(ServerFilter::new(out.table, out.ring))
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let mut plain = demo_transport();
        let mut wrapped = ChaosTransport::new(demo_transport(), ChaosConfig::quiet(1));
        let a = plain.call(&Request::Count).unwrap();
        let b = wrapped.call(&Request::Count).unwrap();
        assert_eq!(a, b);
        assert_eq!(plain.stats(), wrapped.stats());
    }

    #[test]
    fn chaos_faults_are_deterministic_per_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let cfg = ChaosConfig {
                drop_per_mille: 200,
                reset_per_mille: 200,
                ..ChaosConfig::quiet(seed)
            };
            let mut t = ChaosTransport::new(demo_transport(), cfg);
            (0..50).map(|_| t.call(&Request::Count).is_ok()).collect()
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8), "different seeds, same schedule");
        assert!(outcomes(7).iter().any(|ok| !ok), "faults were injected");
        assert!(outcomes(7).iter().any(|ok| *ok), "some calls survive");
    }

    #[test]
    fn injected_errors_name_the_seed() {
        let cfg = ChaosConfig {
            drop_per_mille: 1000,
            ..ChaosConfig::quiet(42)
        };
        let mut t = ChaosTransport::new(demo_transport(), cfg);
        let err = t.call(&Request::Count).unwrap_err();
        assert!(matches!(err, CoreError::Timeout(_)), "{err}");
        assert!(err.to_string().contains("seed 42"), "{err}");
    }

    #[test]
    fn fixed_delay_delays_every_call() {
        let cfg = ChaosConfig::fixed_delay(3, Duration::from_millis(5));
        let mut t = ChaosTransport::new(demo_transport(), cfg);
        let started = std::time::Instant::now();
        t.call(&Request::Count).unwrap();
        assert!(started.elapsed() >= Duration::from_millis(5));
    }
}
