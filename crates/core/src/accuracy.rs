//! The Fig 7 accuracy metric.
//!
//! "the quotient E/C, where E is the size of the result set using the
//! equality test and C is the size of the result set using the containment
//! test." Since the equality result is always a subset of the containment
//! result, the quotient lies in `[0, 100]` percent; it reaches 100% exactly
//! when the cheap test already answers the query.

/// `100 · E / C`; an empty containment result counts as perfectly accurate
/// (nothing was over-reported).
pub fn accuracy_percent(equality_size: usize, containment_size: usize) -> f64 {
    if containment_size == 0 {
        return 100.0;
    }
    100.0 * equality_size as f64 / containment_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_quotients() {
        assert_eq!(accuracy_percent(5, 10), 50.0);
        assert_eq!(accuracy_percent(10, 10), 100.0);
        assert_eq!(accuracy_percent(0, 10), 0.0);
        assert_eq!(accuracy_percent(0, 0), 100.0);
    }
}
