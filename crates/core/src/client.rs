//! The client side of the filter (§5.2).
//!
//! The client holds the two secrets — seed and map — and talks to the server
//! through a [`Transport`]. For a *containment test* it regenerates the
//! node's client share from `(seed, pre)`, evaluates it locally, asks the
//! server for the matching share evaluation, and adds: zero means the tag
//! occurs in the subtree. For an *equality test* it reconstructs the node's
//! and its children's full polynomials and extracts the root of
//! `f / Π children` (§3).

use crate::encode::digits_value;
use crate::error::CoreError;
use crate::map::MapFile;
use crate::protocol::{Request, Response, ResponseView, AGG_FENCE};
use crate::transport::{Transport, TransportStats};
use ssx_poly::{extract_root_evals, random_poly, EvalPoly, Packer, RingCtx, RingPoly, RootOutcome};
use ssx_prg::{node_prg, Seed};
use ssx_store::Loc;
use std::collections::HashMap;

/// Default capacity of the bounded client-share cache (shares, not bytes):
/// at the paper's `q = 83` this is ~2.7 MB — generous for a thin client yet
/// bounded regardless of database size.
pub const DEFAULT_SHARE_CACHE_CAP: usize = 4096;

/// Client-side cost counters; the per-query deltas become [`crate::engine::QueryStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Local (client-share) polynomial evaluations.
    pub client_evals: u64,
    /// Server-share evaluations requested.
    pub server_evals: u64,
    /// Containment tests performed.
    pub containment_tests: u64,
    /// Equality tests performed.
    pub equality_tests: u64,
    /// Client shares regenerated from the seed.
    pub shares_regenerated: u64,
    /// Client shares served from the optional cache instead of the PRG.
    pub share_cache_hits: u64,
    /// Cache lookups that missed (share had to be regenerated).
    pub share_cache_misses: u64,
    /// Cached shares evicted to stay within the capacity cap.
    pub share_cache_evictions: u64,
    /// Full polynomials fetched from the server.
    pub polys_fetched: u64,
    /// Polynomial reconstructions (share additions).
    pub reconstructions: u64,
}

/// A fixed-capacity clock (second-chance) cache of regenerated client
/// shares, keyed by `pre`. O(1) amortised get/insert, no allocation after
/// warm-up, and a hard memory bound of `cap · (q − 1)` words — the
/// share-cache policy the ROADMAP called for.
struct ShareCache {
    cap: usize,
    /// `(pre, share, referenced-since-last-sweep)` slots.
    entries: Vec<(u32, RingPoly, bool)>,
    index: HashMap<u32, usize>,
    hand: usize,
}

impl ShareCache {
    fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        ShareCache {
            cap,
            entries: Vec::new(),
            index: HashMap::new(),
            hand: 0,
        }
    }

    fn get(&mut self, pre: u32) -> Option<&RingPoly> {
        let &i = self.index.get(&pre)?;
        self.entries[i].2 = true;
        Some(&self.entries[i].1)
    }

    /// Inserts a share, returning `true` when an older entry was evicted.
    fn insert(&mut self, pre: u32, share: RingPoly) -> bool {
        if self.index.contains_key(&pre) {
            return false;
        }
        if self.entries.len() < self.cap {
            self.index.insert(pre, self.entries.len());
            self.entries.push((pre, share, true));
            return false;
        }
        // Clock sweep: give referenced entries a second chance, replace the
        // first unreferenced one.
        loop {
            let slot = &mut self.entries[self.hand];
            if slot.2 {
                slot.2 = false;
                self.hand = (self.hand + 1) % self.cap;
                continue;
            }
            self.index.remove(&slot.0);
            *slot = (pre, share, true);
            self.index.insert(pre, self.hand);
            self.hand = (self.hand + 1) % self.cap;
            return true;
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The `ClientFilter`.
pub struct ClientFilter<T: Transport> {
    transport: T,
    ring: RingCtx,
    packer: Packer,
    seed: Seed,
    map: MapFile,
    stats: ClientStats,
    /// Verify equality-test quotients against every evaluation point.
    /// Exact; on by default (tests), disabled in timing runs.
    pub verify_equality: bool,
    /// Optional bounded memo of regenerated client shares. Off by default —
    /// the paper's thin client holds one node at a time — but a client with
    /// memory to spare trades a capped `cap · (q−1)` words for skipping
    /// repeat PRG regenerations (queries revisit nodes across steps and
    /// look-ahead prunes).
    share_cache: Option<ShareCache>,
    /// Cap on sub-requests per batch frame (`None` = one frame per
    /// frontier). `Some(1)` reproduces the unbatched one-request-per-round-
    /// trip wire shape — the ablation baseline.
    batch_limit: Option<usize>,
}

impl<T: Transport> ClientFilter<T> {
    /// Builds a client over `transport` with the client secrets.
    pub fn new(transport: T, map: MapFile, seed: Seed) -> Result<Self, CoreError> {
        let ring = RingCtx::new(map.p(), map.e())?;
        let packer = Packer::new(&ring);
        Ok(ClientFilter {
            transport,
            ring,
            packer,
            seed,
            map,
            stats: ClientStats::default(),
            verify_equality: true,
            share_cache: None,
            batch_limit: None,
        })
    }

    /// Caps how many sub-requests travel in one batch frame; `None` (the
    /// default) batches a whole frontier per round trip, `Some(1)` degrades
    /// to the unbatched protocol (the round-trip ablation baseline).
    pub fn set_batch_limit(&mut self, limit: Option<usize>) {
        self.batch_limit = limit.map(|l| l.max(1));
    }

    /// The configured batch cap.
    pub fn batch_limit(&self) -> Option<usize> {
        self.batch_limit
    }

    /// Issues `reqs` in as few round trips as the batch cap allows.
    fn call_chunked(&mut self, reqs: &[Request]) -> Result<Vec<Response>, CoreError> {
        let chunk = self
            .batch_limit
            .unwrap_or(usize::MAX)
            .min(reqs.len().max(1));
        let mut out = Vec::with_capacity(reqs.len());
        for group in reqs.chunks(chunk) {
            out.extend(self.transport.call_batch(group)?);
        }
        Ok(out)
    }

    /// Enables (at [`DEFAULT_SHARE_CACHE_CAP`]) or disables the client-share
    /// cache (disabled = the paper's thin-client memory profile). Disabling
    /// clears any cached shares.
    pub fn set_share_cache(&mut self, enabled: bool) {
        self.share_cache = if enabled {
            Some(ShareCache::new(DEFAULT_SHARE_CACHE_CAP))
        } else {
            None
        };
    }

    /// Enables the share cache with an explicit capacity (in shares);
    /// `cap = 0` disables it. Replacing the cache clears it.
    pub fn set_share_cache_capacity(&mut self, cap: usize) {
        self.share_cache = if cap == 0 {
            None
        } else {
            Some(ShareCache::new(cap))
        };
    }

    /// The configured cache capacity (`None` when disabled).
    pub fn share_cache_capacity(&self) -> Option<usize> {
        self.share_cache.as_ref().map(|c| c.cap)
    }

    /// Number of shares currently cached.
    pub fn cached_shares(&self) -> usize {
        self.share_cache.as_ref().map_or(0, |c| c.len())
    }

    /// The tag map (client secret).
    pub fn map(&self) -> &MapFile {
        &self.map
    }

    /// The PRG seed (client secret) — the write plane re-encodes new
    /// documents under it so their shares extend the same keyspace.
    pub fn seed(&self) -> &Seed {
        &self.seed
    }

    /// The ring.
    pub fn ring(&self) -> &RingCtx {
        &self.ring
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Transport counter snapshot.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Access to the transport (e.g. `LocalTransport::server`).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable transport access.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Maps a tag name to its field value.
    pub fn value_of(&self, name: &str) -> Result<u64, CoreError> {
        self.map.value(name)
    }

    // ---- structure -------------------------------------------------------

    /// The root location.
    pub fn root(&mut self) -> Result<Option<Loc>, CoreError> {
        match self.transport.call(&Request::Root)? {
            Response::MaybeLoc(l) => Ok(l),
            other => Err(unexpected(other)),
        }
    }

    /// All document roots in document order. A freshly encoded store has
    /// one; the write plane grows a forest, and queries start from every
    /// root.
    pub fn roots(&mut self) -> Result<Vec<Loc>, CoreError> {
        match self.transport.call(&Request::Roots)? {
            Response::Locs(ls) => Ok(ls),
            other => Err(unexpected(other)),
        }
    }

    /// Location of a node by `pre`.
    pub fn loc_of(&mut self, pre: u32) -> Result<Option<Loc>, CoreError> {
        match self.transport.call(&Request::GetLoc { pre })? {
            Response::MaybeLoc(l) => Ok(l),
            other => Err(unexpected(other)),
        }
    }

    /// Children of a node.
    pub fn children(&mut self, pre: u32) -> Result<Vec<Loc>, CoreError> {
        match self.transport.call(&Request::Children { pre })? {
            Response::Locs(ls) => Ok(ls),
            other => Err(unexpected(other)),
        }
    }

    /// Descendants of a node.
    pub fn descendants(&mut self, loc: Loc) -> Result<Vec<Loc>, CoreError> {
        match self.transport.call(&Request::Descendants { loc })? {
            Response::Locs(ls) => Ok(ls),
            other => Err(unexpected(other)),
        }
    }

    /// Number of stored nodes.
    pub fn count(&mut self) -> Result<u64, CoreError> {
        match self.transport.call(&Request::Count)? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    // ---- batched structure fetches ----------------------------------------
    //
    // One logical round trip for a whole frontier: the engines' traversal
    // loops issue these instead of per-node calls, so a step costs waves,
    // not nodes. Over a [`crate::router::ShardRouter`] each batch is further
    // split across shards and served concurrently.

    /// Children of every node in `pres`, one list per node, one batch.
    pub fn children_many(&mut self, pres: &[u32]) -> Result<Vec<Vec<Loc>>, CoreError> {
        let reqs: Vec<Request> = pres.iter().map(|&pre| Request::Children { pre }).collect();
        self.call_chunked(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::Locs(ls) => Ok(ls),
                other => Err(unexpected(other)),
            })
            .collect()
    }

    /// Descendants of every subtree root in `locs`, one list per root.
    pub fn descendants_many(&mut self, locs: &[Loc]) -> Result<Vec<Vec<Loc>>, CoreError> {
        let reqs: Vec<Request> = locs
            .iter()
            .map(|&loc| Request::Descendants { loc })
            .collect();
        self.call_chunked(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::Locs(ls) => Ok(ls),
                other => Err(unexpected(other)),
            })
            .collect()
    }

    /// Locations of many nodes (`None` slots for unknown `pre`s).
    pub fn locs_of_many(&mut self, pres: &[u32]) -> Result<Vec<Option<Loc>>, CoreError> {
        let reqs: Vec<Request> = pres.iter().map(|&pre| Request::GetLoc { pre }).collect();
        self.call_chunked(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::MaybeLoc(l) => Ok(l),
                other => Err(unexpected(other)),
            })
            .collect()
    }

    // ---- tests -----------------------------------------------------------

    /// Containment test: does the subtree rooted at `loc` contain a node
    /// with tag value `value`?
    pub fn containment(&mut self, loc: Loc, value: u64) -> Result<bool, CoreError> {
        Ok(self.containment_many(&[loc], value)?[0])
    }

    /// Batched containment test at a single point — one round trip for the
    /// whole candidate set (the server evaluates its shares, the client its
    /// regenerated shares, sums decide). A [`ClientFilter::set_batch_limit`]
    /// cap applies here too: the candidate set is evaluated in chunks of at
    /// most `limit` nodes per round trip (`Some(1)` = the per-node protocol).
    pub fn containment_many(&mut self, locs: &[Loc], value: u64) -> Result<Vec<bool>, CoreError> {
        if locs.is_empty() {
            return Ok(Vec::new());
        }
        let limit = self.batch_limit.unwrap_or(usize::MAX).max(1);
        let mut server_vals = Vec::with_capacity(locs.len());
        for chunk in locs.chunks(limit) {
            let pres: Vec<u32> = chunk.iter().map(|l| l.pre).collect();
            // Borrowed first-touch decode: the bulk Values payload is read
            // straight out of the transport's receive buffer (when aligned)
            // into our accumulator — no intermediate Vec per chunk.
            self.transport
                .call_with(
                    &Request::EvalMany { pres, point: value },
                    &mut |view| match view {
                        ResponseView::Values(vs) => {
                            server_vals.extend_from_slice(vs.as_slice());
                            Ok(())
                        }
                        ResponseView::Other(Response::Err(e)) => Err(CoreError::Transport(e)),
                        other => Err(unexpected(other.into_owned())),
                    },
                )?;
        }
        if server_vals.len() != locs.len() {
            return Err(CoreError::Transport("EvalMany length mismatch".into()));
        }
        self.stats.server_evals += locs.len() as u64;
        self.stats.containment_tests += locs.len() as u64;
        let field = self.ring.field().clone();
        let mut out = Vec::with_capacity(locs.len());
        for (loc, sv) in locs.iter().zip(server_vals) {
            let client_poly = self.client_share(loc.pre);
            let cv = self.ring.eval(&client_poly, value);
            self.stats.client_evals += 1;
            out.push(field.add(cv, sv) == 0);
        }
        Ok(out)
    }

    /// Equality test: is the tag of the node at `loc` exactly `value`?
    ///
    /// Reconstructs the node's polynomial and all its children's, divides,
    /// and compares the extracted root (§3, §5.2). Costs one `Children` and
    /// one `GetPolys` round trip plus `1 + #children` share regenerations.
    pub fn equality(&mut self, loc: Loc, value: u64) -> Result<bool, CoreError> {
        Ok(self.equality_many(&[loc], value)?[0])
    }

    /// Batched equality test: the `Children` lookups of the whole candidate
    /// set travel in one round trip, the `GetPolys` fetches in a second —
    /// two waves for any number of candidates instead of two per candidate.
    /// Reconstruction work and counters are identical to the one-at-a-time
    /// path.
    pub fn equality_many(&mut self, locs: &[Loc], value: u64) -> Result<Vec<bool>, CoreError> {
        let tags = self.tag_values_many(locs)?;
        Ok(tags.into_iter().map(|t| t == Some(value)).collect())
    }

    /// Recovers the tag *value* of each node (`None` never occurs today —
    /// indeterminate outcomes are errors instead). Shared by the equality
    /// tests and diagnostics.
    fn tag_values_many(&mut self, locs: &[Loc]) -> Result<Vec<Option<u64>>, CoreError> {
        if locs.is_empty() {
            return Ok(Vec::new());
        }
        self.stats.equality_tests += locs.len() as u64;
        // Wave 1: every candidate's children.
        let children = self.children_many(&locs.iter().map(|l| l.pre).collect::<Vec<_>>())?;
        // Wave 2: every candidate's polynomial family (itself + children).
        let families: Vec<Vec<u32>> = locs
            .iter()
            .zip(&children)
            .map(|(loc, kids)| {
                let mut pres = Vec::with_capacity(kids.len() + 1);
                pres.push(loc.pre);
                pres.extend(kids.iter().map(|l| l.pre));
                pres
            })
            .collect();
        let reqs: Vec<Request> = families
            .iter()
            .map(|pres| Request::GetPolys { pres: pres.clone() })
            .collect();
        let responses = self.call_chunked(&reqs)?;
        // Local reconstruction per candidate.
        let mut out = Vec::with_capacity(locs.len());
        for ((loc, pres), resp) in locs.iter().zip(&families).zip(responses) {
            let polys = match resp {
                Response::Polys(ps) => ps,
                Response::Err(e) => return Err(CoreError::Transport(e)),
                other => return Err(unexpected(other)),
            };
            if polys.len() != pres.len() {
                return Err(CoreError::Transport("GetPolys length mismatch".into()));
            }
            self.stats.polys_fetched += polys.len() as u64;
            // Reconstruct the node polynomial and the product of its
            // children in the evaluation domain. Per child the dominant
            // cost stays O(n²) — the wire format is coefficient-domain, so
            // each dense reconstructed sum pays one forward transform — but
            // the transform is table-ops cheap, the fold itself is O(n)
            // pointwise, and verified root extraction drops from an O(n²)
            // ring multiply to O(n) component checks.
            let f = self.reconstruct_node_evals(pres[0], &polys[0])?;
            let mut g = self.ring.evals_one();
            for (pre, packed) in pres[1..].iter().zip(&polys[1..]) {
                let child = self.reconstruct_node_evals(*pre, packed)?;
                self.ring.eval_mul_assign(&mut g, &child);
            }
            out.push(
                match extract_root_evals(&self.ring, &f, &g, self.verify_equality) {
                    RootOutcome::Root(t) => Some(t),
                    RootOutcome::Inconsistent => {
                        return Err(CoreError::Corrupt(format!(
                            "node pre={} does not factor as (x - t) * children",
                            loc.pre
                        )))
                    }
                    RootOutcome::Indeterminate => {
                        return Err(CoreError::Indeterminate { pre: loc.pre })
                    }
                },
            );
        }
        Ok(out)
    }

    /// Decrypts the tag value of a node — only possible with the secrets;
    /// used by examples to show what the client can do that the server
    /// cannot.
    pub fn reveal_tag_value(&mut self, loc: Loc) -> Result<u64, CoreError> {
        self.tag_values_many(&[loc])?[0].ok_or(CoreError::Indeterminate { pre: loc.pre })
    }

    /// Reconstructs `server + client` for one node and lifts it into the
    /// evaluation domain (the representation the equality test runs in).
    fn reconstruct_node_evals(&mut self, pre: u32, packed: &[u8]) -> Result<EvalPoly, CoreError> {
        let mut sum = self.packer.unpack_radix(&self.ring, packed)?;
        let client = self.client_share(pre);
        self.ring.add_assign(&mut sum, &client);
        self.stats.reconstructions += 1;
        Ok(self.ring.to_evals(&sum))
    }

    /// Regenerates the client share of node `pre` from the seed (or serves
    /// it from the cache when enabled).
    fn client_share(&mut self, pre: u32) -> RingPoly {
        if let Some(cache) = &mut self.share_cache {
            if let Some(share) = cache.get(pre) {
                self.stats.share_cache_hits += 1;
                return share.clone();
            }
            self.stats.share_cache_misses += 1;
        }
        self.stats.shares_regenerated += 1;
        let mut prg = node_prg(&self.seed, pre as u64);
        let share = random_poly(&self.ring, &mut prg);
        if let Some(cache) = &mut self.share_cache {
            if cache.insert(pre, share.clone()) {
                self.stats.share_cache_evictions += 1;
            }
        }
        share
    }

    // ---- writes -----------------------------------------------------------

    /// Inserts pre-split server-share rows (the write plane's wire unit).
    /// Over a sharded router the rows fan to their owning shards; over a
    /// fleet each row is re-split per party. Returns how many rows were
    /// applied.
    pub fn insert_rows(&mut self, rows: Vec<(Loc, Vec<u8>)>) -> Result<u64, CoreError> {
        let n = match self.transport.call(&Request::Insert { rows })? {
            Response::Count(n) => n,
            other => return Err(unexpected(other)),
        };
        self.invalidate_shares();
        Ok(n)
    }

    /// Deletes rows by `pre` (idempotent: missing `pre`s are skipped).
    /// Returns how many rows were removed.
    pub fn delete_pres(&mut self, pres: Vec<u32>) -> Result<u64, CoreError> {
        let n = match self.transport.call(&Request::Delete { pres })? {
            Response::Count(n) => n,
            other => return Err(unexpected(other)),
        };
        self.invalidate_shares();
        Ok(n)
    }

    /// The highest `pre` the store holds (0 when empty) — the write
    /// plane's offset-allocation handshake: new documents are encoded at
    /// `offset = max_pre` so their numbering extends the forest.
    pub fn max_pre(&mut self) -> Result<u32, CoreError> {
        match self.transport.call(&Request::MaxPre)? {
            Response::Count(n) => Ok(n as u32),
            other => Err(unexpected(other)),
        }
    }

    /// Drops every cached client share. Shares derive from `(seed, pre)`
    /// alone, so cached entries never become *incorrect* — but after a
    /// delete the memo would keep paying capacity for nodes that no longer
    /// exist, and a cursor-fenced caller re-walking the store should start
    /// from the PRG, not a working set shaped by the pre-write tree.
    /// Called automatically by the write passthroughs.
    pub fn invalidate_shares(&mut self) {
        if let Some(cache) = &mut self.share_cache {
            *cache = ShareCache::new(cache.cap);
        }
    }

    // ---- the aggregation plane --------------------------------------------
    //
    // COUNT/SUM/AVG primitives. The orchestration (predicate walk, range
    // filtering, retry-on-conflict) lives in [`crate::aggregate`]; this
    // layer owns the protocol shape and the share arithmetic.

    /// How many data shards the endpoint spreads rows across (1 for a bare
    /// server). Aggregate closing frames must be split by the public
    /// `(pre − 1) mod S` partition because every shard fences on its own
    /// epoch; a router answers this locally, so discovery is free.
    pub fn shard_count(&mut self) -> Result<u32, CoreError> {
        match self.transport.call(&Request::ShardCount)? {
            Response::Count(n) => Ok(n as u32),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot wave: the document roots and every shard's store epoch in
    /// one batch. The epochs are the aggregate's fence — the closing wave
    /// replays them, and any interleaved write becomes a typed
    /// [`CoreError::EpochConflict`] instead of a silently mixed answer.
    pub fn roots_with_epochs(&mut self) -> Result<(Vec<Loc>, Vec<u64>), CoreError> {
        let mut resps = self
            .transport
            .call_batch(&[Request::Roots, Request::Epoch])?;
        if resps.len() != 2 {
            return Err(CoreError::Transport(
                "snapshot batch length mismatch".into(),
            ));
        }
        let epochs = match resps.pop().expect("length checked") {
            // A bare server answers its single epoch; a router keeps the
            // per-shard epochs separate, in shard order.
            Response::Count(e) => vec![e],
            Response::Values(es) => es,
            Response::Err(e) => return Err(CoreError::Transport(e)),
            other => return Err(unexpected(other)),
        };
        let roots = match resps.pop().expect("length checked") {
            Response::Locs(ls) => ls,
            Response::Err(e) => return Err(CoreError::Transport(e)),
            other => return Err(unexpected(other)),
        };
        Ok((roots, epochs))
    }

    /// One aggregate wave: per-shard [`Request::Agg`] frames in a single
    /// batch, answers in frame order. A fence refusal — a write landed
    /// since the epoch snapshot — surfaces as the typed
    /// [`CoreError::EpochConflict`] so callers can retry from a fresh
    /// snapshot instead of mixing two store states.
    #[allow(clippy::type_complexity)]
    pub fn agg_wave(
        &mut self,
        frames: Vec<Request>,
    ) -> Result<Vec<(Vec<u32>, Vec<Vec<u8>>)>, CoreError> {
        if frames.is_empty() {
            return Ok(Vec::new());
        }
        self.transport
            .call_batch(&frames)?
            .into_iter()
            .map(|resp| match resp {
                Response::Agg { found, partials } => Ok((found, partials)),
                Response::Err(e) if e.starts_with(AGG_FENCE) => Err(CoreError::EpochConflict(e)),
                Response::Err(e) => Err(CoreError::Transport(e)),
                other => Err(unexpected(other)),
            })
            .collect()
    }

    /// Reconstructs one grouped partial: unpacks the server-side pointwise
    /// share-sum, adds the regenerated client share of every group member,
    /// and reads the digit encoding back out as an integer (carries
    /// applied). Exact by construction — a group never exceeds `q − 1`
    /// rows, so no digit sum wraps the field.
    pub fn group_total(&mut self, group: &[u32], partial: &[u8]) -> Result<u128, CoreError> {
        let mut sum = self.packer.unpack_radix(&self.ring, partial)?;
        for &pre in group {
            let share = self.client_share(pre);
            self.ring.add_assign(&mut sum, &share);
        }
        self.stats.reconstructions += 1;
        digits_value(sum.coeffs())
    }

    /// The reconstructed value of a single numeric row (an `AGG_FETCH`
    /// answer): a group of one, narrowed back to the `u64` value domain.
    pub fn numeric_value(&mut self, pre: u32, packed: &[u8]) -> Result<u64, CoreError> {
        let v = self.group_total(&[pre], packed)?;
        u64::try_from(v)
            .map_err(|_| CoreError::Corrupt(format!("numeric row pre={pre} decodes beyond u64")))
    }

    // ---- pipelined access (the nextNode() protocol) -----------------------

    /// Opens a server-side cursor over the children of `pres`.
    pub fn open_children_cursor(&mut self, pres: Vec<u32>) -> Result<u32, CoreError> {
        match self.transport.call(&Request::OpenChildrenCursor { pres })? {
            Response::Cursor(c) => Ok(c),
            other => Err(unexpected(other)),
        }
    }

    /// Opens a server-side cursor over the descendants of `locs`.
    pub fn open_descendants_cursor(&mut self, locs: Vec<Loc>) -> Result<u32, CoreError> {
        match self
            .transport
            .call(&Request::OpenDescendantsCursor { locs })?
        {
            Response::Cursor(c) => Ok(c),
            other => Err(unexpected(other)),
        }
    }

    /// Pulls the next node from a cursor (`None` = exhausted). One round
    /// trip per node — the paper's thin-client pipeline.
    pub fn next_node(&mut self, cursor: u32) -> Result<Option<Loc>, CoreError> {
        match self.transport.call(&Request::Next { cursor })? {
            Response::MaybeLoc(l) => Ok(l),
            Response::Err(e) => Err(CoreError::Transport(e)),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a cursor early.
    pub fn close_cursor(&mut self, cursor: u32) -> Result<(), CoreError> {
        match self.transport.call(&Request::CloseCursor { cursor })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> CoreError {
    match resp {
        Response::Err(e) => CoreError::Transport(e),
        other => CoreError::Transport(format!("unexpected response {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::server::ServerFilter;
    use crate::transport::LocalTransport;

    fn client() -> ClientFilter<LocalTransport> {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(11);
        let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
        let server = ServerFilter::new(out.table, out.ring);
        ClientFilter::new(LocalTransport::new(server), map, seed).unwrap()
    }

    #[test]
    fn containment_semantics() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let va = c.value_of("a").unwrap();
        let vb = c.value_of("b").unwrap();
        let vc = c.value_of("c").unwrap();
        // Root contains everything present.
        assert!(c.containment(root, va).unwrap());
        assert!(c.containment(root, vb).unwrap());
        assert!(c.containment(root, vc).unwrap());
        // Subtree <a> contains b but not c.
        let a = c.children(root.pre).unwrap()[0];
        assert!(c.containment(a, vb).unwrap());
        assert!(!c.containment(a, vc).unwrap());
        // Leaf c contains only itself.
        let cnode = c.children(root.pre).unwrap()[1];
        assert!(c.containment(cnode, vc).unwrap());
        assert!(!c.containment(cnode, va).unwrap());
    }

    #[test]
    fn equality_semantics() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let vsite = c.value_of("site").unwrap();
        let va = c.value_of("a").unwrap();
        assert!(c.equality(root, vsite).unwrap());
        assert!(
            !c.equality(root, va).unwrap(),
            "root contains a but is not a"
        );
        let a = c.children(root.pre).unwrap()[0];
        assert!(c.equality(a, va).unwrap());
        // reveal_tag_value decrypts the exact tag.
        assert_eq!(c.reveal_tag_value(a).unwrap(), va);
    }

    #[test]
    fn batched_containment_matches_single() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let all = {
            let mut v = vec![root];
            v.extend(c.descendants(root).unwrap());
            v
        };
        let vb = c.value_of("b").unwrap();
        let batched = c.containment_many(&all, vb).unwrap();
        for (loc, &b) in all.iter().zip(&batched) {
            assert_eq!(c.containment(*loc, vb).unwrap(), b, "pre={}", loc.pre);
        }
    }

    #[test]
    fn stats_track_costs() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let va = c.value_of("a").unwrap();
        c.containment(root, va).unwrap();
        let s = c.stats();
        assert_eq!(s.containment_tests, 1);
        assert_eq!(s.client_evals, 1);
        assert_eq!(s.server_evals, 1);
        c.equality(root, va).unwrap();
        let s = c.stats();
        assert_eq!(s.equality_tests, 1);
        // Root has 2 children: 3 polys fetched, 3 reconstructions.
        assert_eq!(s.polys_fetched, 3);
        assert_eq!(s.reconstructions, 3);
    }

    #[test]
    fn pipelined_cursor_walk() {
        let mut c = client();
        let cursor = c.open_children_cursor(vec![1]).unwrap();
        let mut pres = Vec::new();
        while let Some(l) = c.next_node(cursor).unwrap() {
            pres.push(l.pre);
        }
        assert_eq!(pres, vec![2, 5]);
        // Each Next was its own round trip (thin client).
        assert!(c.transport_stats().round_trips >= 4);
    }

    #[test]
    fn share_cache_changes_costs_not_answers() {
        let mut plain = client();
        let mut cached = client();
        cached.set_share_cache(true);
        let root = plain.root().unwrap().unwrap();
        let vb = plain.value_of("b").unwrap();
        let all = {
            let mut v = vec![root];
            v.extend(plain.descendants(root).unwrap());
            v
        };
        // Run the same containment workload three times on each client.
        let mut answers_plain = Vec::new();
        let mut answers_cached = Vec::new();
        let root_c = cached.root().unwrap().unwrap();
        let all_c = {
            let mut v = vec![root_c];
            v.extend(cached.descendants(root_c).unwrap());
            v
        };
        for _ in 0..3 {
            answers_plain.push(plain.containment_many(&all, vb).unwrap());
            answers_cached.push(cached.containment_many(&all_c, vb).unwrap());
        }
        assert_eq!(answers_plain, answers_cached, "cache must be transparent");
        // The cached client regenerated each share once; repeats were hits.
        assert_eq!(cached.stats().shares_regenerated, all.len() as u64);
        assert_eq!(cached.stats().share_cache_hits, 2 * all.len() as u64);
        assert_eq!(cached.cached_shares(), all.len());
        // The plain client regenerated every time.
        assert_eq!(plain.stats().shares_regenerated, 3 * all.len() as u64);
        assert_eq!(plain.stats().share_cache_hits, 0);
        // Disabling clears the memo.
        cached.set_share_cache(false);
        assert_eq!(cached.cached_shares(), 0);
    }

    #[test]
    fn share_cache_capacity_bounds_memory_and_evicts() {
        let mut c = client();
        c.set_share_cache_capacity(2);
        assert_eq!(c.share_cache_capacity(), Some(2));
        let root = c.root().unwrap().unwrap();
        let vb = c.value_of("b").unwrap();
        let all = {
            let mut v = vec![root];
            v.extend(c.descendants(root).unwrap());
            v
        };
        assert!(all.len() > 2, "fixture must exceed the cap");
        // Repeated sweeps over 5 nodes through a 2-slot cache: the cache
        // never exceeds its cap and must evict.
        let mut uncached = client();
        for _ in 0..3 {
            let a = c.containment_many(&all, vb).unwrap();
            let b = uncached.containment_many(&all, vb).unwrap();
            assert_eq!(a, b, "bounded cache must stay transparent");
            assert!(c.cached_shares() <= 2);
        }
        let s = c.stats();
        assert!(s.share_cache_evictions > 0, "{s:?}");
        assert_eq!(
            s.share_cache_misses, s.shares_regenerated,
            "every miss regenerates"
        );
        assert_eq!(
            s.share_cache_hits + s.share_cache_misses,
            3 * all.len() as u64
        );
        // cap = 0 disables.
        c.set_share_cache_capacity(0);
        assert_eq!(c.share_cache_capacity(), None);
        assert_eq!(c.cached_shares(), 0);
    }

    #[test]
    fn batched_structure_fetches_match_singles() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let all = {
            let mut v = vec![root];
            v.extend(c.descendants(root).unwrap());
            v
        };
        let pres: Vec<u32> = all.iter().map(|l| l.pre).collect();
        let before = c.transport_stats().round_trips;
        let many = c.children_many(&pres).unwrap();
        assert_eq!(
            c.transport_stats().round_trips - before,
            1,
            "one wave for the whole frontier"
        );
        for (pre, kids) in pres.iter().zip(&many) {
            assert_eq!(kids, &c.children(*pre).unwrap(), "pre={pre}");
        }
        let many_desc = c.descendants_many(&all).unwrap();
        for (loc, desc) in all.iter().zip(&many_desc) {
            assert_eq!(desc, &c.descendants(*loc).unwrap(), "pre={}", loc.pre);
        }
        let locs = c.locs_of_many(&[1, 999, 3]).unwrap();
        assert_eq!(locs[0].unwrap().pre, 1);
        assert!(locs[1].is_none());
        assert_eq!(locs[2].unwrap().pre, 3);
    }

    #[test]
    fn batch_limit_trades_round_trips_not_answers() {
        let mut batched = client();
        let mut unbatched = client();
        unbatched.set_batch_limit(Some(1));
        assert_eq!(unbatched.batch_limit(), Some(1));
        let pres: Vec<u32> = (1..=5).collect();
        let b0 = batched.transport_stats().round_trips;
        let u0 = unbatched.transport_stats().round_trips;
        let a = batched.children_many(&pres).unwrap();
        let b = unbatched.children_many(&pres).unwrap();
        assert_eq!(a, b, "batching is invisible in the answers");
        assert_eq!(batched.transport_stats().round_trips - b0, 1);
        assert_eq!(
            unbatched.transport_stats().round_trips - u0,
            5,
            "limit 1 = the old one-request-per-round-trip shape"
        );
        assert_eq!(batched.transport_stats().batched_requests, 5);
        assert_eq!(unbatched.transport_stats().batched_requests, 0);
    }

    #[test]
    fn equality_many_matches_sequential() {
        let mut c = client();
        let root = c.root().unwrap().unwrap();
        let all = {
            let mut v = vec![root];
            v.extend(c.descendants(root).unwrap());
            v
        };
        let vb = c.value_of("b").unwrap();
        let before = c.transport_stats().round_trips;
        let many = c.equality_many(&all, vb).unwrap();
        let waves = c.transport_stats().round_trips - before;
        assert_eq!(waves, 2, "children wave + polys wave");
        let mut fresh = client();
        for (loc, &m) in all.iter().zip(&many) {
            assert_eq!(fresh.equality(*loc, vb).unwrap(), m, "pre={}", loc.pre);
        }
        // Same protocol work per candidate, fewer round trips.
        assert_eq!(c.stats().equality_tests, all.len() as u64);
        assert_eq!(c.stats().polys_fetched, fresh.stats().polys_fetched);
    }

    #[test]
    fn writes_pass_through_and_fence_cursors() {
        let mut c = client();
        c.set_share_cache(true);
        let root = c.root().unwrap().unwrap();
        let vb = c.value_of("b").unwrap();
        c.containment(root, vb).unwrap();
        assert!(c.cached_shares() > 0);
        let n0 = c.count().unwrap();
        let cursor = c.open_children_cursor(vec![1]).unwrap();

        // A decodable packed polynomial for the new row.
        let poly = {
            let ring = c.ring().clone();
            let q = ring.field().order();
            let mut x = 0xD00Du64;
            let coeffs = (0..ring.len())
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect();
            Packer::new(&ring).pack_radix(&ring.poly_from_coeffs(coeffs).unwrap())
        };
        let loc = Loc {
            pre: 40,
            post: 40,
            parent: 0,
        };
        assert_eq!(c.insert_rows(vec![(loc, poly)]).unwrap(), 1);
        assert_eq!(c.count().unwrap(), n0 + 1);
        assert_eq!(c.max_pre().unwrap(), 40);
        assert_eq!(c.cached_shares(), 0, "a write clears the share memo");

        // The pre-write cursor is fenced, not silently wrong.
        let err = c.next_node(cursor).unwrap_err();
        assert!(err.to_string().contains("epoch"), "{err}");

        assert_eq!(c.delete_pres(vec![40, 77]).unwrap(), 1);
        assert_eq!(c.count().unwrap(), n0);
    }

    #[test]
    fn wrong_seed_breaks_tests() {
        // A client with the wrong seed regenerates garbage shares: the
        // containment test of a *present* tag fails with overwhelming
        // probability — the data is meaningless without the key.
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let good = Seed::from_test_key(11);
        let bad = Seed::from_test_key(12);
        let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &good).unwrap();
        let server = ServerFilter::new(out.table, out.ring);
        let mut c = ClientFilter::new(LocalTransport::new(server), map, bad).unwrap();
        let root = c.root().unwrap().unwrap();
        let vsite = c.value_of("site").unwrap();
        assert!(
            !c.containment(root, vsite).unwrap(),
            "wrong seed must not decrypt"
        );
        assert!(
            c.equality(root, vsite).is_err(),
            "reconstruction is inconsistent"
        );
    }
}
