#![warn(missing_docs)]

//! The paper's system proper: encoding, the distributed filter, and the two
//! query engines.
//!
//! Component map (mirrors the paper's figure 3 architecture):
//!
//! | Paper component  | Module |
//! |------------------|--------|
//! | map file         | [`map`] — secret tag-name → `F_q` assignment |
//! | `MySQLEncode`    | [`encode`] — streaming SAX encoder filling the server table |
//! | `ServerFilter`   | [`server`] — evaluates stored shares, walks the tree, buffers cursors |
//! | RMI              | [`protocol`] + [`transport`] — binary message protocol (single + batch frames) over in-process or TCP links |
//! | `ClientFilter`   | [`client`] — regenerates client shares from the seed, combines evaluations, batch-first fetch APIs |
//! | —                | [`shard`] — deterministic `pre → shard` partition, `ShardedServer` (S independent filters) |
//! | —                | [`router`] — `ShardRouter`: splits batches by shard, concurrent dispatch, document-order merge |
//! | `SimpleQuery`    | [`engine::SimpleEngine`] |
//! | `AdvancedQuery`  | [`engine::AdvancedEngine`] |
//! | —                | [`mod@reference`] — plaintext XPath oracle (ground truth for Fig 7 accuracy) |
//! | —                | [`facade::EncryptedDb`] — one-stop construction for examples and tests |
//!
//! The two *matching rules* (§6.3 "strictness") are [`engine::MatchRule`]:
//! `Containment` (non-strict, one evaluation) and `Equality` (strict,
//! polynomial reconstruction + division).

pub mod accuracy;
pub mod client;
pub mod encode;
pub mod engine;
pub mod error;
pub mod facade;
pub mod map;
pub mod protocol;
pub mod reference;
pub mod router;
pub mod server;
pub mod shard;
pub mod transport;

pub use accuracy::accuracy_percent;
pub use client::{ClientFilter, ClientStats};
pub use encode::{encode_document, encode_dom, encode_events, EncodeOutput, EncodeStats};
pub use engine::{
    AdvancedEngine, Engine, EngineKind, FetchMode, MatchRule, QueryOutcome, QueryStats,
    SimpleEngine,
};
pub use error::CoreError;
pub use facade::{EncryptedDb, RemoteDb, RemoteMuxDb};
pub use map::MapFile;
pub use reference::reference_eval;
pub use router::ShardRouter;
pub use server::{ServerFilter, ServerStats};
pub use shard::{partition_table, ShardSpec, ShardedServer};
pub use transport::{
    serve_tcp, serve_tcp_mux, serve_tcp_sharded, LocalTransport, MuxPool, MuxTransport,
    PendingCall, TcpTransport, Transport,
};
