#![warn(missing_docs)]

//! The paper's system proper: encoding, the distributed filter, and the two
//! query engines.
//!
//! Component map (mirrors the paper's figure 3 architecture):
//!
//! | Paper component  | Module |
//! |------------------|--------|
//! | map file         | [`map`] — secret tag-name → `F_q` assignment |
//! | `MySQLEncode`    | [`encode`] — streaming SAX encoder filling the server table |
//! | `ServerFilter`   | [`server`] — evaluates stored shares, walks the tree, buffers cursors |
//! | RMI              | [`protocol`] + [`transport`] — binary message protocol (single + batch frames) over in-process or TCP links |
//! | `ClientFilter`   | [`client`] — regenerates client shares from the seed, combines evaluations, batch-first fetch APIs |
//! | —                | [`shard`] — deterministic `pre → shard` partition, `ShardedServer` (S independent filters) |
//! | —                | [`router`] — `ShardRouter`: splits batches by shard, concurrent dispatch, document-order merge |
//! | `SimpleQuery`    | [`engine::SimpleEngine`] |
//! | `AdvancedQuery`  | [`engine::AdvancedEngine`] |
//! | —                | [`mod@reference`] — plaintext XPath oracle (ground truth for Fig 7 accuracy) |
//! | —                | [`fleet`] — t-of-n multi-party deployment: per-party share stores, fan-out transport, verified reconstruction |
//! | —                | [`facade::EncryptedDb`] — one-stop construction for examples and tests |
//!
//! The two *matching rules* (§6.3 "strictness") are [`engine::MatchRule`]:
//! `Containment` (non-strict, one evaluation) and `Equality` (strict,
//! polynomial reconstruction + division).

pub mod accuracy;
pub mod aggregate;
pub mod chaos;
pub mod client;
pub mod encode;
pub mod engine;
pub mod error;
pub mod facade;
pub mod fleet;
pub mod map;
pub mod protocol;
pub mod reference;
pub mod router;
pub mod server;
pub mod shard;
pub mod transport;

pub use accuracy::accuracy_percent;
pub use aggregate::{run_aggregate, AggOp, AggregateOutcome, AggregateSpec};
pub use chaos::{ChaosConfig, ChaosProxy, ChaosTransport};
pub use client::{ClientFilter, ClientStats};
pub use encode::{
    default_threads, encode_document, encode_document_at, encode_document_fleet,
    encode_document_parallel, encode_document_parallel_with, encode_dom, encode_events,
    encode_events_parallel_with, fleet_mac_key, split_fleet, EncodeOutput, EncodeStats,
    FleetEncodeOutput, FleetSpec, PartyStore,
};
pub use engine::{
    AdvancedEngine, Engine, EngineKind, FetchMode, MatchRule, QueryOutcome, QueryStats,
    SimpleEngine,
};
pub use error::CoreError;
pub use facade::{
    EncryptedDb, FleetDb, InsertOutcome, RemoteDb, RemoteFleetDb, RemoteMuxDb, RemoteMuxFleetDb,
};
pub use fleet::{
    connect_fleet, connect_fleet_mux, local_fleet_router, local_fleet_router_wrapped, party_server,
    Dialer, FleetLeg, FleetTransport, LocalPartyTransport, PartyHealth, PartyStatus,
    ResilienceConfig,
};
pub use map::MapFile;
pub use reference::{reference_aggregate, reference_eval, RefAggregate};
pub use router::ShardRouter;
pub use server::{ServerFilter, ServerStats};
pub use shard::{partition_table, ShardSpec, ShardedServer};
pub use transport::{
    serve_tcp, serve_tcp_mux, serve_tcp_mux_auto, serve_tcp_mux_opts, serve_tcp_sharded,
    serve_tcp_sharded_auto, Deadline, LocalTransport, MuxHostOptions, MuxPool, MuxTransport,
    PendingCall, TcpTransport, Transport, DEFAULT_MUX_WRITE_STALL,
};
