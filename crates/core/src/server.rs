//! The server side of the filter (§5.2).
//!
//! The server holds only server shares and the public tree structure. It can
//! evaluate its shares at points the client names, enumerate children and
//! descendants through the B-tree indices, and buffer intermediate result
//! queues as cursors ("the big server will do the buffering of the
//! intermediate results" — §5.2). It learns evaluation points and access
//! patterns, never tag names or plaintext polynomials.

use crate::protocol::{Request, Response, AGG_CHECK, AGG_FENCE, AGG_FETCH, AGG_SUM};
use ssx_poly::{EvalPoly, Packer, RingCtx, RingPoly};
use ssx_store::{Loc, Row, Table, NUM_PLANE_BASE};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Error message a [`Request::Next`] gets when the store mutated after the
/// cursor was opened: the buffered queue may no longer reflect the table, so
/// the merge would be silently wrong — the client must re-plan instead. The
/// prefix is stable for client-side detection (the write-plane analogue of
/// the reshard fence).
pub const EPOCH_FENCE: &str = "store epoch changed (write since cursor opened); reopen cursor";

/// Upper bound on decoded evaluation-domain rows kept in memory. Each entry
/// costs `q − 1` words; at the paper's `q = 83` a full cache of this size is
/// ~0.7 GB — beyond it the server still answers, it just re-decodes.
const EVAL_CACHE_MAX_ENTRIES: usize = 1 << 20;

/// Upper bound on concurrently open cursors. Drained cursors are dropped on
/// their final `Next` and clients release abandoned ones with `CloseCursor`,
/// so a well-behaved client keeps a handful alive; the cap turns a leaky or
/// hostile client into an explicit error instead of unbounded server memory.
pub const MAX_OPEN_CURSORS: usize = 1024;

/// Server-side counters (reported by benches and the TCP example).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests handled.
    pub requests: u64,
    /// Single-point share evaluations performed.
    pub evaluations: u64,
    /// Evaluations answered from the decoded evaluation-domain cache
    /// (an O(1) component lookup instead of unpack + Horner).
    pub eval_cache_hits: u64,
    /// Packed polynomials served to the client.
    pub polys_served: u64,
    /// Cursors opened.
    pub cursors_opened: u64,
    /// Locations streamed through cursors.
    pub cursor_items: u64,
    /// Rows added through the write plane.
    pub rows_inserted: u64,
    /// Rows removed through the write plane.
    pub rows_removed: u64,
}

/// A server-buffered result queue plus the store epoch it was built under.
struct Cursor {
    birth: u64,
    queue: VecDeque<Loc>,
}

/// The `ServerFilter`: table + ring + request handler.
pub struct ServerFilter {
    table: Table,
    ring: RingCtx,
    packer: Packer,
    stats: ServerStats,
    cursors: HashMap<u32, Cursor>,
    next_cursor: u32,
    /// Bumped by every applied mutation. Cursors record the epoch they were
    /// opened under; a `Next` across a bump is refused with [`EPOCH_FENCE`]
    /// instead of merging a stale buffer.
    epoch: u64,
    /// Rows decoded into the evaluation domain on first touch: every later
    /// evaluation of that share is an O(1) lookup ("the big server will do
    /// the buffering", §5.2). The stored table keeps the packed coefficient
    /// form — this cache is derived data, never persisted.
    eval_cache: HashMap<u32, EvalPoly>,
    /// Reused coefficient buffer for first-touch row decodes (the unpack
    /// boundary allocates nothing in steady state).
    scratch_row: RingPoly,
}

impl ServerFilter {
    /// Wraps a filled table. `ring` must match the parameters the table was
    /// encoded with (the packed length is checked).
    pub fn new(table: Table, ring: RingCtx) -> Self {
        let packer = Packer::new(&ring);
        assert_eq!(
            packer.radix_len(),
            table.poly_len(),
            "table was packed for a different field"
        );
        let scratch_row = ring.zero();
        ServerFilter {
            table,
            ring,
            packer,
            stats: ServerStats::default(),
            cursors: HashMap::new(),
            next_cursor: 1,
            epoch: 0,
            eval_cache: HashMap::new(),
            scratch_row,
        }
    }

    /// The current store epoch (bumped by every applied mutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying table (read access for size reports).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The ring the stored shares live in.
    pub fn ring(&self) -> &RingCtx {
        &self.ring
    }

    /// Consumes the filter, yielding its table — the rows move out intact
    /// (bit-identical packed bytes), which is what online re-sharding
    /// repartitions. Derived state (eval cache, cursors, counters) is
    /// dropped: it is rebuilt lazily on the new placement.
    pub fn into_table(self) -> Table {
        self.table
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resets the counters.
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }

    /// Evaluates the stored share of `pre` at `point`. The point is
    /// validated first — it arrives from the network and must not reach the
    /// ring arithmetic out of range.
    ///
    /// The first evaluation of a row unpacks it and transforms it into the
    /// evaluation domain; every subsequent evaluation at any nonzero point
    /// is then an O(1) component lookup instead of a Horner pass.
    fn eval_one(&mut self, pre: u32, point: u64) -> Result<u64, String> {
        if !self.ring.field().is_valid(point) {
            return Err(format!(
                "evaluation point {point} outside F_{}",
                self.ring.field().order()
            ));
        }
        if let Some(evals) = self.eval_cache.get(&pre) {
            self.stats.evaluations += 1;
            self.stats.eval_cache_hits += 1;
            return Ok(self.ring.eval_at(evals, point));
        }
        let row = self
            .table
            .by_pre(pre)
            .ok_or_else(|| format!("no node pre={pre}"))?;
        self.packer
            .unpack_radix_into(&row.poly, &mut self.scratch_row)
            .map_err(|e| format!("row pre={pre}: {e}"))?;
        let evals = self.ring.to_evals(&self.scratch_row);
        let value = self.ring.eval_at(&evals, point);
        if self.eval_cache.len() < EVAL_CACHE_MAX_ENTRIES {
            self.eval_cache.insert(pre, evals);
        }
        self.stats.evaluations += 1;
        Ok(value)
    }

    /// Handles one request. Never panics on malformed input — errors travel
    /// back as [`Response::Err`].
    pub fn handle(&mut self, req: &Request) -> Response {
        self.stats.requests += 1;
        match req {
            // Numeric-plane rows carry `parent = 0` so the nesting invariant
            // holds; they are value storage, not document roots — mask them
            // out of every structural answer. Document roots sort before the
            // numeric plane in the `(parent, pre)` index, so a shard whose
            // lowest parent-0 row is numeric holds no document root at all.
            Request::Root => Response::MaybeLoc(
                self.table
                    .root()
                    .map(|r| r.loc)
                    .filter(|l| l.pre < NUM_PLANE_BASE),
            ),
            Request::Roots => Response::Locs(
                self.table
                    .roots()
                    .into_iter()
                    .filter(|l| l.pre < NUM_PLANE_BASE)
                    .collect(),
            ),
            Request::GetLoc { pre } => Response::MaybeLoc(self.table.by_pre(*pre).map(|r| r.loc)),
            Request::Children { pre } => Response::Locs(
                self.table
                    .children_of(*pre)
                    .into_iter()
                    .filter(|l| l.pre < NUM_PLANE_BASE)
                    .collect(),
            ),
            Request::Descendants { loc } => Response::Locs(
                self.table
                    .descendants_of(*loc)
                    .into_iter()
                    .filter(|l| l.pre < NUM_PLANE_BASE)
                    .collect(),
            ),
            Request::Eval { pre, point } => match self.eval_one(*pre, *point) {
                Ok(v) => Response::Value(v),
                Err(e) => Response::Err(e),
            },
            Request::EvalMany { pres, point } => {
                let mut out = Vec::with_capacity(pres.len());
                for &pre in pres {
                    match self.eval_one(pre, *point) {
                        Ok(v) => out.push(v),
                        Err(e) => return Response::Err(e),
                    }
                }
                Response::Values(out)
            }
            Request::GetPolys { pres } => {
                let mut out = Vec::with_capacity(pres.len());
                for &pre in pres {
                    match self.table.by_pre(pre) {
                        Some(row) => {
                            self.stats.polys_served += 1;
                            out.push(row.poly.to_vec());
                        }
                        None => return Response::Err(format!("no node pre={pre}")),
                    }
                }
                Response::Polys(out)
            }
            Request::OpenChildrenCursor { pres } => {
                let mut queue = Vec::new();
                for &pre in pres {
                    queue.extend(self.table.children_of(pre));
                }
                self.open_cursor(queue)
            }
            Request::OpenDescendantsCursor { locs } => {
                let mut queue = Vec::new();
                for &loc in locs {
                    queue.extend(self.table.descendants_of(loc));
                }
                self.open_cursor(queue)
            }
            Request::Next { cursor } => match self.cursors.get_mut(cursor) {
                Some(c) => {
                    if c.birth != self.epoch {
                        // The buffer was built against a table that has since
                        // mutated; drop it and refuse explicitly rather than
                        // stream possibly-dangling locations.
                        self.cursors.remove(cursor);
                        return Response::Err(EPOCH_FENCE.into());
                    }
                    let item = c.queue.pop_front();
                    if item.is_some() {
                        self.stats.cursor_items += 1;
                    } else {
                        self.cursors.remove(cursor);
                    }
                    Response::MaybeLoc(item)
                }
                None => Response::Err(format!("no cursor {cursor}")),
            },
            Request::CloseCursor { cursor } => {
                self.cursors.remove(cursor);
                Response::Ok
            }
            Request::Count => Response::Count(self.table.len() as u64),
            Request::Shutdown => Response::Ok,
            // A bare filter is a 1-shard endpoint; sharded hosts intercept
            // this request before it reaches any filter.
            Request::ShardCount => Response::Count(1),
            // Repartitioning is a fleet-level operation; sharded hosts
            // intercept it before it reaches any filter.
            Request::Reshard { .. } => {
                Response::Err("reshard requires a sharded host endpoint".into())
            }
            // The mux handshake is a connection-level operation: the mux
            // host's reader intercepts it before any filter; everywhere
            // else (bare filter, thread-per-connection host, inside a
            // batch) it is a clean refusal the client can fall back on.
            Request::Hello { .. } => {
                Response::Err("mux handshake requires a mux host endpoint".into())
            }
            Request::Insert { rows } => self.apply_insert(rows),
            Request::Delete { pres } => self.apply_delete(pres),
            Request::MaxPre => Response::Count(self.table.max_pre() as u64),
            Request::Epoch => Response::Count(self.epoch),
            Request::Agg {
                op,
                pres,
                expect_epoch,
            } => self.handle_agg(*op, pres, *expect_epoch),
            Request::Batch(subs) => {
                let mut out = Vec::with_capacity(subs.len());
                for sub in subs {
                    out.push(match sub {
                        Request::Batch(_) | Request::ToShard { .. } => {
                            Response::Err("nested batch refused".into())
                        }
                        // The codec refuses these too; in-process callers get
                        // the same answer (writes don't reorder against the
                        // reads sharing the round trip).
                        Request::Insert { .. } | Request::Delete { .. } => {
                            Response::Err("write frame refused in batch".into())
                        }
                        _ => self.handle(sub),
                    });
                }
                Response::Batch(out)
            }
            Request::ToShard { .. } => {
                Response::Err("shard-tagged request reached an unsharded endpoint".into())
            }
        }
    }

    /// Answers one [`Request::Agg`] frame. The epoch fence comes first: a
    /// write that landed after the aggregate's snapshot wave invalidates the
    /// client's matched set, so the whole frame is refused with a stable
    /// [`AGG_FENCE`]-prefixed error rather than summing torn state. The
    /// server touches exactly the listed rows — it learns which *shard* an
    /// aggregate visited (it visits all of them) and how many rows rode the
    /// frame, never which rows matched which predicate, because the listed
    /// `pres` are indistinguishable from any other batched read's.
    fn handle_agg(&mut self, op: u8, pres: &[u32], expect_epoch: u64) -> Response {
        if self.epoch != expect_epoch {
            return Response::Err(format!(
                "{AGG_FENCE} (write since aggregate started); retry from a fresh snapshot"
            ));
        }
        match op {
            AGG_CHECK => Response::Agg {
                found: vec![],
                partials: vec![],
            },
            AGG_SUM => {
                // Pointwise share-sum in groups of at most `ring_len` rows:
                // numeric rows carry base-2 digits (0/1 coefficients), so a
                // group's digit sums stay below q and reconstruct exactly.
                let group = self.ring.len();
                let mut found = Vec::new();
                let mut partials = Vec::new();
                let mut acc = self.ring.zero();
                let mut in_group = 0usize;
                for &pre in pres {
                    let Some(row) = self.table.by_pre(pre) else {
                        continue;
                    };
                    if let Err(e) = self
                        .packer
                        .unpack_radix_into(&row.poly, &mut self.scratch_row)
                    {
                        return Response::Err(format!("row pre={pre}: {e}"));
                    }
                    self.ring.add_assign(&mut acc, &self.scratch_row);
                    found.push(pre);
                    in_group += 1;
                    if in_group == group {
                        partials.push(self.packer.pack_radix(&acc));
                        acc = self.ring.zero();
                        in_group = 0;
                    }
                }
                if in_group > 0 {
                    partials.push(self.packer.pack_radix(&acc));
                }
                Response::Agg { found, partials }
            }
            AGG_FETCH => {
                // The rows themselves (range-predicate evaluation); unlike
                // `GetPolys`, absent rows are skipped, not errors — an
                // element without a numeric value simply fails the range.
                let mut found = Vec::new();
                let mut partials = Vec::new();
                for &pre in pres {
                    if let Some(row) = self.table.by_pre(pre) {
                        self.stats.polys_served += 1;
                        found.push(pre);
                        partials.push(row.poly.to_vec());
                    }
                }
                Response::Agg { found, partials }
            }
            other => Response::Err(format!("unknown agg op {other}")),
        }
    }

    /// Applies one [`Request::Insert`] frame atomically: either every row
    /// lands or none do (a failed row rolls the earlier ones back before the
    /// error returns). Applied writes bump the epoch and drop any cached
    /// evaluation rows for the touched `pre`s — a re-used `pre` must never
    /// answer from the share it carried in a previous life.
    fn apply_insert(&mut self, rows: &[(Loc, Vec<u8>)]) -> Response {
        let mut done = Vec::with_capacity(rows.len());
        for (loc, poly) in rows {
            match self.table.insert(Row {
                loc: *loc,
                poly: poly.clone().into_boxed_slice(),
            }) {
                Ok(()) => done.push(loc.pre),
                Err(e) => {
                    for &pre in done.iter().rev() {
                        self.table.remove(pre).expect("rollback of fresh insert");
                    }
                    return Response::Err(format!("insert pre={}: {e}", loc.pre));
                }
            }
        }
        if !done.is_empty() {
            for pre in &done {
                self.eval_cache.remove(pre);
            }
            self.epoch += 1;
            self.stats.rows_inserted += done.len() as u64;
        }
        Response::Count(done.len() as u64)
    }

    /// Applies one [`Request::Delete`] frame. Missing `pre`s are skipped
    /// (delete is idempotent — a retried frame answers a smaller count, not
    /// an error); any removed row bumps the epoch and evicts its cached
    /// evaluation form.
    fn apply_delete(&mut self, pres: &[u32]) -> Response {
        let mut removed = 0u64;
        for &pre in pres {
            if self.table.remove(pre).is_ok() {
                self.eval_cache.remove(&pre);
                removed += 1;
            }
        }
        if removed > 0 {
            self.epoch += 1;
            self.stats.rows_removed += removed;
        }
        Response::Count(removed)
    }

    /// Number of cursors currently held open (leak diagnostics).
    pub fn open_cursors(&self) -> usize {
        self.cursors.len()
    }

    /// Opens a cursor over `queue` normalised to document order (sorted by
    /// `pre`, duplicates dropped) — the order every other node-set answer
    /// uses, and the order a sharded deployment can reproduce by merging
    /// per-shard cursor streams.
    fn open_cursor(&mut self, mut queue: Vec<Loc>) -> Response {
        if self.cursors.len() >= MAX_OPEN_CURSORS {
            return Response::Err(format!(
                "cursor limit reached ({MAX_OPEN_CURSORS} open); close or drain cursors first"
            ));
        }
        // Structural streams never surface numeric-plane value rows.
        queue.retain(|l| l.pre < NUM_PLANE_BASE);
        queue.sort_by_key(|l| l.pre);
        queue.dedup_by_key(|l| l.pre);
        let id = self.next_cursor;
        self.next_cursor = self.next_cursor.wrapping_add(1).max(1);
        self.cursors.insert(
            id,
            Cursor {
                birth: self.epoch,
                queue: VecDeque::from(queue),
            },
        );
        self.stats.cursors_opened += 1;
        Response::Cursor(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use ssx_prg::Seed;

    fn server() -> ServerFilter {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(5);
        let out = encode_document("<site><a><b/><b/></a><c/></site>", &map, &seed).unwrap();
        ServerFilter::new(out.table, out.ring)
    }

    #[test]
    fn structure_queries() {
        let mut s = server();
        match s.handle(&Request::Root) {
            Response::MaybeLoc(Some(l)) => assert_eq!(l.pre, 1),
            other => panic!("{other:?}"),
        }
        match s.handle(&Request::Children { pre: 1 }) {
            Response::Locs(ls) => {
                assert_eq!(ls.iter().map(|l| l.pre).collect::<Vec<_>>(), vec![2, 5])
            }
            other => panic!("{other:?}"),
        }
        match s.handle(&Request::Count) {
            Response::Count(5) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eval_and_errors() {
        let mut s = server();
        match s.handle(&Request::Eval { pre: 1, point: 3 }) {
            Response::Value(_) => {}
            other => panic!("{other:?}"),
        }
        match s.handle(&Request::Eval { pre: 99, point: 3 }) {
            Response::Err(msg) => assert!(msg.contains("99")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().evaluations, 1);
        match s.handle(&Request::EvalMany {
            pres: vec![1, 2, 3],
            point: 7,
        }) {
            Response::Values(vs) => assert_eq!(vs.len(), 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().evaluations, 4);
    }

    #[test]
    fn cursor_pipeline() {
        let mut s = server();
        let cursor = match s.handle(&Request::OpenChildrenCursor { pres: vec![1, 2] }) {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        // Children of 1 = {2, 5}; children of 2 = {3, 4}: four pulls + None,
        // streamed in document order.
        let mut pres = Vec::new();
        loop {
            match s.handle(&Request::Next { cursor }) {
                Response::MaybeLoc(Some(l)) => pres.push(l.pre),
                Response::MaybeLoc(None) => break,
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(pres, vec![2, 3, 4, 5]);
        // Cursor auto-closed after exhaustion.
        match s.handle(&Request::Next { cursor }) {
            Response::Err(_) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().cursor_items, 4);
        assert_eq!(s.open_cursors(), 0, "drained cursor must be dropped");
    }

    #[test]
    fn abandoned_cursors_are_bounded_and_closeable() {
        let mut s = server();
        // Open up to the cap without ever pulling.
        for _ in 0..MAX_OPEN_CURSORS {
            match s.handle(&Request::OpenChildrenCursor { pres: vec![1] }) {
                Response::Cursor(_) => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(s.open_cursors(), MAX_OPEN_CURSORS);
        // One more is refused, not buffered.
        let refused = match s.handle(&Request::OpenChildrenCursor { pres: vec![1] }) {
            Response::Err(msg) => msg,
            other => panic!("{other:?}"),
        };
        assert!(refused.contains("cursor limit"), "{refused}");
        // CloseCursor releases capacity.
        assert_eq!(s.handle(&Request::CloseCursor { cursor: 1 }), Response::Ok);
        assert_eq!(s.open_cursors(), MAX_OPEN_CURSORS - 1);
        match s.handle(&Request::OpenChildrenCursor { pres: vec![1] }) {
            Response::Cursor(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cursor_queue_is_document_ordered_and_deduped() {
        let mut s = server();
        // Overlapping descendant roots: root subtree contains the <a>
        // subtree; duplicates must collapse and order must be by pre.
        let root = match s.handle(&Request::Root) {
            Response::MaybeLoc(Some(l)) => l,
            other => panic!("{other:?}"),
        };
        let a = s.table().children_of(root.pre)[0];
        let cursor = match s.handle(&Request::OpenDescendantsCursor {
            locs: vec![root, a, root],
        }) {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        let mut pres = Vec::new();
        while let Response::MaybeLoc(Some(l)) = s.handle(&Request::Next { cursor }) {
            pres.push(l.pre);
        }
        assert_eq!(pres, vec![2, 3, 4, 5]);
    }

    #[test]
    fn batch_requests_answered_slotwise() {
        let mut s = server();
        let resp = s.handle(&Request::Batch(vec![
            Request::Count,
            Request::Children { pre: 1 },
            Request::Eval { pre: 999, point: 3 },
            Request::Batch(vec![Request::Count]),
        ]));
        match resp {
            Response::Batch(subs) => {
                assert_eq!(subs.len(), 4);
                assert_eq!(subs[0], Response::Count(5));
                assert!(matches!(&subs[1], Response::Locs(ls) if ls.len() == 2));
                assert!(matches!(&subs[2], Response::Err(_)), "bad slot is inline");
                assert!(matches!(&subs[3], Response::Err(_)), "nested batch refused");
            }
            other => panic!("{other:?}"),
        }
        // Envelope + each sub counted as server work.
        assert_eq!(s.stats().requests, 1 + 3);
        // Shard tags are a router/server-host concern, not ServerFilter's.
        assert!(matches!(
            s.handle(&Request::ToShard {
                shard: 0,
                req: Box::new(Request::Count)
            }),
            Response::Err(_)
        ));
    }

    #[test]
    fn repeat_evaluations_hit_the_eval_cache() {
        let mut s = server();
        // First eval of a row decodes it; later evals (any point) are hits.
        for point in [3u64, 7, 11, 3] {
            match s.handle(&Request::Eval { pre: 1, point }) {
                Response::Value(_) => {}
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(s.stats().evaluations, 4);
        assert_eq!(s.stats().eval_cache_hits, 3);
        // Cached answers must agree with a fresh server's.
        let mut fresh = server();
        for point in 1..83u64 {
            let a = match s.handle(&Request::Eval { pre: 2, point }) {
                Response::Value(v) => v,
                other => panic!("{other:?}"),
            };
            let b = match fresh.handle(&Request::Eval { pre: 2, point }) {
                Response::Value(v) => v,
                other => panic!("{other:?}"),
            };
            assert_eq!(a, b, "point={point}");
        }
    }

    /// Valid packed share bytes for one row, parameterised so different
    /// fills give different polynomials.
    fn row_bytes(s: &ServerFilter, fill: u64) -> Vec<u8> {
        let ring = s.ring();
        let q = ring.field().order();
        let mut x = fill | 1;
        let coeffs = (0..ring.len())
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect();
        Packer::new(ring).pack_radix(&ring.poly_from_coeffs(coeffs).unwrap())
    }

    #[test]
    fn insert_delete_round_trip_and_stats() {
        let mut s = server();
        let poly = row_bytes(&s, 7);
        let new = Loc {
            pre: 6,
            post: 6,
            parent: 0,
        };
        match s.handle(&Request::Insert {
            rows: vec![(new, poly.clone())],
        }) {
            Response::Count(1) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(s.handle(&Request::Count), Response::Count(6));
        assert_eq!(s.handle(&Request::MaxPre), Response::Count(6));
        match s.handle(&Request::GetPolys { pres: vec![6] }) {
            Response::Polys(ps) => assert_eq!(ps[0], poly),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().rows_inserted, 1);
        // Delete it; a second delete of the same pre is a clean zero.
        assert_eq!(
            s.handle(&Request::Delete { pres: vec![6] }),
            Response::Count(1)
        );
        assert_eq!(
            s.handle(&Request::Delete { pres: vec![6] }),
            Response::Count(0)
        );
        assert_eq!(s.handle(&Request::Count), Response::Count(5));
        assert_eq!(s.stats().rows_removed, 1);
    }

    #[test]
    fn failed_insert_rolls_back_whole_frame() {
        let mut s = server();
        let ok = row_bytes(&s, 1);
        let epoch_before = s.epoch();
        // Second row duplicates an existing pre: the whole frame must unwind.
        let rows = vec![
            (
                Loc {
                    pre: 6,
                    post: 6,
                    parent: 0,
                },
                ok.clone(),
            ),
            (
                Loc {
                    pre: 1,
                    post: 99,
                    parent: 0,
                },
                ok,
            ),
        ];
        match s.handle(&Request::Insert { rows }) {
            Response::Err(msg) => assert!(msg.contains("insert pre=1"), "{msg}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.handle(&Request::Count), Response::Count(5), "rolled back");
        assert_eq!(s.epoch(), epoch_before, "failed frame must not bump epoch");
        assert_eq!(s.stats().rows_inserted, 0);
    }

    #[test]
    fn writes_fence_open_cursors() {
        let mut s = server();
        let cursor = match s.handle(&Request::OpenChildrenCursor { pres: vec![1] }) {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        // One pull works before the write.
        assert!(matches!(
            s.handle(&Request::Next { cursor }),
            Response::MaybeLoc(Some(_))
        ));
        let new = Loc {
            pre: 6,
            post: 6,
            parent: 0,
        };
        let poly = row_bytes(&s, 3);
        assert_eq!(
            s.handle(&Request::Insert {
                rows: vec![(new, poly)]
            }),
            Response::Count(1)
        );
        // The cursor crossed an epoch bump: explicit fence, cursor dropped.
        match s.handle(&Request::Next { cursor }) {
            Response::Err(msg) => assert_eq!(msg, EPOCH_FENCE),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.open_cursors(), 0, "fenced cursor must be dropped");
        // A cursor opened after the write streams normally, and an
        // ineffective delete (nothing removed) does not fence it.
        let cursor = match s.handle(&Request::OpenChildrenCursor { pres: vec![1] }) {
            Response::Cursor(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            s.handle(&Request::Delete { pres: vec![99] }),
            Response::Count(0)
        );
        assert!(matches!(
            s.handle(&Request::Next { cursor }),
            Response::MaybeLoc(Some(_))
        ));
    }

    /// A pre that dies and is reborn with a different share must never
    /// answer evaluations from its previous life's cached decode.
    #[test]
    fn eval_cache_does_not_survive_rebirth_of_a_pre() {
        let mut s = server();
        let loc = Loc {
            pre: 6,
            post: 6,
            parent: 0,
        };
        let first = row_bytes(&s, 2);
        assert_eq!(
            s.handle(&Request::Insert {
                rows: vec![(loc, first)]
            }),
            Response::Count(1)
        );
        let before = match s.handle(&Request::Eval { pre: 6, point: 3 }) {
            Response::Value(v) => v,
            other => panic!("{other:?}"),
        };
        // Kill and re-insert the same pre with different share bytes.
        assert_eq!(
            s.handle(&Request::Delete { pres: vec![6] }),
            Response::Count(1)
        );
        let second = row_bytes(&s, 9);
        assert_eq!(
            s.handle(&Request::Insert {
                rows: vec![(loc, second.clone())]
            }),
            Response::Count(1)
        );
        let after = match s.handle(&Request::Eval { pre: 6, point: 3 }) {
            Response::Value(v) => v,
            other => panic!("{other:?}"),
        };
        assert_ne!(before, after, "stale eval cache served a dead share");
        // And the fresh answer matches a cold server over the same table.
        let mut cold = ServerFilter::new(s.table().clone(), s.ring().clone());
        let want = match cold.handle(&Request::Eval { pre: 6, point: 3 }) {
            Response::Value(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(after, want);
    }

    #[test]
    fn write_frames_refused_inside_batch() {
        let mut s = server();
        let resp = s.handle(&Request::Batch(vec![
            Request::Count,
            Request::Delete { pres: vec![1] },
        ]));
        match resp {
            Response::Batch(subs) => {
                assert_eq!(subs[0], Response::Count(5));
                assert!(matches!(&subs[1], Response::Err(_)));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.handle(&Request::Count),
            Response::Count(5),
            "no write applied"
        );
    }

    #[test]
    fn polys_served_counted() {
        let mut s = server();
        match s.handle(&Request::GetPolys { pres: vec![1, 2] }) {
            Response::Polys(ps) => {
                assert_eq!(ps.len(), 2);
                assert_eq!(ps[0].len(), 66, "f_83 radix-packed length");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.stats().polys_served, 2);
        match s.handle(&Request::GetPolys { pres: vec![77] }) {
            Response::Err(_) => {}
            other => panic!("{other:?}"),
        }
    }
}
