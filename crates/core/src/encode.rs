//! The streaming encoder — the paper's `MySQLEncode` (§5.1).
//!
//! Consumes SAX events with `O(depth)` memory: each open element keeps one
//! accumulator polynomial (the ring product of its finished children). When
//! an element closes, its polynomial `f = (x − map(tag)) · acc` is computed,
//! split into a PRG client share and a server share, and the server share is
//! stored as a `(pre, post, parent, poly)` row. The client share is
//! discarded — it is regenerated from `(seed, pre)` at query time.
//!
//! The accumulators live in the **evaluation domain** ([`ssx_poly::EvalPoly`]):
//! folding a finished child into its parent and applying `(x − map(tag))`
//! are both `O(q)` pointwise passes instead of `O(q²)` convolutions. The
//! polynomial returns to coefficient form only at the wire/storage boundary
//! (one inverse transform per node, just before the share split), so the
//! packed bytes are bit-identical to the coefficient-domain encoding.

use crate::error::CoreError;
use crate::map::MapFile;
use ssx_poly::{random_poly_into, EvalPoly, Packer, RingCtx, RingPoly};
use ssx_prg::{node_prg, Seed};
use ssx_store::{Loc, Row, Table};
use ssx_xml::{Document, NodeKind, PullParser, XmlEvent};
use std::time::{Duration, Instant};

/// Encoding cost metrics (the Fig 4 time series).
#[derive(Clone, Copy, Debug, Default)]
pub struct EncodeStats {
    /// Elements encoded (rows produced).
    pub elements: usize,
    /// Input document size in bytes.
    pub input_bytes: usize,
    /// Wall-clock encode time.
    pub elapsed: Duration,
    /// Maximum open-element depth observed (the encoder's memory bound).
    pub max_depth: usize,
}

/// Result of an encoding run: the filled server table plus the shared
/// context needed to query it.
#[derive(Debug)]
pub struct EncodeOutput {
    /// The server-side table (server shares only).
    pub table: Table,
    /// The ring both sides compute in.
    pub ring: RingCtx,
    /// Packer matching the table's polynomial payload.
    pub packer: Packer,
    /// Cost metrics.
    pub stats: EncodeStats,
}

struct Frame {
    pre: u32,
    parent_pre: u32,
    tag_value: u64,
    /// Product of the finished children, kept in the evaluation domain so
    /// each fold is `O(q)` pointwise.
    acc: EvalPoly,
    /// Elements already folded into `acc` (children subtree sizes). With
    /// `d` linear factors the node polynomial has exact degree
    /// `min(d, n−1)`, which bounds the inverse-transform work at the
    /// storage boundary.
    subtree_elems: usize,
}

/// Incremental encoder; drive it with [`Encoder::start`]/[`Encoder::end`].
struct Encoder<'a> {
    ring: RingCtx,
    packer: Packer,
    table: Table,
    map: &'a MapFile,
    seed: &'a Seed,
    stack: Vec<Frame>,
    pre: u32,
    post: u32,
    max_depth: usize,
    /// Scratch buffers reused across nodes; the per-node loop allocates
    /// only the row's own boxed byte payload.
    scratch_node: RingPoly,
    scratch_client: RingPoly,
    scratch_pack_work: Vec<u64>,
    scratch_pack_out: Vec<u8>,
}

impl<'a> Encoder<'a> {
    fn new(map: &'a MapFile, seed: &'a Seed) -> Result<Self, CoreError> {
        let ring = RingCtx::new(map.p(), map.e())?;
        let packer = Packer::new(&ring);
        let table = Table::new(packer.radix_len());
        let scratch_node = ring.zero();
        let scratch_client = ring.zero();
        Ok(Encoder {
            ring,
            packer,
            table,
            map,
            seed,
            stack: Vec::new(),
            pre: 0,
            post: 0,
            max_depth: 0,
            scratch_node,
            scratch_client,
            scratch_pack_work: Vec::new(),
            scratch_pack_out: Vec::new(),
        })
    }

    fn start(&mut self, name: &str) -> Result<(), CoreError> {
        let tag_value = self.map.value(name)?;
        self.pre += 1;
        let parent_pre = self.stack.last().map_or(0, |f| f.pre);
        self.stack.push(Frame {
            pre: self.pre,
            parent_pre,
            tag_value,
            acc: self.ring.evals_one(),
            subtree_elems: 0,
        });
        self.max_depth = self.max_depth.max(self.stack.len());
        Ok(())
    }

    fn end(&mut self) -> Result<(), CoreError> {
        let frame = self.stack.pop().expect("end without start");
        self.post += 1;
        // f = (x - map(tag)) * product(children), pointwise in the
        // evaluation domain.
        let mut f = frame.acc;
        self.ring.eval_mul_linear_assign(&mut f, frame.tag_value);
        let factors = frame.subtree_elems + 1;
        // Wire/storage boundary: back to coefficient form — bounded by the
        // node's exact degree — then split: client share from
        // PRG(seed, pre), server share = f - client.
        self.ring
            .from_evals_bounded_into(&f, factors, &mut self.scratch_node);
        let mut prg = node_prg(self.seed, frame.pre as u64);
        random_poly_into(&self.ring, &mut prg, &mut self.scratch_client);
        self.ring
            .sub_assign(&mut self.scratch_node, &self.scratch_client);
        // Pack through the reusable scratch buffers (the conversion itself
        // now dominates the encode boundary; see ssx_poly::packing).
        self.packer.pack_radix_into(
            &self.scratch_node,
            &mut self.scratch_pack_work,
            &mut self.scratch_pack_out,
        );
        self.table.insert(Row {
            loc: Loc {
                pre: frame.pre,
                post: self.post,
                parent: frame.parent_pre,
            },
            poly: self.scratch_pack_out.as_slice().into(),
        })?;
        // Fold the finished polynomial into the parent's accumulator.
        if let Some(parent) = self.stack.last_mut() {
            self.ring.eval_mul_assign(&mut parent.acc, &f);
            parent.subtree_elems += factors;
        }
        Ok(())
    }

    fn finish(self, input_bytes: usize, started: Instant) -> EncodeOutput {
        debug_assert!(self.stack.is_empty(), "unbalanced events");
        EncodeOutput {
            stats: EncodeStats {
                elements: self.table.len(),
                input_bytes,
                elapsed: started.elapsed(),
                max_depth: self.max_depth,
            },
            table: self.table,
            ring: self.ring,
            packer: self.packer,
        }
    }
}

/// Encodes an XML document string. Text nodes are ignored: the base scheme
/// stores tag structure only (run the document through
/// `ssx_trie::transform_document` first to make text searchable).
pub fn encode_document(xml: &str, map: &MapFile, seed: &Seed) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    let mut parser = PullParser::new(xml);
    while let Some(ev) = parser.next()? {
        match ev {
            XmlEvent::StartElement { name, .. } => enc.start(&name)?,
            XmlEvent::EndElement { .. } => enc.end()?,
            XmlEvent::Text(_) => {}
        }
    }
    Ok(enc.finish(xml.len(), started))
}

/// Encodes a pre-parsed event stream (element events only are honoured).
pub fn encode_events(
    events: &[XmlEvent],
    input_bytes: usize,
    map: &MapFile,
    seed: &Seed,
) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    for ev in events {
        match ev {
            XmlEvent::StartElement { name, .. } => enc.start(name)?,
            XmlEvent::EndElement { .. } => enc.end()?,
            XmlEvent::Text(_) => {}
        }
    }
    Ok(enc.finish(input_bytes, started))
}

/// Encodes a DOM directly (used for trie-transformed documents, which exist
/// only as DOMs).
pub fn encode_dom(doc: &Document, map: &MapFile, seed: &Seed) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    // Iterative DFS emitting start/end pairs.
    let mut stack = vec![(doc.root(), false)];
    while let Some((id, entered)) = stack.pop() {
        if entered {
            enc.end()?;
            continue;
        }
        match doc.kind(id) {
            NodeKind::Element(name) => {
                enc.start(name)?;
                stack.push((id, true));
                for &c in doc.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
            NodeKind::Text(_) => {}
        }
    }
    Ok(enc.finish(doc.to_xml().len(), started))
}

// ---------------------------------------------------------------------------
// Multi-party fleet: t-of-n splitting of the server share plane.
// ---------------------------------------------------------------------------

/// PRG domain tag for the per-row Shamir masking randomness. Node pre-orders
/// are `u32`, so any tag above `u32::MAX` is collision-free with the client
/// share streams `node_prg(seed, pre)`.
const FLEET_SPLIT_DOMAIN: u64 = 1u64 << 40;
/// PRG domain tag for the fleet MAC key `α`.
const FLEET_MAC_DOMAIN: u64 = 1u64 << 41;

/// Shape of a multi-party deployment: `servers` parties, any `threshold`
/// of which suffice to answer (and are required to reconstruct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of parties `n` (1-based party ids `1..=n`).
    pub servers: usize,
    /// Reconstruction threshold `t` (`1 ≤ t ≤ n`).
    pub threshold: usize,
}

impl FleetSpec {
    /// Validates `1 ≤ t ≤ n`.
    pub fn new(servers: usize, threshold: usize) -> Result<Self, CoreError> {
        if servers == 0 || threshold == 0 || threshold > servers {
            return Err(CoreError::Transport(format!(
                "invalid fleet spec: need 1 <= t <= n, got n={servers} t={threshold}"
            )));
        }
        Ok(FleetSpec { servers, threshold })
    }

    /// The single-party degenerate case (`n = 1, t = 1`).
    pub fn single() -> Self {
        FleetSpec {
            servers: 1,
            threshold: 1,
        }
    }

    /// X-coordinate (field code) of 1-based party `j`.
    pub fn party_x(party: usize) -> u64 {
        party as u64
    }
}

/// One party's persistent view: its Shamir share of every server-share
/// polynomial (`data`) and of the MAC companion `α ⊙ share` (`mac`).
/// Neither table alone — nor any `t − 1` parties' tables together —
/// determines a single plaintext polynomial.
#[derive(Debug)]
pub struct PartyStore {
    /// 1-based party id (the Shamir x-coordinate).
    pub party: usize,
    /// Shamir share of the server-share polynomials.
    pub data: Table,
    /// Shamir share of the MAC polynomials `α ⊙ share`.
    pub mac: Table,
}

/// Result of a fleet encoding: `n` per-party stores plus the shared context.
#[derive(Debug)]
pub struct FleetEncodeOutput {
    /// Per-party stores, index `j − 1` for party `j`.
    pub parties: Vec<PartyStore>,
    /// The deployment shape used for the split.
    pub spec: FleetSpec,
    /// The ring both sides compute in.
    pub ring: RingCtx,
    /// Packer matching the tables' polynomial payload.
    pub packer: Packer,
    /// Cost metrics of the underlying encode.
    pub stats: EncodeStats,
}

/// Derives the fleet MAC key `α ∈ F_q \ {0}` from the client seed. Servers
/// never see `α`: they store shares of `α ⊙ s` without learning either
/// factor, and the client re-derives `α` at query time exactly like it
/// re-derives client shares.
pub fn fleet_mac_key(seed: &Seed, ring: &RingCtx) -> u64 {
    let q = ring.field().order();
    node_prg(seed, FLEET_MAC_DOMAIN).next_below(q - 1) + 1
}

/// Splits a finished single-server encoding into `n` per-party stores:
/// each server-share polynomial `s` is Shamir-split coefficient-wise
/// (threshold `t`), and so is its MAC companion `α ⊙ s`. Per-row masking
/// randomness comes from `node_prg(seed, FLEET_SPLIT_DOMAIN | pre)`, so the
/// split is deterministic given the seed and disjoint from the client-share
/// streams. With `t = 1` the data tables are bit-identical replicas of the
/// input table.
pub fn split_fleet(
    output: EncodeOutput,
    seed: &Seed,
    spec: FleetSpec,
) -> Result<FleetEncodeOutput, CoreError> {
    let spec = FleetSpec::new(spec.servers, spec.threshold)?; // revalidate
    let EncodeOutput {
        table,
        ring,
        packer,
        stats,
    } = output;
    let q = ring.field().order();
    if spec.servers as u64 >= q {
        return Err(CoreError::Transport(format!(
            "fleet of {} servers needs a field larger than q={q}",
            spec.servers
        )));
    }
    let alpha = fleet_mac_key(seed, &ring);
    let mut parties: Vec<PartyStore> = (1..=spec.servers)
        .map(|party| PartyStore {
            party,
            data: Table::new(table.poly_len()),
            mac: Table::new(table.poly_len()),
        })
        .collect();
    for row in table.rows() {
        let s = packer.unpack_radix(&ring, &row.poly)?;
        let m = ssx_poly::scale_poly(&ring, alpha, &s);
        let mut prg = node_prg(seed, FLEET_SPLIT_DOMAIN | row.loc.pre as u64);
        let data_shares = ssx_poly::split_n(&ring, &s, spec.servers, spec.threshold, &mut prg);
        let mac_shares = ssx_poly::split_n(&ring, &m, spec.servers, spec.threshold, &mut prg);
        for (party, (ds, ms)) in parties
            .iter_mut()
            .zip(data_shares.into_iter().zip(mac_shares))
        {
            let insert = |table: &mut Table, poly: &RingPoly| {
                table
                    .insert(Row {
                        loc: row.loc,
                        poly: packer.pack_radix(poly).into_boxed_slice(),
                    })
                    .map_err(CoreError::from)
            };
            insert(&mut party.data, &ds)?;
            insert(&mut party.mac, &ms)?;
        }
    }
    Ok(FleetEncodeOutput {
        parties,
        spec,
        ring,
        packer,
        stats,
    })
}

/// Encodes `xml` and splits the result into an `n`-party fleet.
pub fn encode_document_fleet(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
    spec: FleetSpec,
) -> Result<FleetEncodeOutput, CoreError> {
    split_fleet(encode_document(xml, map, seed)?, seed, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_poly::{random_poly, reconstruct};

    fn setup() -> (MapFile, Seed) {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(7);
        (map, seed)
    }

    #[test]
    fn encodes_structure() {
        let (map, seed) = setup();
        let out = encode_document("<site><a><b/></a><c/></site>", &map, &seed).unwrap();
        assert_eq!(out.table.len(), 4);
        assert_eq!(out.stats.elements, 4);
        assert_eq!(out.stats.max_depth, 3);
        // Locations follow the paper's convention.
        let root = out.table.root().unwrap();
        assert_eq!(
            root.loc,
            Loc {
                pre: 1,
                post: 4,
                parent: 0
            }
        );
        assert_eq!(
            out.table.by_pre(3).unwrap().loc,
            Loc {
                pre: 3,
                post: 1,
                parent: 2
            }
        );
    }

    #[test]
    fn shares_reconstruct_to_plaintext_polynomials() {
        let (map, seed) = setup();
        let out = encode_document("<site><a><b/></a><c/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        // Recompute the plaintext polynomial of the root by hand:
        // f(root) = (x - site) * f(a) * f(c); f(a) = (x - a)(x - b); f(c) = (x - c).
        let v = |n: &str| map.value(n).unwrap();
        let fa = ring.mul_linear(&ring.linear(v("b")), v("a"));
        let fc = ring.linear(v("c"));
        let froot = ring.mul_linear(&ring.mul(&fa, &fc), v("site"));
        // Reconstruct from the stored server share + regenerated client share.
        let row = out.table.root().unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        let client = random_poly(ring, &mut node_prg(&seed, 1));
        assert_eq!(reconstruct(ring, &client, &server), froot);
    }

    #[test]
    fn server_share_alone_differs_from_plaintext() {
        let (map, seed) = setup();
        let out = encode_document("<site><a/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        let fa = ring.linear(map.value("a").unwrap());
        let row = out.table.by_pre(2).unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        assert_ne!(server, fa);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let (map, seed) = setup();
        let err = encode_document("<site><zap/></site>", &map, &seed).unwrap_err();
        assert!(matches!(err, CoreError::UnknownTag(t) if t == "zap"));
    }

    #[test]
    fn malformed_xml_is_an_error() {
        let (map, seed) = setup();
        assert!(matches!(
            encode_document("<site><a></site>", &map, &seed),
            Err(CoreError::Xml(_))
        ));
    }

    #[test]
    fn text_is_ignored_by_base_scheme() {
        let (map, seed) = setup();
        let with_text = encode_document("<site><a>hello world</a></site>", &map, &seed).unwrap();
        let without = encode_document("<site><a/></site>", &map, &seed).unwrap();
        assert_eq!(with_text.table.len(), without.table.len());
        assert_eq!(with_text.table.rows()[0].poly, without.table.rows()[0].poly);
    }

    #[test]
    fn dom_and_text_encodings_agree() {
        let (map, seed) = setup();
        let xml = "<site><a><b/><b/></a><c/></site>";
        let via_text = encode_document(xml, &map, &seed).unwrap();
        let doc = Document::parse(xml).unwrap();
        let via_dom = encode_dom(&doc, &map, &seed).unwrap();
        assert_eq!(via_text.table.rows(), via_dom.table.rows());
    }

    #[test]
    fn different_seeds_give_different_server_shares() {
        let (map, _) = setup();
        let xml = "<site><a/></site>";
        let out1 = encode_document(xml, &map, &Seed::from_test_key(1)).unwrap();
        let out2 = encode_document(xml, &map, &Seed::from_test_key(2)).unwrap();
        assert_ne!(out1.table.rows()[0].poly, out2.table.rows()[0].poly);
        // Same seed: identical database.
        let out1b = encode_document(xml, &map, &Seed::from_test_key(1)).unwrap();
        assert_eq!(out1.table.rows(), out1b.table.rows());
    }

    #[test]
    fn repeated_tags_encode_with_multiplicity() {
        // <site><a/><a/></site>: root polynomial has (x - a)^2 as factor,
        // so evaluation at map(a) is zero and at other points nonzero.
        let (map, seed) = setup();
        let out = encode_document("<site><a/><a/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        let row = out.table.root().unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        let client = random_poly(ring, &mut node_prg(&seed, 1));
        let f = reconstruct(ring, &client, &server);
        assert_eq!(ring.eval(&f, map.value("a").unwrap()), 0);
        assert_eq!(ring.eval(&f, map.value("site").unwrap()), 0);
        assert_ne!(ring.eval(&f, map.value("b").unwrap()), 0);
    }

    #[test]
    fn fleet_n1_t1_data_is_bit_identical_to_single_party() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/></site>";
        let single = encode_document(xml, &map, &seed).unwrap();
        let fleet = encode_document_fleet(xml, &map, &seed, FleetSpec::single()).unwrap();
        assert_eq!(fleet.parties.len(), 1);
        let party = &fleet.parties[0];
        assert_eq!(party.data.len(), single.table.len());
        for row in single.table.rows() {
            let frow = party.data.by_pre(row.loc.pre).unwrap();
            assert_eq!(frow.loc, row.loc);
            assert_eq!(frow.poly, row.poly, "pre {} not bit-identical", row.loc.pre);
        }
    }

    #[test]
    fn fleet_shares_reconstruct_server_share_and_mac_checks() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/></site>";
        let single = encode_document(xml, &map, &seed).unwrap();
        let spec = FleetSpec::new(3, 2).unwrap();
        let fleet = split_fleet(encode_document(xml, &map, &seed).unwrap(), &seed, spec);
        let fleet = fleet.unwrap();
        let ring = &fleet.ring;
        let alpha = fleet_mac_key(&seed, ring);
        for row in single.table.rows() {
            let s = single.packer.unpack_radix(ring, &row.poly).unwrap();
            // Any 2 of 3 parties reconstruct both planes; MAC relation holds.
            for pair in [[0usize, 1], [0, 2], [1, 2]] {
                let unpack = |t: &Table| {
                    fleet
                        .packer
                        .unpack_radix(ring, &t.by_pre(row.loc.pre).unwrap().poly)
                        .unwrap()
                };
                let data: Vec<RingPoly> = pair
                    .iter()
                    .map(|&j| unpack(&fleet.parties[j].data))
                    .collect();
                let mac: Vec<RingPoly> = pair
                    .iter()
                    .map(|&j| unpack(&fleet.parties[j].mac))
                    .collect();
                let pts = |polys: &[RingPoly]| {
                    pair.iter()
                        .zip(polys)
                        .map(|(&j, p)| (FleetSpec::party_x(j + 1), p.clone()))
                        .collect::<Vec<_>>()
                };
                let dp = pts(&data);
                let dref: Vec<(u64, &RingPoly)> = dp.iter().map(|(x, p)| (*x, p)).collect();
                let got = ssx_poly::reconstruct_t(ring, &dref).unwrap();
                assert_eq!(got, s, "data pair {pair:?} pre {}", row.loc.pre);
                let mp = pts(&mac);
                let mref: Vec<(u64, &RingPoly)> = mp.iter().map(|(x, p)| (*x, p)).collect();
                let gotm = ssx_poly::reconstruct_t(ring, &mref).unwrap();
                assert_eq!(gotm, ssx_poly::scale_poly(ring, alpha, &s));
            }
            // A single party's share is masked (t = 2).
            let lone = fleet
                .packer
                .unpack_radix(
                    ring,
                    &fleet.parties[0].data.by_pre(row.loc.pre).unwrap().poly,
                )
                .unwrap();
            assert_ne!(lone, s);
        }
    }

    #[test]
    fn fleet_spec_validation() {
        assert!(FleetSpec::new(0, 0).is_err());
        assert!(FleetSpec::new(3, 4).is_err());
        assert!(FleetSpec::new(3, 0).is_err());
        assert!(FleetSpec::new(3, 3).is_ok());
        let (map, seed) = setup();
        let out = encode_document("<site/>", &map, &seed).unwrap();
        // n must stay below the field order.
        let err = split_fleet(
            out,
            &seed,
            FleetSpec {
                servers: 90,
                threshold: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Transport(_)));
    }
}
