//! The streaming encoder — the paper's `MySQLEncode` (§5.1).
//!
//! Consumes SAX events with `O(depth)` memory: each open element keeps one
//! accumulator polynomial (the ring product of its finished children). When
//! an element closes, its polynomial `f = (x − map(tag)) · acc` is computed,
//! split into a PRG client share and a server share, and the server share is
//! stored as a `(pre, post, parent, poly)` row. The client share is
//! discarded — it is regenerated from `(seed, pre)` at query time.
//!
//! The accumulators live in the **evaluation domain** ([`ssx_poly::EvalPoly`]):
//! folding a finished child into its parent and applying `(x − map(tag))`
//! are both `O(q)` pointwise passes instead of `O(q²)` convolutions. The
//! polynomial returns to coefficient form only at the wire/storage boundary
//! (one inverse transform per node, just before the share split), so the
//! packed bytes are bit-identical to the coefficient-domain encoding.

use crate::error::CoreError;
use crate::map::MapFile;
use ssx_poly::{random_poly_into, EvalPoly, Packer, RingCtx, RingPoly};
use ssx_prg::{node_prg, node_prg_from_digest, seed_digest, Seed};
use ssx_store::{Loc, Row, Table, NUM_PLANE_BASE};
use ssx_xml::{Document, NodeKind, PullParser, XmlEvent, XmlToken};
use std::time::{Duration, Instant};

/// Numeric-plane row id of element `pre` — where the element's integer
/// value share lives, when it has one.
pub const fn numeric_pre(pre: u32) -> u32 {
    NUM_PLANE_BASE + pre
}

/// How many value bits the numeric-plane encoding can carry: one base-2
/// digit per ring coefficient, capped at the `u64` value domain.
pub fn numeric_capacity_bits(ring_len: usize) -> u32 {
    ring_len.min(64) as u32
}

/// The shared "is this element text a numeric value?" rule, used identically
/// by the encoder and the plaintext oracle so the two planes can never
/// disagree: trimmed, non-empty, ASCII digits only, parses as `u64`, and
/// fits the ring's digit capacity. Anything else — signs, decimals, digit
/// runs split by entities or child nodes — is plain text to the base scheme.
pub fn parse_numeric_text(text: &str, ring_len: usize) -> Option<u64> {
    let t = text.trim();
    if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let v: u64 = t.parse().ok()?;
    let bits = numeric_capacity_bits(ring_len);
    if bits < 64 && v >= 1u64 << bits {
        return None;
    }
    Some(v)
}

/// The plaintext numeric-plane polynomial of `value`: coefficient `i` is bit
/// `i` of the value. Bits are the whole trick — a pointwise sum of up to
/// `q − 1` such rows keeps every digit sum below `q`, so grouped share-sums
/// reconstruct *exactly* and the client rebuilds the true total with carries
/// in ordinary integers.
pub fn numeric_digits(ring: &RingCtx, value: u64) -> RingPoly {
    let coeffs = (0..ring.len())
        .map(|i| if i < 64 { (value >> i) & 1 } else { 0 })
        .collect();
    ring.poly_from_coeffs(coeffs).expect("bits are < q")
}

/// Inverse of [`numeric_digits`] generalised to digit *sums*: evaluates
/// `Σ cᵢ·2ⁱ` with carries. Fails (typed, never wrapping) if a hostile
/// coefficient pattern would overflow — honest digit sums of `≤ q − 1` rows
/// of `≤ 64`-bit values fit `u128` with room to spare.
pub fn digits_value(coeffs: &[u64]) -> Result<u128, CoreError> {
    let mut total: u128 = 0;
    for (i, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let term = 1u128
            .checked_shl(i as u32)
            .and_then(|p| p.checked_mul(c as u128))
            .ok_or_else(|| CoreError::Corrupt("numeric digit sum overflows u128".into()))?;
        total = total
            .checked_add(term)
            .ok_or_else(|| CoreError::Corrupt("numeric digit sum overflows u128".into()))?;
    }
    Ok(total)
}

/// Encoding cost metrics (the Fig 4 time series).
#[derive(Clone, Copy, Debug, Default)]
pub struct EncodeStats {
    /// Elements encoded (rows produced).
    pub elements: usize,
    /// Input document size in bytes.
    pub input_bytes: usize,
    /// Wall-clock encode time.
    pub elapsed: Duration,
    /// Maximum open-element depth observed (the encoder's memory bound).
    pub max_depth: usize,
}

/// Result of an encoding run: the filled server table plus the shared
/// context needed to query it.
#[derive(Debug)]
pub struct EncodeOutput {
    /// The server-side table (server shares only).
    pub table: Table,
    /// The ring both sides compute in.
    pub ring: RingCtx,
    /// Packer matching the table's polynomial payload.
    pub packer: Packer,
    /// Cost metrics.
    pub stats: EncodeStats,
}

/// Deferred per-node storage-boundary work captured by the parallel
/// encoder's serial fold phase: everything `Encoder::end` needs to finish a
/// row *except* the tree context. Jobs are independent — the client-share
/// PRG stream is keyed by `(seed, pre)` alone — so workers may process them
/// in any order and still produce bytes bit-identical to the serial path.
enum BoundaryJob {
    /// A childless element: its polynomial is the single factor `x − tag`,
    /// whose coefficient form is known outright.
    Leaf { loc: Loc, tag: u64 },
    /// An element with children: the folded product, still in the
    /// evaluation domain.
    Internal {
        loc: Loc,
        evals: EvalPoly,
        factors: usize,
    },
}

/// Per-open-element numeric-text state: one clean digit run makes a value,
/// anything else (mixed content, split runs, non-digits) poisons the frame.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NumAcc {
    /// No non-whitespace text seen yet.
    Empty,
    /// Exactly one clean digit run seen so far.
    Value(u64),
    /// Text that can never be a numeric value; stop looking.
    Poison,
}

struct Frame {
    pre: u32,
    parent_pre: u32,
    tag_value: u64,
    /// Numeric-text accumulator; only leaves (no element children) with a
    /// final `Value` state emit a numeric-plane row.
    num: NumAcc,
    /// Product of the finished children, kept in the evaluation domain so
    /// each fold is `O(q)` pointwise. `None` until the first child closes —
    /// a frame that ends with `None` is a leaf and skips the eval-domain
    /// detour entirely.
    acc: Option<EvalPoly>,
    /// Elements already folded into `acc` (children subtree sizes). With
    /// `d` linear factors the node polynomial has exact degree
    /// `min(d, n−1)`, which bounds the inverse-transform work at the
    /// storage boundary.
    subtree_elems: usize,
}

/// Encoder-local tag lookup: an open-addressed FNV-1a table over the map's
/// entries. The map itself is an ordered tree keyed by `String` — fine for
/// config-time lookups, but the encoder resolves one tag per element on the
/// hot path, so it flattens the map into this probe table once per run.
struct TagCache {
    slots: Vec<Option<(Box<str>, u64)>>,
    mask: usize,
}

impl TagCache {
    fn new(map: &MapFile) -> Self {
        let cap = (map.len().max(1) * 2).next_power_of_two();
        let mut slots = vec![None; cap];
        let mask = cap - 1;
        for (name, value) in map.iter() {
            let mut i = fnv1a(name.as_bytes()) as usize & mask;
            while slots[i].is_some() {
                i = (i + 1) & mask;
            }
            slots[i] = Some((name.into(), value));
        }
        TagCache { slots, mask }
    }

    #[inline]
    fn get(&self, name: &str) -> Option<u64> {
        let mut i = fnv1a(name.as_bytes()) as usize & self.mask;
        loop {
            match &self.slots[i] {
                Some((n, v)) if &**n == name => return Some(*v),
                Some(_) => i = (i + 1) & self.mask,
                None => return None,
            }
        }
    }
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Incremental encoder; drive it with [`Encoder::start`]/[`Encoder::end`].
struct Encoder<'a> {
    ring: RingCtx,
    packer: Packer,
    table: Table,
    tags: TagCache,
    seed: &'a Seed,
    /// `seed_digest(seed)`, hoisted out of the per-node share derivation.
    digest: u64,
    stack: Vec<Frame>,
    /// Recycled eval-domain buffers: finished accumulators return here and
    /// new first-child accumulators are drawn from here, so the steady-state
    /// encode loop allocates only each row's boxed byte payload.
    pool: Vec<EvalPoly>,
    pre: u32,
    post: u32,
    max_depth: usize,
    /// Scratch buffers reused across nodes; the per-node loop allocates
    /// only the row's own boxed byte payload.
    scratch_node: RingPoly,
    scratch_client: RingPoly,
    scratch_pack_work: Vec<u64>,
    scratch_pack_out: Vec<u8>,
    /// `Some` puts the encoder in job-collecting mode: `end` defers the
    /// storage boundary (inverse transform, share split, pack) into this
    /// queue instead of running it inline. Used by the parallel encoder.
    jobs: Option<Vec<BoundaryJob>>,
    /// Leaves whose text parsed as a numeric value, in close order; their
    /// numeric-plane rows are emitted at `finish` (after every document row,
    /// sorted by pre, so serial and parallel encodes stay bit-identical).
    numeric: Vec<(Loc, u64)>,
}

impl<'a> Encoder<'a> {
    fn new(map: &'a MapFile, seed: &'a Seed) -> Result<Self, CoreError> {
        let ring = RingCtx::new(map.p(), map.e())?;
        let packer = Packer::new(&ring);
        let table = Table::new(packer.radix_len());
        let scratch_node = ring.zero();
        let scratch_client = ring.zero();
        Ok(Encoder {
            ring,
            packer,
            table,
            tags: TagCache::new(map),
            seed,
            digest: seed_digest(seed),
            stack: Vec::new(),
            pool: Vec::new(),
            pre: 0,
            post: 0,
            max_depth: 0,
            scratch_node,
            scratch_client,
            scratch_pack_work: Vec::new(),
            scratch_pack_out: Vec::new(),
            jobs: None,
            numeric: Vec::new(),
        })
    }

    fn new_collecting(map: &'a MapFile, seed: &'a Seed) -> Result<Self, CoreError> {
        let mut enc = Self::new(map, seed)?;
        enc.jobs = Some(Vec::new());
        Ok(enc)
    }

    fn start(&mut self, name: &str) -> Result<(), CoreError> {
        let tag_value = match self.tags.get(name) {
            Some(v) => v,
            None => return Err(CoreError::UnknownTag(name.to_string())),
        };
        if self.pre + 1 >= NUM_PLANE_BASE {
            return Err(CoreError::Unsupported(format!(
                "document plane full: pre-order {} would collide with the numeric plane",
                self.pre + 1
            )));
        }
        self.pre += 1;
        let parent_pre = self.stack.last().map_or(0, |f| f.pre);
        self.stack.push(Frame {
            pre: self.pre,
            parent_pre,
            tag_value,
            num: NumAcc::Empty,
            acc: None,
            subtree_elems: 0,
        });
        self.max_depth = self.max_depth.max(self.stack.len());
        Ok(())
    }

    /// Feeds one character-data run to the innermost open element.
    /// Whitespace-only runs are ignored; the first clean digit run becomes a
    /// candidate value; any other text — or a second run — poisons the
    /// frame. Text outside every element (stray in event streams) is a
    /// no-op, matching the base scheme's text-blindness.
    fn text(&mut self, s: &str) {
        let Some(frame) = self.stack.last_mut() else {
            return;
        };
        if s.trim().is_empty() {
            return;
        }
        frame.num = match frame.num {
            NumAcc::Empty => match parse_numeric_text(s, self.ring.len()) {
                Some(v) => NumAcc::Value(v),
                None => NumAcc::Poison,
            },
            NumAcc::Value(_) | NumAcc::Poison => NumAcc::Poison,
        };
    }

    fn end(&mut self) -> Result<(), CoreError> {
        let frame = self.stack.pop().expect("end without start");
        self.post += 1;
        let factors = frame.subtree_elems + 1;
        let loc = Loc {
            pre: frame.pre,
            post: self.post,
            parent: frame.parent_pre,
        };
        // Only leaves (no element children) carry a numeric value; mixed
        // content keeps the element purely structural.
        if frame.acc.is_none() {
            if let NumAcc::Value(v) = frame.num {
                self.numeric.push((loc, v));
            }
        }
        match frame.acc {
            // Leaf: f = x − tag. The coefficient form is known outright, so
            // the boundary skips the eval-domain round trip, and the fold
            // into the parent is the fused linear pass.
            None => {
                debug_assert_eq!(factors, 1);
                if let Some(jobs) = &mut self.jobs {
                    jobs.push(BoundaryJob::Leaf {
                        loc,
                        tag: frame.tag_value,
                    });
                } else {
                    self.ring
                        .linear_into(frame.tag_value, &mut self.scratch_node);
                    self.split_pack_insert(loc)?;
                }
                if let Some(parent) = self.stack.last_mut() {
                    match &mut parent.acc {
                        Some(acc) => self.ring.eval_mul_linear_assign(acc, frame.tag_value),
                        None => {
                            let mut buf = self.pool.pop().unwrap_or_else(|| self.ring.evals_zero());
                            self.ring.evals_linear_into(frame.tag_value, &mut buf);
                            parent.acc = Some(buf);
                        }
                    }
                    parent.subtree_elems += 1;
                }
            }
            // Internal node: f = (x − tag) · product(children), pointwise in
            // the evaluation domain.
            Some(mut f) => {
                self.ring.eval_mul_linear_assign(&mut f, frame.tag_value);
                if let Some(mut jobs) = self.jobs.take() {
                    // Parallel mode: the job takes ownership of `f`; a
                    // parent still lacking an accumulator gets a clone (the
                    // first-child case). The fold itself stays serial — it
                    // is the only tree-ordered dependency.
                    if let Some(parent) = self.stack.last_mut() {
                        match &mut parent.acc {
                            Some(acc) => self.ring.eval_mul_assign(acc, &f),
                            None => parent.acc = Some(f.clone()),
                        }
                        parent.subtree_elems += factors;
                    }
                    jobs.push(BoundaryJob::Internal {
                        loc,
                        evals: f,
                        factors,
                    });
                    self.jobs = Some(jobs);
                } else {
                    // Wire/storage boundary: back to coefficient form —
                    // bounded by the node's exact degree — then split.
                    self.ring
                        .from_evals_bounded_into(&f, factors, &mut self.scratch_node);
                    self.split_pack_insert(loc)?;
                    // Fold into the parent; a parent with no accumulator yet
                    // adopts `f` wholesale, otherwise `f`'s buffer recycles.
                    match self.stack.last_mut() {
                        Some(parent) => {
                            match &mut parent.acc {
                                Some(acc) => {
                                    self.ring.eval_mul_assign(acc, &f);
                                    self.pool.push(f);
                                }
                                None => parent.acc = Some(f),
                            }
                            parent.subtree_elems += factors;
                        }
                        None => self.pool.push(f),
                    }
                }
            }
        }
        Ok(())
    }

    /// Shared tail of the serial storage boundary: `scratch_node` holds the
    /// plaintext coefficients; subtract the PRG client share, pack, insert.
    /// The client share comes from `PRG(seed, pre)`, so it is regenerable at
    /// query time and independent of encode order.
    fn split_pack_insert(&mut self, loc: Loc) -> Result<(), CoreError> {
        let mut prg = node_prg_from_digest(self.digest, loc.pre as u64);
        random_poly_into(&self.ring, &mut prg, &mut self.scratch_client);
        self.ring
            .sub_assign(&mut self.scratch_node, &self.scratch_client);
        self.packer.pack_radix_into(
            &self.scratch_node,
            &mut self.scratch_pack_work,
            &mut self.scratch_pack_out,
        );
        self.table.insert(Row {
            loc,
            poly: self.scratch_pack_out.as_slice().into(),
        })?;
        Ok(())
    }

    /// Emits the numeric-plane rows collected during the walk, then seals
    /// the output. A value's plaintext polynomial is its base-2 digit vector
    /// ([`numeric_digits`]); the split is the usual one — subtract the PRG
    /// client share keyed by the row's (numeric-plane) pre — so persistence,
    /// WAL replay, resharding and fleet splitting treat these rows exactly
    /// like document rows. Rows go in sorted by pre, after every document
    /// row, keeping serial and parallel encodes bit-identical.
    fn finish(mut self, input_bytes: usize, started: Instant) -> Result<EncodeOutput, CoreError> {
        debug_assert!(self.stack.is_empty(), "unbalanced events");
        self.numeric.sort_unstable_by_key(|(loc, _)| loc.pre);
        let numeric = std::mem::take(&mut self.numeric);
        for (loc, value) in numeric {
            let plain = numeric_digits(&self.ring, value);
            self.scratch_node.clone_from(&plain);
            self.split_pack_insert(Loc {
                pre: numeric_pre(loc.pre),
                post: NUM_PLANE_BASE + loc.post,
                parent: 0,
            })?;
        }
        Ok(EncodeOutput {
            stats: EncodeStats {
                elements: self.table.len(),
                input_bytes,
                elapsed: started.elapsed(),
                max_depth: self.max_depth,
            },
            table: self.table,
            ring: self.ring,
            packer: self.packer,
        })
    }

    /// Drains the collected boundary jobs across `threads` scoped workers
    /// and inserts the rows in the original post-order. Each worker carries
    /// its own scratch buffers; because client-share streams are keyed by
    /// `(seed, pre)` and packing is deterministic, the stored bytes are
    /// bit-identical to the serial path for every thread count.
    fn finish_parallel(
        mut self,
        threads: usize,
        input_bytes: usize,
        started: Instant,
    ) -> Result<EncodeOutput, CoreError> {
        let jobs = self.jobs.take().expect("finish_parallel without jobs");
        let threads = threads.clamp(1, jobs.len().max(1));
        let ring = &self.ring;
        let packer = &self.packer;
        let seed = self.seed;
        let chunk_len = jobs.len().div_ceil(threads);
        let mut rows: Vec<Vec<Row>> = Vec::with_capacity(threads);
        if threads == 1 || chunk_len == 0 {
            rows.push(boundary_chunk(ring, packer, seed, &jobs));
        } else {
            let chunks: Vec<&[BoundaryJob]> = jobs.chunks(chunk_len).collect();
            rows = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .map(|chunk| scope.spawn(move || boundary_chunk(ring, packer, seed, chunk)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("encoder worker panicked"))
                    .collect()
            });
        }
        for row in rows.into_iter().flatten() {
            self.table.insert(row)?;
        }
        self.finish(input_bytes, started)
    }
}

/// Runs the storage boundary for a contiguous slice of jobs with
/// worker-local scratch buffers; order within the slice is preserved.
fn boundary_chunk(ring: &RingCtx, packer: &Packer, seed: &Seed, jobs: &[BoundaryJob]) -> Vec<Row> {
    let digest = seed_digest(seed);
    let mut node = ring.zero();
    let mut client = ring.zero();
    let mut work = Vec::new();
    let mut out = Vec::new();
    jobs.iter()
        .map(|job| {
            let loc = match job {
                BoundaryJob::Leaf { loc, tag } => {
                    ring.linear_into(*tag, &mut node);
                    *loc
                }
                BoundaryJob::Internal {
                    loc,
                    evals,
                    factors,
                } => {
                    ring.from_evals_bounded_into(evals, *factors, &mut node);
                    *loc
                }
            };
            let mut prg = node_prg_from_digest(digest, loc.pre as u64);
            random_poly_into(ring, &mut prg, &mut client);
            ring.sub_assign(&mut node, &client);
            packer.pack_radix_into(&node, &mut work, &mut out);
            Row {
                loc,
                poly: out.as_slice().into(),
            }
        })
        .collect()
}

/// Encodes an XML document string. Text is invisible to the base scheme's
/// structural rows (run the document through `ssx_trie::transform_document`
/// first to make text *searchable*), with one exception: a leaf whose entire
/// text is a clean integer also gets a numeric-plane row at
/// [`numeric_pre`]`(pre)` carrying its base-2 digits, which powers the
/// secret-shared aggregates (COUNT/SUM/AVG and range predicates).
pub fn encode_document(xml: &str, map: &MapFile, seed: &Seed) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    drive_parser(&mut enc, xml)?;
    enc.finish(xml.len(), started)
}

/// Streams `xml` through the borrowed-token parser into `enc` — Start/End
/// drive the structural fold, Text feeds the numeric accumulator. Uses
/// [`PullParser::next_token`] so character data crosses without per-event
/// `String` allocations.
fn drive_parser(enc: &mut Encoder<'_>, xml: &str) -> Result<(), CoreError> {
    let mut parser = PullParser::new(xml);
    while let Some(tok) = parser.next_token()? {
        match tok {
            XmlToken::Start(name) => enc.start(name)?,
            XmlToken::End(_) => enc.end()?,
            XmlToken::Text(t) => enc.text(&t),
        }
    }
    Ok(())
}

/// Encodes an XML document as a block starting at `offset`: pre and post
/// numbers run `offset+1 ..= offset+n`, the document root keeps `parent = 0`,
/// and every client-share PRG stream is keyed by the *absolute* `pre` — so a
/// document inserted at `offset` into a live store carries rows bit-identical
/// to a fresh forest encode that placed it there. `offset = 0` is exactly
/// [`encode_document`]. This is the write plane's encoder: allocate an offset
/// past every `pre` ever stored (`MaxPre`) and the new block can never
/// collide with live or deleted rows.
pub fn encode_document_at(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
    offset: u32,
) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    enc.pre = offset;
    enc.post = offset;
    drive_parser(&mut enc, xml)?;
    enc.finish(xml.len(), started)
}

/// Encodes an XML document with the storage boundary (inverse transform,
/// share split, radix pack) fanned out over `threads` scoped workers. The
/// tree fold itself stays serial — it is the only tree-ordered dependency —
/// so the stored table is bit-identical to [`encode_document`] for every
/// thread count. `threads == 0` is treated as 1.
pub fn encode_document_parallel_with(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
    threads: usize,
) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new_collecting(map, seed)?;
    drive_parser(&mut enc, xml)?;
    enc.finish_parallel(threads, xml.len(), started)
}

/// [`encode_document_parallel_with`] keyed by the host's available
/// parallelism (1 if it cannot be determined).
pub fn encode_document_parallel(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
) -> Result<EncodeOutput, CoreError> {
    encode_document_parallel_with(xml, map, seed, default_threads())
}

/// Parallel-boundary variant of [`encode_events`]; same bit-identity
/// guarantee as [`encode_document_parallel_with`].
pub fn encode_events_parallel_with(
    events: &[XmlEvent],
    input_bytes: usize,
    map: &MapFile,
    seed: &Seed,
    threads: usize,
) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new_collecting(map, seed)?;
    for ev in events {
        match ev {
            XmlEvent::StartElement { name, .. } => enc.start(name)?,
            XmlEvent::EndElement { .. } => enc.end()?,
            XmlEvent::Text(t) => enc.text(t),
        }
    }
    enc.finish_parallel(threads, input_bytes, started)
}

/// Worker count used by the `_parallel` entry points: the host's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Encodes a pre-parsed event stream (element events only are honoured).
pub fn encode_events(
    events: &[XmlEvent],
    input_bytes: usize,
    map: &MapFile,
    seed: &Seed,
) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    for ev in events {
        match ev {
            XmlEvent::StartElement { name, .. } => enc.start(name)?,
            XmlEvent::EndElement { .. } => enc.end()?,
            XmlEvent::Text(t) => enc.text(t),
        }
    }
    enc.finish(input_bytes, started)
}

/// Encodes a DOM directly (used for trie-transformed documents, which exist
/// only as DOMs).
pub fn encode_dom(doc: &Document, map: &MapFile, seed: &Seed) -> Result<EncodeOutput, CoreError> {
    let started = Instant::now();
    let mut enc = Encoder::new(map, seed)?;
    // Iterative DFS emitting start/end pairs.
    let mut stack = vec![(doc.root(), false)];
    while let Some((id, entered)) = stack.pop() {
        if entered {
            enc.end()?;
            continue;
        }
        match doc.kind(id) {
            NodeKind::Element(name) => {
                enc.start(name)?;
                stack.push((id, true));
                for &c in doc.children(id).iter().rev() {
                    stack.push((c, false));
                }
            }
            NodeKind::Text(t) => enc.text(t),
        }
    }
    enc.finish(doc.to_xml().len(), started)
}

// ---------------------------------------------------------------------------
// Multi-party fleet: t-of-n splitting of the server share plane.
// ---------------------------------------------------------------------------

/// PRG domain tag for the per-row Shamir masking randomness. Node pre-orders
/// are `u32`, so any tag above `u32::MAX` is collision-free with the client
/// share streams `node_prg(seed, pre)`.
const FLEET_SPLIT_DOMAIN: u64 = 1u64 << 40;
/// PRG domain tag for the fleet MAC key `α`.
const FLEET_MAC_DOMAIN: u64 = 1u64 << 41;

/// Shape of a multi-party deployment: `servers` parties, any `threshold`
/// of which suffice to answer (and are required to reconstruct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of parties `n` (1-based party ids `1..=n`).
    pub servers: usize,
    /// Reconstruction threshold `t` (`1 ≤ t ≤ n`).
    pub threshold: usize,
}

impl FleetSpec {
    /// Validates `1 ≤ t ≤ n`.
    pub fn new(servers: usize, threshold: usize) -> Result<Self, CoreError> {
        if servers == 0 || threshold == 0 || threshold > servers {
            return Err(CoreError::Transport(format!(
                "invalid fleet spec: need 1 <= t <= n, got n={servers} t={threshold}"
            )));
        }
        Ok(FleetSpec { servers, threshold })
    }

    /// The single-party degenerate case (`n = 1, t = 1`).
    pub fn single() -> Self {
        FleetSpec {
            servers: 1,
            threshold: 1,
        }
    }

    /// X-coordinate (field code) of 1-based party `j`.
    pub fn party_x(party: usize) -> u64 {
        party as u64
    }
}

/// One party's persistent view: its Shamir share of every server-share
/// polynomial (`data`) and of the MAC companion `α ⊙ share` (`mac`).
/// Neither table alone — nor any `t − 1` parties' tables together —
/// determines a single plaintext polynomial.
#[derive(Debug)]
pub struct PartyStore {
    /// 1-based party id (the Shamir x-coordinate).
    pub party: usize,
    /// Shamir share of the server-share polynomials.
    pub data: Table,
    /// Shamir share of the MAC polynomials `α ⊙ share`.
    pub mac: Table,
}

/// Result of a fleet encoding: `n` per-party stores plus the shared context.
#[derive(Debug)]
pub struct FleetEncodeOutput {
    /// Per-party stores, index `j − 1` for party `j`.
    pub parties: Vec<PartyStore>,
    /// The deployment shape used for the split.
    pub spec: FleetSpec,
    /// The ring both sides compute in.
    pub ring: RingCtx,
    /// Packer matching the tables' polynomial payload.
    pub packer: Packer,
    /// Cost metrics of the underlying encode.
    pub stats: EncodeStats,
}

/// Derives the fleet MAC key `α ∈ F_q \ {0}` from the client seed. Servers
/// never see `α`: they store shares of `α ⊙ s` without learning either
/// factor, and the client re-derives `α` at query time exactly like it
/// re-derives client shares.
pub fn fleet_mac_key(seed: &Seed, ring: &RingCtx) -> u64 {
    let q = ring.field().order();
    node_prg(seed, FLEET_MAC_DOMAIN).next_below(q - 1) + 1
}

/// Splits a finished single-server encoding into `n` per-party stores:
/// each server-share polynomial `s` is Shamir-split coefficient-wise
/// (threshold `t`), and so is its MAC companion `α ⊙ s`. Per-row masking
/// randomness comes from `node_prg(seed, FLEET_SPLIT_DOMAIN | pre)`, so the
/// split is deterministic given the seed and disjoint from the client-share
/// streams. With `t = 1` the data tables are bit-identical replicas of the
/// input table.
pub fn split_fleet(
    output: EncodeOutput,
    seed: &Seed,
    spec: FleetSpec,
) -> Result<FleetEncodeOutput, CoreError> {
    let spec = FleetSpec::new(spec.servers, spec.threshold)?; // revalidate
    let EncodeOutput {
        table,
        ring,
        packer,
        stats,
    } = output;
    let q = ring.field().order();
    if spec.servers as u64 >= q {
        return Err(CoreError::Transport(format!(
            "fleet of {} servers needs a field larger than q={q}",
            spec.servers
        )));
    }
    let mut parties: Vec<PartyStore> = (1..=spec.servers)
        .map(|party| PartyStore {
            party,
            data: Table::new(table.poly_len()),
            mac: Table::new(table.poly_len()),
        })
        .collect();
    for row in table.rows() {
        let shares = split_fleet_row(&ring, &packer, seed, spec, row.loc.pre, &row.poly)?;
        for (party, (ds, ms)) in parties.iter_mut().zip(shares) {
            let insert = |table: &mut Table, poly: Vec<u8>| {
                table
                    .insert(Row {
                        loc: row.loc,
                        poly: poly.into_boxed_slice(),
                    })
                    .map_err(CoreError::from)
            };
            insert(&mut party.data, ds)?;
            insert(&mut party.mac, ms)?;
        }
    }
    Ok(FleetEncodeOutput {
        parties,
        spec,
        ring,
        packer,
        stats,
    })
}

/// One party's packed `(data, mac)` payload pair for a re-split row.
pub type PartyRow = (Vec<u8>, Vec<u8>);

/// Splits one stored server-share row into its `n` per-party
/// `(data, mac)` packed payloads, drawing the masking randomness from
/// exactly the PRG stream [`split_fleet`] uses for that `pre` — a row
/// inserted into a live fleet is bit-identical to the row a fresh
/// `split_fleet` of the same table would hand the same party. This is the
/// write plane's splitter: a fleet transport re-splits each incoming row
/// per leg so no single party ever sees the un-split server share.
pub fn split_fleet_row(
    ring: &RingCtx,
    packer: &Packer,
    seed: &Seed,
    spec: FleetSpec,
    pre: u32,
    poly: &[u8],
) -> Result<Vec<PartyRow>, CoreError> {
    let alpha = fleet_mac_key(seed, ring);
    let s = packer.unpack_radix(ring, poly)?;
    let m = ssx_poly::scale_poly(ring, alpha, &s);
    let mut prg = node_prg(seed, FLEET_SPLIT_DOMAIN | pre as u64);
    let data_shares = ssx_poly::split_n(ring, &s, spec.servers, spec.threshold, &mut prg);
    let mac_shares = ssx_poly::split_n(ring, &m, spec.servers, spec.threshold, &mut prg);
    Ok(data_shares
        .into_iter()
        .zip(mac_shares)
        .map(|(d, m)| (packer.pack_radix(&d), packer.pack_radix(&m)))
        .collect())
}

/// Encodes `xml` and splits the result into an `n`-party fleet.
pub fn encode_document_fleet(
    xml: &str,
    map: &MapFile,
    seed: &Seed,
    spec: FleetSpec,
) -> Result<FleetEncodeOutput, CoreError> {
    split_fleet(encode_document(xml, map, seed)?, seed, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssx_poly::{random_poly, reconstruct};

    fn setup() -> (MapFile, Seed) {
        let map = MapFile::sequential(83, 1, &["site", "a", "b", "c"]).unwrap();
        let seed = Seed::from_test_key(7);
        (map, seed)
    }

    #[test]
    fn encodes_structure() {
        let (map, seed) = setup();
        let out = encode_document("<site><a><b/></a><c/></site>", &map, &seed).unwrap();
        assert_eq!(out.table.len(), 4);
        assert_eq!(out.stats.elements, 4);
        assert_eq!(out.stats.max_depth, 3);
        // Locations follow the paper's convention.
        let root = out.table.root().unwrap();
        assert_eq!(
            root.loc,
            Loc {
                pre: 1,
                post: 4,
                parent: 0
            }
        );
        assert_eq!(
            out.table.by_pre(3).unwrap().loc,
            Loc {
                pre: 3,
                post: 1,
                parent: 2
            }
        );
    }

    #[test]
    fn shares_reconstruct_to_plaintext_polynomials() {
        let (map, seed) = setup();
        let out = encode_document("<site><a><b/></a><c/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        // Recompute the plaintext polynomial of the root by hand:
        // f(root) = (x - site) * f(a) * f(c); f(a) = (x - a)(x - b); f(c) = (x - c).
        let v = |n: &str| map.value(n).unwrap();
        let fa = ring.mul_linear(&ring.linear(v("b")), v("a"));
        let fc = ring.linear(v("c"));
        let froot = ring.mul_linear(&ring.mul(&fa, &fc), v("site"));
        // Reconstruct from the stored server share + regenerated client share.
        let row = out.table.root().unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        let client = random_poly(ring, &mut node_prg(&seed, 1));
        assert_eq!(reconstruct(ring, &client, &server), froot);
    }

    #[test]
    fn server_share_alone_differs_from_plaintext() {
        let (map, seed) = setup();
        let out = encode_document("<site><a/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        let fa = ring.linear(map.value("a").unwrap());
        let row = out.table.by_pre(2).unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        assert_ne!(server, fa);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let (map, seed) = setup();
        let err = encode_document("<site><zap/></site>", &map, &seed).unwrap_err();
        assert!(matches!(err, CoreError::UnknownTag(t) if t == "zap"));
    }

    #[test]
    fn malformed_xml_is_an_error() {
        let (map, seed) = setup();
        assert!(matches!(
            encode_document("<site><a></site>", &map, &seed),
            Err(CoreError::Xml(_))
        ));
    }

    #[test]
    fn text_is_ignored_by_base_scheme() {
        let (map, seed) = setup();
        let with_text = encode_document("<site><a>hello world</a></site>", &map, &seed).unwrap();
        let without = encode_document("<site><a/></site>", &map, &seed).unwrap();
        assert_eq!(with_text.table.len(), without.table.len());
        assert_eq!(with_text.table.rows()[0].poly, without.table.rows()[0].poly);
    }

    #[test]
    fn dom_and_text_encodings_agree() {
        let (map, seed) = setup();
        let xml = "<site><a><b/><b/></a><c/></site>";
        let via_text = encode_document(xml, &map, &seed).unwrap();
        let doc = Document::parse(xml).unwrap();
        let via_dom = encode_dom(&doc, &map, &seed).unwrap();
        assert_eq!(via_text.table.rows(), via_dom.table.rows());
    }

    #[test]
    fn different_seeds_give_different_server_shares() {
        let (map, _) = setup();
        let xml = "<site><a/></site>";
        let out1 = encode_document(xml, &map, &Seed::from_test_key(1)).unwrap();
        let out2 = encode_document(xml, &map, &Seed::from_test_key(2)).unwrap();
        assert_ne!(out1.table.rows()[0].poly, out2.table.rows()[0].poly);
        // Same seed: identical database.
        let out1b = encode_document(xml, &map, &Seed::from_test_key(1)).unwrap();
        assert_eq!(out1.table.rows(), out1b.table.rows());
    }

    #[test]
    fn repeated_tags_encode_with_multiplicity() {
        // <site><a/><a/></site>: root polynomial has (x - a)^2 as factor,
        // so evaluation at map(a) is zero and at other points nonzero.
        let (map, seed) = setup();
        let out = encode_document("<site><a/><a/></site>", &map, &seed).unwrap();
        let ring = &out.ring;
        let row = out.table.root().unwrap();
        let server = out.packer.unpack_radix(ring, &row.poly).unwrap();
        let client = random_poly(ring, &mut node_prg(&seed, 1));
        let f = reconstruct(ring, &client, &server);
        assert_eq!(ring.eval(&f, map.value("a").unwrap()), 0);
        assert_eq!(ring.eval(&f, map.value("site").unwrap()), 0);
        assert_ne!(ring.eval(&f, map.value("b").unwrap()), 0);
    }

    #[test]
    fn parallel_encoder_is_bit_identical_for_any_thread_count() {
        let (map, seed) = setup();
        // Deep-and-wide enough that every worker gets several jobs at
        // threads = 8, plus a degenerate single-element document.
        for xml in [
            "<site/>",
            "<site><a><b/><b/></a><c/><a><b/></a><c/><b/><a/><c/></site>",
        ] {
            let serial = encode_document(xml, &map, &seed).unwrap();
            for threads in [0usize, 1, 2, 8] {
                let par = encode_document_parallel_with(xml, &map, &seed, threads).unwrap();
                assert_eq!(par.table.len(), serial.table.len(), "threads={threads}");
                assert_eq!(
                    par.table.rows(),
                    serial.table.rows(),
                    "threads={threads} xml={xml}"
                );
            }
        }
        // Host-keyed entry point agrees too.
        let xml = "<site><a><b/></a><c/></site>";
        let serial = encode_document(xml, &map, &seed).unwrap();
        let auto = encode_document_parallel(xml, &map, &seed).unwrap();
        assert_eq!(auto.table.rows(), serial.table.rows());
    }

    #[test]
    fn parallel_event_encoder_matches_document_path() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/><a/></site>";
        let events: Vec<XmlEvent> = {
            let mut parser = PullParser::new(xml);
            let mut evs = Vec::new();
            while let Some(ev) = parser.next().unwrap() {
                evs.push(ev);
            }
            evs
        };
        let serial = encode_events(&events, xml.len(), &map, &seed).unwrap();
        for threads in [1usize, 2, 8] {
            let par =
                encode_events_parallel_with(&events, xml.len(), &map, &seed, threads).unwrap();
            assert_eq!(par.table.rows(), serial.table.rows(), "threads={threads}");
        }
    }

    #[test]
    fn offset_zero_encode_is_bit_identical() {
        let (map, seed) = setup();
        let xml = "<site><a><b/><b/></a><c/></site>";
        let plain = encode_document(xml, &map, &seed).unwrap();
        let at0 = encode_document_at(xml, &map, &seed, 0).unwrap();
        assert_eq!(plain.table.rows(), at0.table.rows());
    }

    /// An offset encode is the same forest block a fresh two-document encode
    /// would produce: locations shift rigidly and every row's share bytes
    /// match, because client-share streams are keyed by absolute pre.
    #[test]
    fn offset_encode_matches_fresh_forest_block() {
        let (map, seed) = setup();
        let first = "<site><a><b/></a><c/></site>"; // 5 nodes: offsets 1..=5
        let second = "<site><a/><c/></site>"; // 3 nodes at offset 5
        let block = encode_document_at(second, &map, &seed, 5).unwrap();
        assert_eq!(
            block
                .table
                .all_locs()
                .iter()
                .map(|l| (l.pre, l.post, l.parent))
                .collect::<Vec<_>>(),
            vec![(6, 8, 0), (7, 6, 6), (8, 7, 6)],
            "locations shift rigidly, root keeps parent 0"
        );
        // Splice both blocks into one table; it must be a valid forest whose
        // per-document scans are independent.
        let mut forest = Table::new(block.table.poly_len());
        let base = encode_document_at(first, &map, &seed, 0).unwrap();
        for row in base.table.rows().iter().chain(block.table.rows()) {
            forest.insert(row.clone()).unwrap();
        }
        forest.check_integrity().unwrap();
        assert_eq!(forest.roots().len(), 2);
        // The spliced block's shares reconstruct to the right polynomials
        // through the absolute-pre client streams.
        let ring = &block.ring;
        let v = |n: &str| map.value(n).unwrap();
        let froot = ring.mul_linear(
            &ring.mul(&ring.linear(v("a")), &ring.linear(v("c"))),
            v("site"),
        );
        let row = forest.by_pre(6).unwrap();
        let server = block.packer.unpack_radix(ring, &row.poly).unwrap();
        let client = random_poly(ring, &mut node_prg(&seed, 6));
        assert_eq!(reconstruct(ring, &client, &server), froot);
    }

    /// The per-row splitter hands out exactly the bytes `split_fleet` stores
    /// for that row — the write plane's bit-identity guarantee.
    #[test]
    fn split_fleet_row_matches_whole_table_split() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/></site>";
        let single = encode_document(xml, &map, &seed).unwrap();
        let spec = FleetSpec::new(3, 2).unwrap();
        let fleet = split_fleet(encode_document(xml, &map, &seed).unwrap(), &seed, spec).unwrap();
        for row in single.table.rows() {
            let shares = split_fleet_row(
                &fleet.ring,
                &fleet.packer,
                &seed,
                spec,
                row.loc.pre,
                &row.poly,
            )
            .unwrap();
            for (j, (data, mac)) in shares.iter().enumerate() {
                let party = &fleet.parties[j];
                assert_eq!(
                    data.as_slice(),
                    &*party.data.by_pre(row.loc.pre).unwrap().poly,
                    "data party {j} pre {}",
                    row.loc.pre
                );
                assert_eq!(
                    mac.as_slice(),
                    &*party.mac.by_pre(row.loc.pre).unwrap().poly,
                    "mac party {j} pre {}",
                    row.loc.pre
                );
            }
        }
    }

    #[test]
    fn fleet_n1_t1_data_is_bit_identical_to_single_party() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/></site>";
        let single = encode_document(xml, &map, &seed).unwrap();
        let fleet = encode_document_fleet(xml, &map, &seed, FleetSpec::single()).unwrap();
        assert_eq!(fleet.parties.len(), 1);
        let party = &fleet.parties[0];
        assert_eq!(party.data.len(), single.table.len());
        for row in single.table.rows() {
            let frow = party.data.by_pre(row.loc.pre).unwrap();
            assert_eq!(frow.loc, row.loc);
            assert_eq!(frow.poly, row.poly, "pre {} not bit-identical", row.loc.pre);
        }
    }

    #[test]
    fn fleet_shares_reconstruct_server_share_and_mac_checks() {
        let (map, seed) = setup();
        let xml = "<site><a><b/></a><c/></site>";
        let single = encode_document(xml, &map, &seed).unwrap();
        let spec = FleetSpec::new(3, 2).unwrap();
        let fleet = split_fleet(encode_document(xml, &map, &seed).unwrap(), &seed, spec);
        let fleet = fleet.unwrap();
        let ring = &fleet.ring;
        let alpha = fleet_mac_key(&seed, ring);
        for row in single.table.rows() {
            let s = single.packer.unpack_radix(ring, &row.poly).unwrap();
            // Any 2 of 3 parties reconstruct both planes; MAC relation holds.
            for pair in [[0usize, 1], [0, 2], [1, 2]] {
                let unpack = |t: &Table| {
                    fleet
                        .packer
                        .unpack_radix(ring, &t.by_pre(row.loc.pre).unwrap().poly)
                        .unwrap()
                };
                let data: Vec<RingPoly> = pair
                    .iter()
                    .map(|&j| unpack(&fleet.parties[j].data))
                    .collect();
                let mac: Vec<RingPoly> = pair
                    .iter()
                    .map(|&j| unpack(&fleet.parties[j].mac))
                    .collect();
                let pts = |polys: &[RingPoly]| {
                    pair.iter()
                        .zip(polys)
                        .map(|(&j, p)| (FleetSpec::party_x(j + 1), p.clone()))
                        .collect::<Vec<_>>()
                };
                let dp = pts(&data);
                let dref: Vec<(u64, &RingPoly)> = dp.iter().map(|(x, p)| (*x, p)).collect();
                let got = ssx_poly::reconstruct_t(ring, &dref).unwrap();
                assert_eq!(got, s, "data pair {pair:?} pre {}", row.loc.pre);
                let mp = pts(&mac);
                let mref: Vec<(u64, &RingPoly)> = mp.iter().map(|(x, p)| (*x, p)).collect();
                let gotm = ssx_poly::reconstruct_t(ring, &mref).unwrap();
                assert_eq!(gotm, ssx_poly::scale_poly(ring, alpha, &s));
            }
            // A single party's share is masked (t = 2).
            let lone = fleet
                .packer
                .unpack_radix(
                    ring,
                    &fleet.parties[0].data.by_pre(row.loc.pre).unwrap().poly,
                )
                .unwrap();
            assert_ne!(lone, s);
        }
    }

    #[test]
    fn fleet_spec_validation() {
        assert!(FleetSpec::new(0, 0).is_err());
        assert!(FleetSpec::new(3, 4).is_err());
        assert!(FleetSpec::new(3, 0).is_err());
        assert!(FleetSpec::new(3, 3).is_ok());
        let (map, seed) = setup();
        let out = encode_document("<site/>", &map, &seed).unwrap();
        // n must stay below the field order.
        let err = split_fleet(
            out,
            &seed,
            FleetSpec {
                servers: 90,
                threshold: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Transport(_)));
    }
}
