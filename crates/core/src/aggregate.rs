//! The secret-shared aggregation plane: COUNT / SUM / AVG over query
//! results, with an optional numeric range predicate.
//!
//! The predicate is an ordinary structural query (either engine, either
//! matching rule). What is new is how the *values* come back: matched
//! elements with clean integer text own a second row in the numeric plane
//! (`pre + 2³⁰`, see [`crate::encode::numeric_digits`]) whose polynomial
//! encodes the value base-2, one bit per coefficient. Because secret
//! sharing is linear, a server can add the *shares* of any subset of those
//! rows pointwise and return one partial per group — it learns which rows
//! were named in the frame (the same access pattern a fetch would leak)
//! but performs the addition blindly, and the client recovers the exact
//! group total by adding its regenerated client shares and reading the
//! digit sums back out with carries. A group never exceeds `q − 1` rows,
//! so no digit sum wraps the field and the arithmetic is exact, never
//! probabilistic.
//!
//! Wave shape (the cost model the bench asserts): one snapshot wave
//! (roots + per-shard epochs, batched), the predicate walk, then exactly
//! **one** closing wave — per-shard [`Request::Agg`] frames in a single
//! batch — plus one optional `AGG_FETCH` wave when a range predicate
//! needs values before the close. Every closing frame replays the
//! snapshot's epoch for its shard; a write that lands in between turns
//! the whole aggregate into a typed [`CoreError::EpochConflict`] and the
//! runner retries from a fresh snapshot instead of mixing two store
//! states.

use crate::client::ClientFilter;
use crate::encode::{numeric_capacity_bits, numeric_pre};
use crate::engine::{Engine, EngineKind, MatchRule, QueryStats};
use crate::error::CoreError;
use crate::protocol::{Request, AGG_CHECK, AGG_FETCH, AGG_SUM};
use crate::shard::ShardSpec;
use crate::transport::Transport;
use ssx_store::NUM_PLANE_BASE;
use ssx_xpath::Query;

/// Which aggregate to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// How many nodes match the predicate.
    Count,
    /// Total of the matched nodes' numeric values.
    Sum,
    /// Mean of the matched nodes' numeric values (composed client-side
    /// from SUM and the contributing count — never a third protocol op).
    Avg,
}

/// An aggregation query: structural predicate, aggregate op, and an
/// optional inclusive `[lo, hi]` range over the numeric value.
#[derive(Clone, Debug)]
pub struct AggregateSpec {
    /// The structural predicate (text predicates must be expanded, as for
    /// the engines).
    pub query: Query,
    /// The aggregate to compute.
    pub op: AggOp,
    /// Keep only matches whose numeric value `v` satisfies
    /// `lo ≤ v ≤ hi`. Matches without a numeric value fail the range.
    pub range: Option<(u64, u64)>,
}

/// How many times [`run_aggregate`] restarts from a fresh snapshot when a
/// racing writer trips the epoch fence, before giving up and surfacing
/// the conflict.
pub const DEFAULT_AGG_RETRIES: u32 = 4;

/// An aggregate answer plus its cost breakdown.
#[derive(Clone, Debug)]
pub struct AggregateOutcome {
    /// The aggregate computed.
    pub op: AggOp,
    /// Matching nodes (after the range filter, when one was given).
    pub count: u64,
    /// Matches that carried a numeric value into the sum (`≤ count`;
    /// equals `count` when a range predicate filtered the match set).
    pub contributing: u64,
    /// Exact total of the contributing values (0 for [`AggOp::Count`] —
    /// a pure count never touches the numeric plane).
    pub sum: u128,
    /// Stats of the predicate walk (the embedded engine run).
    pub walk: QueryStats,
    /// Round trips spent after the walk: the optional range-fetch wave
    /// plus the single closing wave — `1`, or `2` with a range predicate,
    /// regardless of match count or shard count.
    pub closing_waves: u64,
    /// Snapshots discarded because a writer raced the aggregate.
    pub retries: u32,
}

impl AggregateOutcome {
    /// The answer as a scalar: count, sum, or average (numerator,
    /// denominator kept exact; `None` when nothing contributed to an AVG).
    pub fn value(&self) -> Option<(u128, u64)> {
        match self.op {
            AggOp::Count => Some((self.count as u128, 1)),
            AggOp::Sum => Some((self.sum, 1)),
            AggOp::Avg => (self.contributing > 0).then_some((self.sum, self.contributing)),
        }
    }

    /// The average as a float convenience (`None` for an empty AVG).
    pub fn avg_f64(&self) -> Option<f64> {
        match self.op {
            AggOp::Avg => {
                (self.contributing > 0).then(|| self.sum as f64 / self.contributing as f64)
            }
            _ => None,
        }
    }
}

/// Runs an aggregate end to end, retrying up to [`DEFAULT_AGG_RETRIES`]
/// times when a racing writer invalidates the snapshot. The surviving
/// error after the budget is exhausted is the typed
/// [`CoreError::EpochConflict`] itself.
pub fn run_aggregate<T: Transport>(
    filter: &mut ClientFilter<T>,
    kind: EngineKind,
    rule: MatchRule,
    spec: &AggregateSpec,
) -> Result<AggregateOutcome, CoreError> {
    let mut retries = 0;
    loop {
        match try_aggregate(filter, kind, rule, spec, retries) {
            Err(CoreError::EpochConflict(_)) if retries < DEFAULT_AGG_RETRIES => {
                retries += 1;
            }
            other => return other,
        }
    }
}

/// One snapshot attempt: snapshot wave → predicate walk → optional range
/// fetch → closing wave. Any epoch movement surfaces as
/// [`CoreError::EpochConflict`].
fn try_aggregate<T: Transport>(
    filter: &mut ClientFilter<T>,
    kind: EngineKind,
    rule: MatchRule,
    spec: &AggregateSpec,
    retries: u32,
) -> Result<AggregateOutcome, CoreError> {
    let shards = filter.shard_count()?;
    let part = ShardSpec::new(shards);

    // Snapshot wave: roots and every shard's epoch in one batch. The
    // epochs fence everything the aggregate reads from here on.
    let (roots, epochs) = filter.roots_with_epochs()?;
    if epochs.len() != shards as usize {
        return Err(CoreError::Transport(format!(
            "epoch snapshot has {} entries for {} shards",
            epochs.len(),
            shards
        )));
    }

    // Predicate walk from the snapshot's roots (not a re-fetch — the
    // frontier must be the one the epochs fence).
    let walk = Engine::run_from(kind, rule, &spec.query, filter, roots)?;
    let mut matched: Vec<u32> = walk.pres();

    let before_close = filter.transport_stats().round_trips;

    // Optional range wave: fetch the candidates' numeric rows (fenced),
    // reconstruct each value locally, and narrow the match set. Servers
    // see which numeric rows were consulted — never which passed.
    if let Some((lo, hi)) = spec.range {
        let mut in_range = Vec::with_capacity(matched.len());
        for (found, partials) in filter.agg_wave(agg_frames(AGG_FETCH, &matched, &part, &epochs))? {
            if found.len() != partials.len() {
                return Err(CoreError::Transport("AGG_FETCH length mismatch".into()));
            }
            for (npre, packed) in found.iter().zip(&partials) {
                let v = filter.numeric_value(*npre, packed)?;
                if lo <= v && v <= hi {
                    in_range.push(npre - NUM_PLANE_BASE);
                }
            }
        }
        in_range.sort_unstable();
        matched = in_range;
    }

    // Closing wave: one batch of per-shard frames. COUNT closes with
    // AGG_CHECK frames (pure fence validation — the count is the walk's
    // own answer and never touches the numeric plane); SUM/AVG close with
    // AGG_SUM frames whose partials the servers accumulated blindly.
    // Shards with no matched rows still get an AGG_CHECK frame: a write
    // there could have changed what the walk should have seen.
    let op = match spec.op {
        AggOp::Count => AGG_CHECK,
        AggOp::Sum | AggOp::Avg => AGG_SUM,
    };
    let mut contributing = 0u64;
    let mut sum = 0u128;
    let group = filter.ring().len();
    debug_assert!(numeric_capacity_bits(group) > 0);
    for (found, partials) in filter.agg_wave(agg_frames(op, &matched, &part, &epochs))? {
        if found.len().div_ceil(group) != partials.len() {
            return Err(CoreError::Transport("AGG_SUM group count mismatch".into()));
        }
        contributing += found.len() as u64;
        for (chunk, partial) in found.chunks(group).zip(&partials) {
            sum = sum
                .checked_add(filter.group_total(chunk, partial)?)
                .ok_or_else(|| CoreError::Corrupt("aggregate sum overflows u128".into()))?;
        }
    }
    let closing_waves = filter.transport_stats().round_trips - before_close;

    Ok(AggregateOutcome {
        op: spec.op,
        count: matched.len() as u64,
        contributing,
        sum,
        walk: walk.stats,
        closing_waves,
        retries,
    })
}

/// Builds the per-shard [`Request::Agg`] frames for one wave: matched
/// element `pre`s are lifted into the numeric plane and split by the
/// public shard partition (each shard fences on its own epoch). Every
/// shard gets a frame — shards with no rows get an `AGG_CHECK` carrying a
/// representative `pre` so the router can steer it — and the frames of
/// one wave always travel in a single batch.
fn agg_frames(op: u8, matched: &[u32], part: &ShardSpec, epochs: &[u64]) -> Vec<Request> {
    let shards = part.shards() as usize;
    let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for &pre in matched {
        let npre = numeric_pre(pre);
        per_shard[part.shard_of(npre) as usize].push(npre);
    }
    per_shard
        .into_iter()
        .enumerate()
        .map(|(k, pres)| {
            if pres.is_empty() || op == AGG_CHECK {
                Request::Agg {
                    op: AGG_CHECK,
                    // `shard_of(k + 1) == k`: a representative pre that
                    // routes the fence probe to shard k.
                    pres: vec![k as u32 + 1],
                    expect_epoch: epochs[k],
                }
            } else {
                Request::Agg {
                    op,
                    pres,
                    expect_epoch: epochs[k],
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use crate::map::MapFile;
    use crate::server::ServerFilter;
    use crate::transport::LocalTransport;
    use ssx_prg::Seed;
    use ssx_xpath::parse_query;

    fn client(xml: &str) -> ClientFilter<LocalTransport> {
        let map = MapFile::sequential(83, 1, &["site", "item", "price", "name"]).unwrap();
        let seed = Seed::from_test_key(31);
        let out = encode_document(xml, &map, &seed).unwrap();
        let server = ServerFilter::new(out.table, out.ring);
        ClientFilter::new(LocalTransport::new(server), map, seed).unwrap()
    }

    const DOC: &str = "<site>\
        <item><name>ab</name><price>10</price></item>\
        <item><price>25</price></item>\
        <item><price>7</price></item>\
        <item><name>cd</name></item>\
        </site>";

    fn agg(q: &str, op: AggOp, range: Option<(u64, u64)>) -> AggregateOutcome {
        let mut c = client(DOC);
        let spec = AggregateSpec {
            query: parse_query(q).unwrap(),
            op,
            range,
        };
        run_aggregate(&mut c, EngineKind::Simple, MatchRule::Equality, &spec).unwrap()
    }

    #[test]
    fn count_sum_avg_over_prices() {
        let count = agg("/site/item/price", AggOp::Count, None);
        assert_eq!(count.count, 3);
        assert_eq!(count.sum, 0, "COUNT never touches the numeric plane");
        assert_eq!(count.value(), Some((3, 1)));

        let sum = agg("/site/item/price", AggOp::Sum, None);
        assert_eq!(sum.sum, 42);
        assert_eq!(sum.contributing, 3);

        let avg = agg("/site/item/price", AggOp::Avg, None);
        assert_eq!(avg.value(), Some((42, 3)));
        assert_eq!(avg.avg_f64(), Some(14.0));
    }

    #[test]
    fn non_numeric_matches_count_but_do_not_contribute() {
        // /site/item matches 4 items; none has a numeric value itself.
        let count = agg("/site/item", AggOp::Count, None);
        assert_eq!(count.count, 4);
        let sum = agg("/site/item", AggOp::Sum, None);
        assert_eq!(sum.count, 4);
        assert_eq!(sum.contributing, 0);
        assert_eq!(sum.sum, 0);
        // An empty AVG is None, not a division by zero.
        assert_eq!(agg("/site/item", AggOp::Avg, None).value(), None);
    }

    #[test]
    fn range_predicate_filters_by_value() {
        let sum = agg("/site/item/price", AggOp::Sum, Some((8, 30)));
        assert_eq!(sum.count, 2, "10 and 25 are in range; 7 is not");
        assert_eq!(sum.sum, 35);
        let count = agg("//price", AggOp::Count, Some((0, 9)));
        assert_eq!(count.count, 1, "only 7");
        // A range over non-numeric matches is empty, not an error.
        let named = agg("/site/item/name", AggOp::Count, Some((0, u64::MAX)));
        assert_eq!(named.count, 0);
    }

    #[test]
    fn closing_wave_counts() {
        let plain = agg("//price", AggOp::Sum, None);
        assert_eq!(plain.closing_waves, 1, "one wave beyond the walk");
        let ranged = agg("//price", AggOp::Sum, Some((0, 100)));
        assert_eq!(ranged.closing_waves, 2, "fetch wave + closing wave");
        assert_eq!(plain.retries, 0);
    }

    #[test]
    fn empty_match_set_still_validates_the_fence() {
        let out = agg("/site/name", AggOp::Sum, None);
        assert_eq!(out.count, 0);
        assert_eq!(out.sum, 0);
        assert_eq!(out.closing_waves, 1, "the fence probe still travels");
    }

    #[test]
    fn write_between_snapshot_and_close_is_a_typed_conflict() {
        use ssx_poly::Packer;
        use ssx_store::Loc;
        let mut c = client(DOC);
        let spec = AggregateSpec {
            query: parse_query("//price").unwrap(),
            op: AggOp::Sum,
            range: None,
        };
        // Take the snapshot, then let a writer in before the close.
        let (_roots, epochs) = c.roots_with_epochs().unwrap();
        let poly = {
            let ring = c.ring().clone();
            let coeffs = (0..ring.len()).map(|i| (i as u64) % 3).collect();
            Packer::new(&ring).pack_radix(&ring.poly_from_coeffs(coeffs).unwrap())
        };
        let loc = Loc {
            pre: 50,
            post: 50,
            parent: 0,
        };
        c.insert_rows(vec![(loc, poly)]).unwrap();
        let frames = agg_frames(AGG_SUM, &[3], &ShardSpec::new(1), &epochs);
        let err = c.agg_wave(frames).unwrap_err();
        assert!(
            matches!(err, CoreError::EpochConflict(_)),
            "stale fence must be typed: {err}"
        );
        // The runner retries from a fresh snapshot and converges (the
        // garbage row is gone again; its two epoch bumps remain).
        c.delete_pres(vec![50]).unwrap();
        let out = run_aggregate(&mut c, EngineKind::Simple, MatchRule::Equality, &spec).unwrap();
        assert_eq!(out.sum, 42);
        assert_eq!(out.retries, 0, "fresh snapshots do not conflict");
    }
}
